//! Integration tests for the request-level serving bridge: determinism
//! through the sweep engine, burst handling, and the p99-vs-cap effect
//! the serving ablation measures.

use capgpu::prelude::*;
use capgpu::sweep::SweepSpec;

fn serving_trace(seed: u64, setpoint: f64, periods: usize) -> RunTrace {
    let mut runner =
        ExperimentRunner::new(Scenario::serving_testbed(seed), setpoint).expect("runner");
    let controller = runner.build_capgpu_controller().expect("controller");
    runner.run(controller, periods).expect("run")
}

#[test]
fn serving_run_is_deterministic() {
    let a = serving_trace(11, 1000.0, 8);
    let b = serving_trace(11, 1000.0, 8);
    assert_eq!(a, b);
    let c = serving_trace(12, 1000.0, 8);
    assert_ne!(a, c);
}

#[test]
fn serving_traces_report_request_statistics() {
    let t = serving_trace(7, 1050.0, 10);
    assert_eq!(t.miss_rates.len(), 3);
    assert_eq!(t.p99_latency_s.len(), 3);
    for i in 0..3 {
        assert!((0.0..=1.0).contains(&t.miss_rates[i]), "task {i}");
        assert!(
            t.p99_latency_s[i].is_finite() && t.p99_latency_s[i] > 0.0,
            "task {i}: p99 {}",
            t.p99_latency_s[i]
        );
    }
    // Throughput flows from queue drain: every task serves requests.
    let thr = t.steady_gpu_throughput(0.8);
    for (i, x) in thr.iter().enumerate() {
        assert!(*x > 10.0, "task {i} drained {x} req/s");
    }
}

#[test]
fn deep_cap_inflates_measured_tail_latency() {
    // The paper's constraint (10b) checked against *measured* p99: a
    // deep cap forces effective frequency down, queues build, and the
    // request tail diverges long before the mean does.
    let roomy = serving_trace(21, 1150.0, 25);
    let deep = serving_trace(21, 880.0, 25);
    let worst = |t: &RunTrace| t.p99_latency_s.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        worst(&deep) > 1.2 * worst(&roomy),
        "deep-cap p99 {} vs roomy p99 {}",
        worst(&deep),
        worst(&roomy)
    );
    let miss = |t: &RunTrace| t.miss_rates.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        miss(&deep) >= miss(&roomy),
        "deep-cap miss {} vs roomy miss {}",
        miss(&deep),
        miss(&roomy)
    );
}

#[test]
fn serving_burst_raises_task_load() {
    let seed = 31;
    let burst_at = 10;
    let scenario = Scenario::serving_testbed(seed).with_change(ScheduledChange::ServingBurst {
        at_period: burst_at,
        task: 0,
        factor: 2.0,
    });
    let mut runner = ExperimentRunner::new(scenario, 1150.0).expect("runner");
    let controller = runner.build_capgpu_controller().expect("controller");
    let trace = runner.run(controller, 20).expect("run");
    let mean = |records: &[capgpu::runner::PeriodRecord]| {
        records.iter().map(|r| r.gpu_throughput[0]).sum::<f64>() / records.len() as f64
    };
    let before = mean(&trace.records[..burst_at]);
    let after = mean(&trace.records[burst_at..]);
    assert!(
        after > 1.2 * before,
        "task 0 throughput before burst {before}, after {after}"
    );
}

#[test]
fn serving_intensity_scale_moves_offered_load() {
    // The fleet balancer's migration hook: scaling a server's serving
    // intensity between run() calls moves its offered load up and down,
    // and the scale is absolute (1.0 restores nominal).
    let mut runner = ExperimentRunner::new(Scenario::serving_testbed(23), 1150.0).expect("runner");
    let mut controller = runner.build_capgpu_controller().expect("controller");
    let mean_thr = |t: &RunTrace| {
        t.records
            .iter()
            .map(|r| r.gpu_throughput.iter().sum::<f64>())
            .sum::<f64>()
            / t.records.len() as f64
    };
    let nominal = mean_thr(&runner.run(&mut controller, 8).expect("run"));
    runner.set_serving_intensity_scale(0.3).expect("scale down");
    let shed = mean_thr(&runner.run(&mut controller, 8).expect("run"));
    runner.set_serving_intensity_scale(1.0).expect("restore");
    let restored = mean_thr(&runner.run(&mut controller, 8).expect("run"));
    assert!(
        shed < 0.6 * nominal,
        "offered load must follow the scale: nominal {nominal}, scaled {shed}"
    );
    assert!(
        restored > 0.8 * nominal,
        "scale is absolute: nominal {nominal}, restored {restored}"
    );
    assert!(runner.set_serving_intensity_scale(-1.0).is_err());
    // Without the serving layer the hook refuses.
    let mut bare = ExperimentRunner::new(Scenario::paper_testbed(23), 1000.0).expect("runner");
    assert!(bare.set_serving_intensity_scale(0.5).is_err());
}

#[test]
fn serving_sweep_is_bit_identical_across_thread_counts() {
    let spec = SweepSpec::serving_family(17, &[0.75, 1.1], Some(2.0))
        .expect("family")
        .setpoint(1000.0)
        .periods(4)
        .controller(ControllerSpec::CapGpu)
        .controller(ControllerSpec::FixedStep { multiplier: 2 });
    let serial = spec.run_serial().expect("serial");
    assert_eq!(serial.len(), 6); // 3 scenario variants x 2 controllers
    for threads in [1, 2, 4] {
        let parallel = spec.run_with_threads(threads).expect("parallel");
        assert_eq!(serial, parallel, "{threads} threads diverged");
    }
}

#[test]
fn serving_family_scales_rates_and_validates() {
    let spec = SweepSpec::serving_family(1, &[0.5, 1.5], None).expect("family");
    assert_eq!(spec.num_cells(), 0); // no set points/controllers yet
    assert!(SweepSpec::serving_family(1, &[0.0], None).is_err());
    assert!(SweepSpec::serving_family(1, &[1.0], Some(-1.0)).is_err());
}

#[test]
fn disabled_serving_keeps_model_path() {
    // The default paper testbed must not construct serving engines or
    // alter the period-level model path (byte-identity is additionally
    // checked against committed figure output in CI).
    let s = Scenario::paper_testbed(5);
    assert!(s.serving.is_none());
    let mut runner = ExperimentRunner::new(s, 1000.0).expect("runner");
    let controller = runner.build_capgpu_controller().expect("controller");
    let trace = runner.run(controller, 5).expect("run");
    // Model mode records per-batch latencies; p99 reflects batch scale.
    assert!(trace.p99_latency_s.iter().all(|p| p.is_finite()));
}
