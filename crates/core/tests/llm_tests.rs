//! Integration tests for the phase-aware LLM serving bridge: closed-loop
//! determinism, TTFT/inter-token statistics in the trace, phase-mix
//! plumbing into the weight assigner, and the burst/intensity hooks.

use capgpu::prelude::*;
use capgpu::sweep::SweepSpec;

fn llm_trace(seed: u64, setpoint: f64, periods: usize) -> RunTrace {
    let mut runner = ExperimentRunner::new(Scenario::llm_testbed(seed), setpoint).expect("runner");
    let controller = runner.build_capgpu_controller().expect("controller");
    runner.run(controller, periods).expect("run")
}

#[test]
fn llm_run_is_deterministic() {
    let a = llm_trace(11, 1000.0, 8);
    let b = llm_trace(11, 1000.0, 8);
    assert_eq!(a, b);
    let c = llm_trace(12, 1000.0, 8);
    assert_ne!(a, c);
}

#[test]
fn llm_closed_loop_tracks_the_setpoint() {
    let t = llm_trace(42, 1000.0, 25);
    let (mean, _std) = t.steady_state_power(0.8);
    assert!(
        (mean - 1000.0).abs() < 40.0,
        "steady-state power {mean} W vs 1000 W setpoint"
    );
}

#[test]
fn llm_traces_report_phase_statistics() {
    let t = llm_trace(7, 1050.0, 10);
    // One entry per LLM task for each tail/miss statistic.
    assert_eq!(t.ttft_p99_s.len(), 3);
    assert_eq!(t.itl_p99_s.len(), 3);
    assert_eq!(t.ttft_miss_rates.len(), 3);
    assert_eq!(t.itl_miss_rates.len(), 3);
    for i in 0..3 {
        assert!(
            t.ttft_p99_s[i].is_finite() && t.ttft_p99_s[i] > 0.0,
            "task {i}: ttft p99 {}",
            t.ttft_p99_s[i]
        );
        assert!(
            t.itl_p99_s[i].is_finite() && t.itl_p99_s[i] > 0.0,
            "task {i}: itl p99 {}",
            t.itl_p99_s[i]
        );
        assert!((0.0..=1.0).contains(&t.ttft_miss_rates[i]), "task {i}");
        assert!((0.0..=1.0).contains(&t.itl_miss_rates[i]), "task {i}");
    }
    // In LLM mode the monitor signal is tokens/s, not completions/s:
    // every task streams a substantial token rate.
    let thr = t.steady_gpu_throughput(0.8);
    for (i, x) in thr.iter().enumerate() {
        assert!(*x > 100.0, "task {i} streamed {x} tok/s");
    }
}

#[test]
fn non_llm_traces_leave_phase_statistics_empty() {
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(5), 1000.0).expect("runner");
    let controller = runner.build_capgpu_controller().expect("controller");
    let trace = runner.run(controller, 5).expect("run");
    assert!(trace.ttft_p99_s.is_empty());
    assert!(trace.itl_p99_s.is_empty());
    assert!(trace.ttft_miss_rates.is_empty());
    assert!(trace.itl_miss_rates.is_empty());
}

#[test]
fn deep_cap_inflates_llm_tails() {
    // The LLM analogue of the serving tail test: a deep cap slows
    // prefill (compute-bound) and decode steps, so TTFT and the
    // inter-token tail both degrade.
    let roomy = llm_trace(21, 1150.0, 25);
    let deep = llm_trace(21, 880.0, 25);
    let worst = |v: &[f64]| v.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        worst(&deep.ttft_p99_s) > worst(&roomy.ttft_p99_s),
        "deep-cap ttft {} vs roomy {}",
        worst(&deep.ttft_p99_s),
        worst(&roomy.ttft_p99_s)
    );
    assert!(
        worst(&deep.itl_p99_s) >= worst(&roomy.itl_p99_s),
        "deep-cap itl {} vs roomy {}",
        worst(&deep.itl_p99_s),
        worst(&roomy.itl_p99_s)
    );
}

#[test]
fn llm_burst_raises_task_token_rate() {
    let seed = 31;
    let burst_at = 10;
    let scenario = Scenario::llm_testbed(seed).with_change(ScheduledChange::ServingBurst {
        at_period: burst_at,
        task: 2,
        factor: 2.5,
    });
    let mut runner = ExperimentRunner::new(scenario, 1150.0).expect("runner");
    let controller = runner.build_capgpu_controller().expect("controller");
    let trace = runner.run(controller, 20).expect("run");
    let mean = |records: &[capgpu::runner::PeriodRecord]| {
        records.iter().map(|r| r.gpu_throughput[2]).sum::<f64>() / records.len() as f64
    };
    let before = mean(&trace.records[..burst_at]);
    let after = mean(&trace.records[burst_at..]);
    assert!(
        after > 1.2 * before,
        "task 2 token rate before burst {before}, after {after}"
    );
}

#[test]
fn llm_intensity_scale_moves_offered_load() {
    let mut runner = ExperimentRunner::new(Scenario::llm_testbed(23), 1150.0).expect("runner");
    let mut controller = runner.build_capgpu_controller().expect("controller");
    let mean_thr = |t: &RunTrace| {
        t.records
            .iter()
            .map(|r| r.gpu_throughput.iter().sum::<f64>())
            .sum::<f64>()
            / t.records.len() as f64
    };
    let nominal = mean_thr(&runner.run(&mut controller, 8).expect("run"));
    runner.set_serving_intensity_scale(0.3).expect("scale down");
    let shed = mean_thr(&runner.run(&mut controller, 8).expect("run"));
    runner.set_serving_intensity_scale(1.0).expect("restore");
    // Long-residency decode means the token rate ramps back over several
    // periods — judge the restored level on the tail of a longer window.
    let restored_trace = runner.run(&mut controller, 16).expect("run");
    let restored = mean_thr(&RunTrace {
        records: restored_trace.records[8..].to_vec(),
        ..restored_trace
    });
    assert!(
        shed < 0.7 * nominal,
        "offered tokens must follow the scale: nominal {nominal}, scaled {shed}"
    );
    assert!(
        restored > 0.8 * nominal,
        "scale is absolute: nominal {nominal}, restored {restored}"
    );
}

#[test]
fn phase_blind_builder_differs_only_through_the_mix() {
    // On a non-LLM scenario there is no phase mix, so the phase-blind
    // arm must reproduce the phase-aware CapGPU trace bit for bit.
    let run = |blind: bool| {
        let mut runner = ExperimentRunner::new(Scenario::paper_testbed(9), 1000.0).expect("runner");
        let controller = if blind {
            runner.build_capgpu_phase_blind().expect("controller")
        } else {
            runner.build_capgpu_controller().expect("controller")
        };
        let mut trace = runner.run(controller, 6).expect("run");
        // Only the display name is allowed to differ.
        trace.controller = String::new();
        trace
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn llm_family_scales_rates_and_validates() {
    let spec = SweepSpec::llm_family(1, &[0.5, 1.5]).expect("family");
    assert_eq!(spec.num_cells(), 0); // no set points/controllers yet
    assert!(SweepSpec::llm_family(1, &[0.0]).is_err());
    assert!(SweepSpec::llm_family(1, &[f64::NAN]).is_err());
}
