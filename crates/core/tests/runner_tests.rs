//! Runner-level tests: identification quality, closed-loop convergence of
//! every controller, scheduled changes, determinism, fault injection.

use capgpu::config::ScheduledChange;
use capgpu::prelude::*;

fn runner(seed: u64, setpoint: f64) -> ExperimentRunner {
    ExperimentRunner::new(Scenario::paper_testbed(seed), setpoint).unwrap()
}

#[test]
fn identification_reaches_paper_r2() {
    let mut r = runner(42, 900.0);
    let fitted = r.identify().unwrap();
    // Paper Fig. 2a: R² = 0.96. Noise + quadratic terms keep ours close.
    assert!(
        fitted.r_squared > 0.93,
        "identification R² = {}",
        fitted.r_squared
    );
    // GPU gains must dominate the CPU gain (premise of the paper).
    let gains = fitted.model.gains();
    assert!(gains[1] > gains[0] && gains[2] > gains[0] && gains[3] > gains[0]);
    // All gains positive, offset near platform + idle power.
    assert!(gains.iter().all(|g| *g > 0.0), "{gains:?}");
    assert!(
        fitted.model.offset() > 200.0,
        "offset {}",
        fitted.model.offset()
    );
}

#[test]
fn capgpu_converges_to_900w() {
    let mut r = runner(7, 900.0);
    let c = r.build_capgpu_controller().unwrap();
    let trace = r.run(c, 60).unwrap();
    let (mean, std) = trace.steady_state_power(0.5);
    assert!((mean - 900.0).abs() < 12.0, "mean {mean}");
    assert!(std < 15.0, "std {std}");
}

#[test]
fn gpu_only_converges_but_wiggles_more_than_capgpu() {
    let mut r = runner(8, 900.0);
    let c = r.build_gpu_only().unwrap();
    let trace = r.run(c, 60).unwrap();
    let (mean, _std) = trace.steady_state_power(0.5);
    assert!((mean - 900.0).abs() < 15.0, "GPU-Only mean {mean}");
}

#[test]
fn cpu_only_cannot_reach_the_cap() {
    let mut r = runner(9, 900.0);
    let c = r.build_cpu_only().unwrap();
    let trace = r.run(c, 40).unwrap();
    let (mean, _) = trace.steady_state_power(0.5);
    // GPUs pinned at max: the floor is ≈ 1150+ W, far above 900 W.
    assert!(mean > 1000.0, "CPU-Only should fail to cap: mean {mean}");
}

#[test]
fn split_misses_total_cap() {
    let mut r = runner(10, 900.0);
    let c = r.build_split(0.6).unwrap();
    let trace = r.run(c, 60).unwrap();
    let (mean, _) = trace.steady_state_power(0.5);
    assert!(
        (mean - 900.0).abs() > 25.0,
        "split control unexpectedly accurate: mean {mean}"
    );
}

#[test]
fn fixed_step_oscillates_more_than_capgpu() {
    let mut r1 = runner(11, 900.0);
    let fs = r1.build_fixed_step(5);
    let t1 = r1.run(fs, 80).unwrap();
    let (_, std_fs) = t1.steady_state_power(0.5);

    let mut r2 = runner(11, 900.0);
    let cg = r2.build_capgpu_controller().unwrap();
    let t2 = r2.run(cg, 80).unwrap();
    let (_, std_cg) = t2.steady_state_power(0.5);

    assert!(
        std_fs > std_cg,
        "fixed-step std {std_fs} should exceed CapGPU std {std_cg}"
    );
}

#[test]
fn safe_fixed_step_stays_below_cap() {
    let mut r = runner(12, 900.0);
    let c = r.build_safe_fixed_step(1).unwrap();
    let trace = r.run(c, 80).unwrap();
    // Steady-state mean sits below the cap by roughly the margin.
    let (mean, _) = trace.steady_state_power(0.5);
    assert!(mean < 900.0, "Safe Fixed-step mean {mean} above cap");
}

#[test]
fn setpoint_step_change_tracked() {
    let scenario = Scenario::paper_testbed(13).with_change(ScheduledChange::SetPoint {
        at_period: 30,
        watts: 1000.0,
    });
    let mut r = ExperimentRunner::new(scenario, 850.0).unwrap();
    let c = r.build_capgpu_controller().unwrap();
    let trace = r.run(c, 70).unwrap();
    // Before the change: near 850; after: near 1000.
    let before: Vec<f64> = trace.records[20..30].iter().map(|x| x.avg_power).collect();
    let after: Vec<f64> = trace.records[55..].iter().map(|x| x.avg_power).collect();
    let mb = capgpu_linalg::stats::mean(&before);
    let ma = capgpu_linalg::stats::mean(&after);
    assert!((mb - 850.0).abs() < 15.0, "before {mb}");
    assert!((ma - 1000.0).abs() < 15.0, "after {ma}");
}

#[test]
fn slo_floor_lifts_gpu_frequency() {
    // Tight SLO on task 0 (ResNet50, e_min 0.055 s): SLO 0.07 s forces the
    // GPU well above its minimum clock.
    let scenario = Scenario::paper_testbed(14).with_slos(vec![Some(0.07), None, None]);
    let mut r = ExperimentRunner::new(scenario, 1000.0).unwrap();
    let c = r.build_capgpu_controller().unwrap();
    let trace = r.run(c, 50).unwrap();
    let rec = trace.records.last().unwrap();
    // Floor for e_min=0.055, slo=0.07, γ=0.91, f_max=1350:
    // 1350·(0.055/0.07)^(1/0.91) ≈ 1038 MHz.
    assert!(rec.floors[1] > 1000.0, "floor {:?}", rec.floors);
    assert!(rec.targets[1] >= rec.floors[1] - 1.0, "{:?}", rec.targets);
    // And the SLO is essentially met.
    assert!(
        trace.miss_rates[0] < 0.05,
        "miss rate {}",
        trace.miss_rates[0]
    );
}

#[test]
fn meter_dropout_does_not_crash_the_loop() {
    let scenario = Scenario::paper_testbed(15)
        .with_change(ScheduledChange::MeterFault {
            at_period: 20,
            fault: Some(capgpu_sim::MeterFault::Dropout),
        })
        .with_change(ScheduledChange::MeterFault {
            at_period: 25,
            fault: None,
        });
    let mut r = ExperimentRunner::new(scenario, 900.0).unwrap();
    let c = r.build_capgpu_controller().unwrap();
    let trace = r.run(c, 50).unwrap();
    // Still converges after the meter recovers.
    let (mean, _) = trace.steady_state_power(0.3);
    assert!((mean - 900.0).abs() < 20.0, "mean {mean}");
}

#[test]
fn multi_period_dropout_flags_stale_and_holds_last_fresh_average() {
    // Regression for the stale-average hazard: a dropout spanning whole
    // control periods used to fall through to `average_last(t)`, which
    // silently blended pre-dropout ring-buffer samples into a "fresh"
    // reading. Silent periods must instead hold the previous measurement
    // and be flagged stale.
    let scenario = Scenario::paper_testbed(15)
        .with_change(ScheduledChange::MeterFault {
            at_period: 20,
            fault: Some(capgpu_sim::MeterFault::Dropout),
        })
        .with_change(ScheduledChange::MeterFault {
            at_period: 26,
            fault: None,
        });
    let mut r = ExperimentRunner::new(scenario, 900.0).unwrap();
    let c = r.build_capgpu_controller().unwrap();
    let trace = r.run(c, 40).unwrap();
    let held = trace.records[19].avg_power;
    for rec in &trace.records[20..26] {
        assert!(rec.meter_stale, "period {} should be stale", rec.period);
        assert_eq!(
            rec.avg_power, held,
            "stale period {} must hold the last fresh average",
            rec.period
        );
    }
    assert!(!trace.records[19].meter_stale);
    assert!(!trace.records[26].meter_stale);
    assert_ne!(trace.records[30].avg_power, held);
}

#[test]
fn supervisor_cuts_cap_violation_under_fault_storm() {
    // Acceptance check for the failover ladder: under the default fault
    // storm (meter dropout/bias, stuck clock, GPU ejection, PSU derate)
    // the supervised CapGPU run must accumulate strictly less
    // cap-violation energy than the unsupervised run, measured against
    // the instantaneous feasible budget min(setpoint, PSU limit).
    let setpoint = 1000.0;
    let periods = 60;
    let violation = |supervised: bool| -> f64 {
        let mut scenario = Scenario::fault_testbed(42);
        if supervised {
            scenario = scenario.with_supervisor(SupervisorConfig::default());
        }
        let schedule = scenario.faults.clone().unwrap();
        let t = scenario.control_period_s as f64;
        let mut r = ExperimentRunner::new(scenario, setpoint).unwrap();
        let c = r.build_capgpu_controller().unwrap();
        let trace = r.run(c, periods).unwrap();
        trace
            .records
            .iter()
            .map(|rec| {
                let budget = schedule
                    .feasible_limit(rec.period)
                    .map_or(setpoint, |l| l.min(setpoint));
                (rec.avg_power - budget).max(0.0) * t
            })
            .sum()
    };
    let unsupervised = violation(false);
    let supervised = violation(true);
    assert!(
        supervised < unsupervised,
        "supervised violation {supervised:.1} W·s must beat unsupervised {unsupervised:.1} W·s"
    );
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = |seed| {
        let mut r = runner(seed, 900.0);
        let c = r.build_capgpu_controller().unwrap();
        r.run(c, 30).unwrap().power_series()
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn throughput_weighting_favors_busy_gpu() {
    // All three models run, but VGG16 (task 2) is the heaviest per batch;
    // weights only matter under power pressure. Just verify the weighted
    // run keeps every pipeline flowing (no starvation collapse).
    let mut r = runner(16, 950.0);
    let c = r.build_capgpu_controller().unwrap();
    let trace = r.run(c, 60).unwrap();
    let thr = trace.steady_gpu_throughput(0.5);
    for (i, t) in thr.iter().enumerate() {
        assert!(*t > 1.0, "task {i} starved: {t} img/s");
    }
}

#[test]
fn trace_tail_metrics_survive_edge_fractions() {
    // Empty traces and out-of-range tail fractions must degrade
    // gracefully instead of underflowing the skip index.
    let empty = RunTrace {
        controller: "empty".into(),
        records: Vec::new(),
        miss_rates: Vec::new(),
        p99_latency_s: Vec::new(),
        ttft_p99_s: Vec::new(),
        itl_p99_s: Vec::new(),
        ttft_miss_rates: Vec::new(),
        itl_miss_rates: Vec::new(),
    };
    for tf in [0.0, 0.8, 1.0, 2.0, -1.0] {
        assert!(empty.steady_gpu_latency(tf).is_empty());
        assert_eq!(empty.steady_state_power(tf), (0.0, 0.0));
        assert!(empty.steady_gpu_throughput(tf).is_empty());
    }

    let mut r = runner(18, 900.0);
    let c = r.build_fixed_step(1);
    let trace = r.run(c, 3).unwrap();
    for tf in [0.0, 0.5, 1.0, 2.0, -1.0] {
        assert_eq!(trace.steady_gpu_latency(tf).len(), 3);
        let (mean, std) = trace.steady_state_power(tf);
        assert!(mean.is_finite() && std.is_finite(), "tf {tf}: {mean}/{std}");
    }
    // Full-tail and over-range fractions agree (clamped to 1.0).
    assert_eq!(trace.steady_gpu_latency(1.0), trace.steady_gpu_latency(5.0));
}

#[test]
fn run_fixed_reports_table1_shape_metrics() {
    let mut r = ExperimentRunner::new(Scenario::motivation_testbed(17), 0.0).unwrap();
    let stats = r.run_fixed(&[1600.0, 660.0], 120, 30).unwrap();
    assert_eq!(stats.throughput_img_s.len(), 1);
    assert!(stats.mean_power > 100.0);
    assert!(stats.throughput_img_s[0] > 4.0);
    assert!(stats.mean_batch_latency_s[0] > 1.0);
    assert!(stats.mean_queue_delay_s[0] > 0.0);
    assert!(stats.preprocess_s_per_image[0] > 0.5);
}

#[test]
fn journal_captures_scripted_escalation_in_order() {
    // Satellite check for the telemetry journal: a scripted meter
    // dropout must produce the supervisor's full escalation/recovery
    // ladder as ordered journal events — stale onset, fallback, park,
    // then the two hysteretic recovery steps after the meter returns.
    use capgpu_telemetry::journal::Value;

    let scenario = Scenario::paper_testbed(15)
        .with_supervisor(SupervisorConfig::default())
        .with_telemetry(TelemetryConfig::deterministic())
        .with_change(ScheduledChange::MeterFault {
            at_period: 10,
            fault: Some(capgpu_sim::MeterFault::Dropout),
        })
        .with_change(ScheduledChange::MeterFault {
            at_period: 20,
            fault: None,
        });
    let mut r = ExperimentRunner::new(scenario, 900.0).unwrap();
    let c = r.build_capgpu_controller().unwrap();
    r.run(c, 45).unwrap();

    let tm = r.telemetry().expect("telemetry enabled");
    let journal = tm.journal();

    // Journal is globally ordered by period.
    let periods: Vec<u64> = journal.events().iter().map(|e| e.period).collect();
    assert!(periods.windows(2).all(|w| w[0] <= w[1]), "{periods:?}");

    // The stale flag toggles exactly twice: on at the dropout, off after
    // the meter recovers.
    let stale: Vec<bool> = journal
        .of_kind("meter_stale")
        .map(|e| match e.fields.iter().find(|(k, _)| *k == "stale") {
            Some((_, Value::Bool(b))) => *b,
            other => panic!("bad stale field {other:?}"),
        })
        .collect();
    assert_eq!(stale, vec![true, false]);

    // Full ladder, in order: 0→1 and 1→2 driven by the stale meter,
    // then single-step recoveries 2→1 and 1→0.
    let field_u64 = |e: &capgpu_telemetry::journal::Event, key: &str| -> u64 {
        match e.fields.iter().find(|(k, _)| *k == key) {
            Some((_, Value::U64(v))) => *v,
            other => panic!("bad {key} field {other:?}"),
        }
    };
    let field_str = |e: &capgpu_telemetry::journal::Event, key: &str| -> String {
        match e.fields.iter().find(|(k, _)| *k == key) {
            Some((_, Value::Str(s))) => s.clone(),
            other => panic!("bad {key} field {other:?}"),
        }
    };
    let ladder: Vec<(u64, u64, String)> = journal
        .of_kind("tier_change")
        .map(|e| {
            (
                field_u64(e, "from"),
                field_u64(e, "to"),
                field_str(e, "reason"),
            )
        })
        .collect();
    assert_eq!(
        ladder,
        vec![
            (0, 1, "stale_meter".to_string()),
            (1, 2, "stale_meter".to_string()),
            (2, 1, "recovered".to_string()),
            (1, 0, "recovered".to_string()),
        ],
        "escalation ladder out of order: {ladder:?}"
    );

    // Metrics agree with the journal: two escalations + two recoveries.
    let snap = tm.snapshot();
    assert_eq!(
        snap.counter_value("capgpu_tier_changes_total", &[]),
        Some(4)
    );
    assert_eq!(snap.counter_value("capgpu_periods_total", &[]), Some(45));
}
