//! Crash-recovery integration tests: kill a daemon mid-run (no
//! graceful seal), restart over the surviving plant, replay the
//! rotating journal, and verify the restarted loop resumes the dead
//! daemon's control state within one control period — plus the
//! `/healthz` endpoint and the rename-over-write ConfigWatcher
//! regression.

use std::path::{Path, PathBuf};

use capgpu::daemon::{ConfigWatcher, Daemon, DaemonConfig, MetricsServer};
use capgpu::prelude::{FaultKind, SupervisorTier};
use capgpu_backend::MockBackend;
use capgpu_obs::reader::read_dir;
use capgpu_obs::replay::ReplayState;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("capgpu-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mock_cfg(journal_dir: Option<PathBuf>) -> DaemonConfig {
    let mut cfg = DaemonConfig::default_sim();
    cfg.backend = "mock".to_string();
    cfg.sim_gpus = 2;
    cfg.sysid_steps_per_device = 4;
    cfg.control_period_s = 2;
    cfg.journal_dir = journal_dir;
    cfg
}

fn replay_journal(dir: &Path) -> ReplayState {
    let scan = read_dir(dir).unwrap();
    ReplayState::replay(&scan.records)
}

/// The tentpole acceptance test: daemon A runs uninterrupted; daemon B
/// runs the same deterministic plant, dies (unsealed journal) at period
/// `k`, and a fresh daemon recovers from the journal over the surviving
/// backend. From the second post-restart period (the MPC warm-start is
/// allowed one period to refill), B's targets must match A's exactly.
#[test]
fn kill_and_restart_resumes_within_one_control_period() {
    let total = 16u64;
    let kill_at = 7u64;

    // Run A: uninterrupted reference.
    let mut a = Daemon::new(mock_cfg(None), Box::new(MockBackend::testbed(2).unwrap())).unwrap();
    a.identify().unwrap();
    let ref_reports = a.run_periods(total).unwrap();

    // Run B: identical plant, killed at `kill_at`.
    let dir = temp_dir("kill-restart");
    let mut b = Daemon::new(
        mock_cfg(Some(dir.clone())),
        Box::new(MockBackend::testbed(2).unwrap()),
    )
    .unwrap();
    b.identify().unwrap();
    b.run_periods(kill_at).unwrap();
    let pre_kill_setpoint = b.setpoint_watts();
    // "Kill": drop the daemon without sealing; the plant survives.
    let backend = b.into_backend();

    // Restart: replay the journal, recover, resume.
    let state = replay_journal(&dir);
    assert_eq!(state.last_period, Some(kill_at - 1));
    let mut b2 = Daemon::new(mock_cfg(Some(dir.clone())), backend).unwrap();
    b2.recover(&state).unwrap();
    assert_eq!(b2.tier(), SupervisorTier::Primary);
    assert_eq!(b2.setpoint_watts(), pre_kill_setpoint);
    let resumed = b2.run_periods(total - kill_at).unwrap();

    // Period numbering continues the dead daemon's sequence.
    assert_eq!(resumed[0].period, kill_at);
    // Within one control period: the first resumed period may differ
    // (fresh MPC warm start), every later one must match bit-tight.
    for (r, want) in resumed.iter().zip(&ref_reports[kill_at as usize..]).skip(1) {
        assert_eq!(r.tier, want.tier);
        for (t, w) in r.targets_mhz.iter().zip(want.targets_mhz.iter()) {
            assert!(
                (t - w).abs() < 1e-6,
                "period {}: resumed target {t} vs uninterrupted {w}",
                r.period
            );
        }
        assert!(
            (r.avg_power_watts - want.avg_power_watts).abs() < 1e-6,
            "period {}: resumed power {} vs uninterrupted {}",
            r.period,
            r.avg_power_watts,
            want.avg_power_watts
        );
    }

    // The restarted daemon journals into a fresh segment and its
    // "recovered" marker is on disk.
    let scan = read_dir(&dir).unwrap();
    assert!(scan.segments.len() >= 2, "restart must open a new segment");
    assert!(scan.records.iter().any(|r| r.kind == "recovered"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery replays the exact model (base gains × refit scale) and the
/// supervisor tier in force at death — here SafeFallback, forced by a
/// meter dropout that persists in the surviving plant.
#[test]
fn recovery_restores_tier_and_model_after_meter_dropout() {
    let dir = temp_dir("tier");
    let mut d = Daemon::new(
        mock_cfg(Some(dir.clone())),
        Box::new(MockBackend::testbed(2).unwrap()),
    )
    .unwrap();
    d.identify().unwrap();
    d.run_periods(3).unwrap();
    d.backend_mut()
        .as_any_mut()
        .downcast_mut::<MockBackend>()
        .unwrap()
        .apply_fault(&FaultKind::MeterDropout)
        .unwrap();
    // Escalate off Primary, then die there.
    let mut tier = SupervisorTier::Primary;
    for _ in 0..8 {
        tier = d.step_period().unwrap().tier;
        if tier != SupervisorTier::Primary {
            break;
        }
    }
    assert_ne!(tier, SupervisorTier::Primary, "dropout must escalate");
    let died_at_tier = d.tier();
    let backend = d.into_backend();

    let state = replay_journal(&dir);
    assert_eq!(state.tier_or_primary(), u64::from(died_at_tier.as_u8()));
    let (gains, offset) = state.model().expect("model journaled");
    // testbed(2) = 2 GPUs + 1 CPU package knob.
    assert_eq!(gains.len(), 3);
    assert!(offset > 0.0);

    let mut d2 = Daemon::new(mock_cfg(Some(dir.clone())), backend).unwrap();
    d2.recover(&state).unwrap();
    assert_eq!(d2.tier(), died_at_tier, "recovered tier must match");
    // The meter is still dark: the restarted ladder keeps degrading
    // rather than resetting to Primary.
    let r = d2.step_period().unwrap();
    assert_ne!(r.tier, SupervisorTier::Primary);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn final record — the crash-mid-flush case — is tolerated by the
/// reader and replay sees every complete record.
#[test]
fn torn_final_record_is_tolerated_on_recovery() {
    let dir = temp_dir("torn");
    let mut d = Daemon::new(
        mock_cfg(Some(dir.clone())),
        Box::new(MockBackend::testbed(2).unwrap()),
    )
    .unwrap();
    d.identify().unwrap();
    d.run_periods(5).unwrap();
    let backend = d.into_backend();
    let before = replay_journal(&dir);

    // Tear the active segment: append half a record, no newline.
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let mut text = std::fs::read_to_string(last).unwrap();
    text.push_str("{\"v\":1,\"period\":99,\"t_s\":396,\"kind\":\"per");
    std::fs::write(last, text).unwrap();

    let scan = read_dir(&dir).unwrap();
    assert!(scan.torn_tail.is_some(), "tear must be reported");
    let after = ReplayState::replay(&scan.records);
    assert_eq!(after, before, "torn tail must not change replayed state");

    // And a daemon still recovers over it.
    let mut d2 = Daemon::new(mock_cfg(Some(dir.clone())), backend).unwrap();
    d2.recover(&after).unwrap();
    d2.run_periods(2).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/healthz` serves the analyzer verdict JSON alongside `/metrics`.
#[test]
fn healthz_is_served_alongside_metrics() {
    use std::io::{Read as _, Write as _};
    let mut d = Daemon::new(mock_cfg(None), Box::new(MockBackend::testbed(2).unwrap())).unwrap();
    d.identify().unwrap();
    d.run_periods(4).unwrap();

    let server = MetricsServer::bind(0).unwrap();
    server.publish(&d.prometheus_text());
    server.publish_health(&d.health_json());
    let addr = server.local_addr();
    let fetch = |path: &str| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    };

    let health = fetch("/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("application/json"), "{health}");
    let body = health.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
    for needle in [
        "\"tier\":0",
        "\"overall\":\"ok\"",
        "\"periods\":4",
        "\"cap_violation_burn\"",
        "\"meter_silence\"",
    ] {
        assert!(body.contains(needle), "missing {needle} in {body}");
    }
    // /metrics keeps working, with the analyzer gauges exposed.
    let metrics = fetch("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"));
    assert!(metrics.contains("capgpud_health_overall"));
    assert!(metrics.contains("detector=\"meter_silence\""));
}

/// Atomic rename-over-write deployments (write tmp, rename onto the
/// config) must trip the watcher even when content length is unchanged
/// — the inode component of the fingerprint catches it.
#[test]
fn config_watcher_sees_rename_over_write() {
    let dir = temp_dir("watcher");
    let path = dir.join("capgpud.toml");
    std::fs::write(&path, "[daemon]\nsetpoint_watts = 900.0\n").unwrap();
    let mut w = ConfigWatcher::new(&path);
    assert!(!w.changed(), "baseline must not report a change");

    // Same byte length, new inode.
    let tmp = dir.join("capgpud.toml.tmp");
    std::fs::write(&tmp, "[daemon]\nsetpoint_watts = 800.0\n").unwrap();
    std::fs::rename(&tmp, &path).unwrap();
    assert!(w.changed(), "rename-over-write must be detected");
    assert!(!w.changed(), "change reports once");
    let _ = std::fs::remove_dir_all(&dir);
}
