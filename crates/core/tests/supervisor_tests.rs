//! Property tests for the supervisory failover ladder: escalation is
//! monotone while a fault is active, recovery is hysteretic (exactly one
//! rung per recovery window of consecutive healthy periods), and an
//! intermittent fault whose healthy gaps are all shorter than the
//! recovery window can never chatter the loop back to the primary
//! controller.

use capgpu::prelude::*;
use proptest::prelude::*;

fn sample<'a>(stale: bool, applied: &'a [f64], ejected: &'a [bool]) -> HealthSample<'a> {
    HealthSample {
        fresh_samples: if stale { 0 } else { 4 },
        meter_age_s: if stale { Some(30) } else { Some(0) },
        avg_power: 900.0,
        setpoint: 900.0,
        psu_limit: None,
        applied_mean: applied,
        ejected,
    }
}

fn supervisor(recovery_periods: usize) -> Supervisor {
    let cfg = SupervisorConfig {
        recovery_periods,
        ..Default::default()
    };
    Supervisor::new(cfg, vec![0.1, 0.3, 0.3, 0.3], 4).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under an arbitrary staleness pattern: a fault-active (silent)
    /// period never de-escalates the ladder, and every recovery step is
    /// exactly one rung, taken only after at least `recovery` consecutive
    /// healthy periods.
    #[test]
    fn ladder_monotone_while_fault_active(
        pattern in prop::collection::vec(prop::sample::select(vec![true, false]), 10..60),
        recovery in 2usize..8,
    ) {
        let mut s = supervisor(recovery);
        let applied = [2000.0, 900.0, 900.0, 900.0];
        let ejected = [false; 4];
        let mut healthy_streak = 0usize;
        let mut prev = s.tier();
        for &stale in &pattern {
            let tier = s.step(&sample(stale, &applied, &ejected)).tier;
            if stale {
                healthy_streak = 0;
                prop_assert!(
                    tier >= prev,
                    "de-escalated {:?} -> {:?} during an active fault",
                    prev,
                    tier
                );
            } else {
                healthy_streak += 1;
            }
            if tier < prev {
                prop_assert!(
                    tier.as_u8() == prev.as_u8() - 1,
                    "recovery skipped a rung: {:?} -> {:?}",
                    prev,
                    tier
                );
                prop_assert!(
                    healthy_streak >= recovery,
                    "recovered after only {} healthy periods (need {})",
                    healthy_streak,
                    recovery
                );
            }
            prev = tier;
        }
    }

    /// An intermittent fault whose healthy gaps are all shorter than the
    /// recovery window cannot chatter the loop: once demoted, the tier
    /// never returns to Primary for the remainder of the storm.
    #[test]
    fn hysteresis_prevents_chatter_under_intermittent_faults(
        recovery in 2usize..8,
        off_gap in 1usize..8,
        on_run in 2usize..6,
        cycles in 3usize..10,
    ) {
        prop_assume!(off_gap < recovery);
        let mut s = supervisor(recovery);
        let applied = [2000.0, 900.0, 900.0, 900.0];
        let ejected = [false; 4];
        let mut demoted = false;
        for _ in 0..cycles {
            // on_run >= stale_fallback_periods (2), so every on-phase
            // demotes at the latest by its second period.
            for _ in 0..on_run {
                let tier = s.step(&sample(true, &applied, &ejected)).tier;
                demoted |= tier > SupervisorTier::Primary;
                if demoted {
                    prop_assert!(
                        tier > SupervisorTier::Primary,
                        "chattered back to Primary during the storm"
                    );
                }
            }
            for _ in 0..off_gap {
                let tier = s.step(&sample(false, &applied, &ejected)).tier;
                prop_assert!(
                    tier > SupervisorTier::Primary,
                    "short healthy gap ({} < recovery {}) must not reach Primary",
                    off_gap,
                    recovery
                );
            }
        }
        prop_assert!(demoted);
    }
}
