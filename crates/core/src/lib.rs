//! # CapGPU — power capping for multi-GPU ML inference servers
//!
//! This crate is the top of the stack: the paper's contribution (the
//! CapGPU MIMO model-predictive power-capping controller with
//! throughput-driven weight assignment), every baseline it is evaluated
//! against, and the experiment runner that closes the loop over the
//! simulated testbed (`capgpu-sim`) and workloads (`capgpu-workload`).
//!
//! ## Architecture
//!
//! ```text
//!  ┌──────────────────────────── ExperimentRunner ───────────────────────────┐
//!  │  every second:   delta-sigma modulators → Server.set_all_frequencies    │
//!  │                  PipelineSim × N_gpu  → per-device utilization          │
//!  │                  Server.tick_second   → 1 Hz power-meter sample         │
//!  │  every period T: meter.average_last(T) ┐                                │
//!  │                  throughput monitors   ├→ PowerController.control()     │
//!  │                  SLO frequency floors  ┘        (CapGPU or baseline)    │
//!  └──────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! ## Controllers
//!
//! * [`controllers::CapGpuController`] — the paper's controller: condensed
//!   MIMO MPC (P = 8, M = 2) + weight assignment from normalized
//!   throughputs + per-GPU SLO frequency floors.
//! * [`controllers::FixedStepController`] / `SafeFixedStepController` —
//!   heuristic ±1-step baselines (§6.1 baseline 1).
//! * [`controllers::GpuOnlyController`] — pole-placed P control of a
//!   single shared GPU clock (§6.1 baseline 2, after OptimML).
//! * [`controllers::CpuOnlyController`] — pole-placed P control of the CPU
//!   DVFS knob (§6.1 baseline 3, after IBM server-level power control).
//! * [`controllers::CpuGpuSplitController`] — two independent loops with a
//!   fixed budget split (§6.1 baseline 4, after PowerCoord).
//!
//! ## Quickstart
//!
//! ```
//! use capgpu::prelude::*;
//!
//! let scenario = Scenario::paper_testbed(42);
//! let mut runner = ExperimentRunner::new(scenario, 900.0).unwrap();
//! let controller = runner.build_capgpu_controller().unwrap();
//! let trace = runner.run(controller, 25).unwrap();
//! let (mean, _std) = trace.steady_state_power(0.8);
//! assert!((mean - 900.0).abs() < 25.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod controllers;
pub mod daemon;
pub mod export;
pub mod rack;
pub mod runner;
pub mod summary;
pub mod supervisor;
pub mod sweep;
pub mod telemetry;
pub mod weights;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::config::{RlsTracking, Scenario, ScheduledChange, ServingConfig};
    pub use crate::controllers::{
        CapGpuController, CpuGpuSplitController, CpuOnlyController, FixedStepController,
        GpuOnlyController, PowerController, SafeFixedStepController,
    };
    pub use crate::daemon::{
        ConfigWatcher, Daemon, DaemonConfig, MetricsServer, PeriodReport, ReloadSignal,
    };
    pub use crate::runner::{ExperimentRunner, FixedRunStats, PeriodRecord, RunTrace};
    pub use crate::summary::RunSummary;
    pub use crate::supervisor::{
        Directive, HealthSample, Supervisor, SupervisorConfig, SupervisorTier,
    };
    pub use crate::sweep::{ControllerSpec, SweepCellResult, SweepReport, SweepSpec};
    pub use crate::telemetry::{RunTelemetry, TelemetryReport};
    pub use crate::weights::{PhaseMix, WeightAssigner};
    pub use capgpu_faults::{FaultKind, FaultSchedule, FaultSpec, Intermittency, StormConfig};
    pub use capgpu_llm::{LlmConfig, LlmEngine, LlmServiceModel, LlmTaskSpec, TokenRange};
    pub use capgpu_telemetry::TelemetryConfig;
}

/// Errors from the CapGPU framework layer.
#[derive(Debug)]
pub enum CapGpuError {
    /// Invalid configuration.
    BadConfig(String),
    /// Control-layer failure.
    Control(capgpu_control::ControlError),
    /// Simulated-testbed failure.
    Sim(capgpu_sim::SimError),
    /// Workload-layer failure.
    Workload(capgpu_workload::WorkloadError),
    /// Serving-layer failure.
    Serve(capgpu_serve::ServeError),
    /// LLM serving-layer failure.
    Llm(capgpu_llm::LlmError),
    /// Fault-schedule failure.
    Fault(capgpu_faults::FaultError),
    /// Power-backend failure (sense/actuate seam).
    Backend(capgpu_backend::BackendError),
}

impl std::fmt::Display for CapGpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapGpuError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            CapGpuError::Control(e) => write!(f, "control error: {e}"),
            CapGpuError::Sim(e) => write!(f, "testbed error: {e}"),
            CapGpuError::Workload(e) => write!(f, "workload error: {e}"),
            CapGpuError::Serve(e) => write!(f, "serving error: {e}"),
            CapGpuError::Llm(e) => write!(f, "llm serving error: {e}"),
            CapGpuError::Fault(e) => write!(f, "fault-schedule error: {e}"),
            CapGpuError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for CapGpuError {}

impl From<capgpu_control::ControlError> for CapGpuError {
    fn from(e: capgpu_control::ControlError) -> Self {
        CapGpuError::Control(e)
    }
}

impl From<capgpu_sim::SimError> for CapGpuError {
    fn from(e: capgpu_sim::SimError) -> Self {
        CapGpuError::Sim(e)
    }
}

impl From<capgpu_workload::WorkloadError> for CapGpuError {
    fn from(e: capgpu_workload::WorkloadError) -> Self {
        CapGpuError::Workload(e)
    }
}

impl From<capgpu_serve::ServeError> for CapGpuError {
    fn from(e: capgpu_serve::ServeError) -> Self {
        CapGpuError::Serve(e)
    }
}

impl From<capgpu_llm::LlmError> for CapGpuError {
    fn from(e: capgpu_llm::LlmError) -> Self {
        CapGpuError::Llm(e)
    }
}

impl From<capgpu_faults::FaultError> for CapGpuError {
    fn from(e: capgpu_faults::FaultError) -> Self {
        CapGpuError::Fault(e)
    }
}

impl From<capgpu_backend::BackendError> for CapGpuError {
    fn from(e: capgpu_backend::BackendError) -> Self {
        // A backend wrapping the simulated testbed surfaces the
        // underlying testbed error directly, so existing sim-path
        // callers keep matching on `CapGpuError::Sim`.
        match e {
            capgpu_backend::BackendError::Sim(inner) => CapGpuError::Sim(inner),
            other => CapGpuError::Backend(other),
        }
    }
}

/// Result alias for the framework layer.
pub type Result<T> = std::result::Result<T, CapGpuError>;
