//! The experiment runner: closes the control loop over the simulated
//! testbed and workloads, exactly mirroring the paper's §5 implementation.
//!
//! Timing structure (paper §6.1): the power meter samples at 1 Hz; the
//! control period is `T = 4` s, so the controller acts on the average of
//! the last 4 samples. Within each second the per-device delta-sigma
//! modulators resolve the controller's fractional frequency targets into
//! discrete supported clocks (§5 "Frequency Modulators").

use capgpu_backend::{PowerBackend, SimBackend};
use capgpu_control::latency::LatencyModel;
use capgpu_control::model::LinearPowerModel;
use capgpu_control::modulator::DeltaSigmaModulator;
use capgpu_control::sysid::{
    ExcitationPlan, IdentifiedModel, ScaledModelTracker, SystemIdentifier,
};
use capgpu_llm::LlmEngine;
use capgpu_serve::{ArrivalGen, ServeEngine, ServeWindowStats, ServiceModel};
use capgpu_sim::{Server, ServerBuilder};
use capgpu_workload::featsel::FeatselRateModel;
use capgpu_workload::monitor::ThroughputMonitor;
use capgpu_workload::pipeline::{ArrivalMode, PipelineConfig, PipelineSim, WindowStats};
use capgpu_workload::slo::SloTracker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{Scenario, ScheduledChange};
use crate::controllers::{
    CapGpuController, ControlInput, CpuGpuSplitController, CpuOnlyController, DeviceLayout,
    FixedStepController, GpuOnlyController, PowerController, SafeFixedStepController,
};
use crate::supervisor::{HealthSample, Supervisor, SupervisorTier};
use crate::telemetry::{PeriodObservation, Phase, RunTelemetry, TelemetryReport};
use crate::weights::{PhaseMix, WeightAssigner};
use crate::{CapGpuError, Result};

/// One control period's worth of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodRecord {
    /// Period index (0-based).
    pub period: usize,
    /// Set point in force during the period (W).
    pub setpoint: f64,
    /// Meter average over the period (W).
    pub avg_power: f64,
    /// Fractional frequency targets commanded at the period's end (MHz).
    pub targets: Vec<f64>,
    /// Mean applied (discrete) frequency per device over the period (MHz).
    pub applied_mean: Vec<f64>,
    /// Per-GPU-task throughput over the period (images/s).
    pub gpu_throughput: Vec<f64>,
    /// CPU throughput over the period (feature subsets/s).
    pub cpu_throughput: f64,
    /// Mean batch inference latency per GPU task (s; 0 if no batch done).
    pub gpu_mean_latency: Vec<f64>,
    /// SLO in force per GPU task (None = unconstrained).
    pub slo: Vec<Option<f64>>,
    /// SLO misses recorded this period per GPU task.
    pub slo_misses: Vec<usize>,
    /// Batches completed this period per GPU task.
    pub batches: Vec<usize>,
    /// SLO-derived frequency floors passed to the controller (MHz).
    pub floors: Vec<f64>,
    /// Whether the memory-throttle escape hatch was engaged this period.
    pub memory_escape_active: bool,
    /// Supervisory ladder tier in force when the period's control
    /// decision was made (0 = primary, 1 = safe fallback, 2 = park;
    /// always 0 when the scenario has no supervisor).
    pub supervisor_tier: u8,
    /// Whether the meter produced *no* fresh sample this period, so
    /// `avg_power` is the held-over previous measurement rather than a
    /// fresh average.
    pub meter_stale: bool,
    /// Wall time of the period's control solve (ns). Always 0 unless
    /// the scenario enables telemetry with
    /// [`capgpu_telemetry::TelemetryConfig::trace_spans`] — wall clocks
    /// are non-deterministic, so the default keeps traces bit-stable.
    pub solve_ns: u64,
    /// Wall time of the period's actuation loop (ns). Gated exactly
    /// like [`PeriodRecord::solve_ns`].
    pub actuate_ns: u64,
}

/// A full run's trace plus end-of-run aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Name of the controller that produced the trace.
    pub controller: String,
    /// Per-period records.
    pub records: Vec<PeriodRecord>,
    /// Final per-task deadline miss rates.
    pub miss_rates: Vec<f64>,
    /// Final per-task 99th-percentile latency (s): per-request
    /// end-to-end latency when the serving layer is enabled, per-batch
    /// inference latency otherwise; 0 where nothing was recorded.
    pub p99_latency_s: Vec<f64>,
    /// Per-task p99 time-to-first-token (s). Empty unless the
    /// scenario's LLM serving layer is enabled.
    pub ttft_p99_s: Vec<f64>,
    /// Per-task p99 inter-token latency (s). Empty unless the LLM
    /// serving layer is enabled.
    pub itl_p99_s: Vec<f64>,
    /// Per-task TTFT-SLO miss rates. Empty unless the LLM serving
    /// layer is enabled.
    pub ttft_miss_rates: Vec<f64>,
    /// Per-task inter-token-SLO miss rates. Empty unless the LLM
    /// serving layer is enabled.
    pub itl_miss_rates: Vec<f64>,
}

impl RunTrace {
    /// The power series (one entry per period).
    pub fn power_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.avg_power).collect()
    }

    /// Steady-state mean/std of power over the trailing fraction
    /// (paper: last 80 of 100 periods → `tail_fraction = 0.8`).
    pub fn steady_state_power(&self, tail_fraction: f64) -> (f64, f64) {
        capgpu_control::metrics::steady_state(&self.power_series(), tail_fraction)
    }

    /// Number of periods in which power exceeded the in-force set point by
    /// more than `tol` watts.
    pub fn violations(&self, tol: f64) -> usize {
        self.records
            .iter()
            .filter(|r| r.avg_power > r.setpoint + tol)
            .count()
    }

    /// Mean GPU throughput per task over the trailing fraction.
    pub fn steady_gpu_throughput(&self, tail_fraction: f64) -> Vec<f64> {
        let n_tasks = self
            .records
            .first()
            .map(|r| r.gpu_throughput.len())
            .unwrap_or(0);
        (0..n_tasks)
            .map(|t| {
                let series: Vec<f64> = self.records.iter().map(|r| r.gpu_throughput[t]).collect();
                capgpu_control::metrics::steady_state(&series, tail_fraction).0
            })
            .collect()
    }

    /// Mean CPU throughput over the trailing fraction (subsets/s).
    pub fn steady_cpu_throughput(&self, tail_fraction: f64) -> f64 {
        let series: Vec<f64> = self.records.iter().map(|r| r.cpu_throughput).collect();
        capgpu_control::metrics::steady_state(&series, tail_fraction).0
    }

    /// Mean batch latency per task over the trailing fraction, ignoring
    /// periods with no completed batch.
    pub fn steady_gpu_latency(&self, tail_fraction: f64) -> Vec<f64> {
        let n_tasks = self
            .records
            .first()
            .map(|r| r.gpu_mean_latency.len())
            .unwrap_or(0);
        // Clamp the same way as `metrics::steady_state`: out-of-range
        // fractions degrade gracefully (<= 0 keeps exactly the last
        // record, >= 1 keeps the whole trace) and an empty trace yields
        // empty means rather than an index underflow.
        let keep = if self.records.is_empty() {
            0
        } else {
            (((self.records.len() as f64) * tail_fraction.clamp(0.0, 1.0)).round() as usize)
                .clamp(1, self.records.len())
        };
        let skip = self.records.len().saturating_sub(keep);
        (0..n_tasks)
            .map(|t| {
                let vals: Vec<f64> = self.records[skip.min(self.records.len())..]
                    .iter()
                    .filter(|r| r.batches[t] > 0)
                    .map(|r| r.gpu_mean_latency[t])
                    .collect();
                capgpu_linalg::stats::mean(&vals)
            })
            .collect()
    }
}

/// The runner.
///
/// `Clone` snapshots the complete closed-loop state — server, pipelines,
/// monitors, RNGs and the cached identified model. Because every
/// stochastic component is seeded, a clone replays the exact same
/// trajectory as its original: the sweep engine identifies once per
/// (scenario, seed) class and clones the post-identification runner for
/// each cell, which is bit-identical to each cell identifying on its own.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    scenario: Scenario,
    /// The sense/actuate seam: the control loop reads power, clocks and
    /// staleness through the [`PowerBackend`] surface of this backend
    /// and commands frequencies back through it. Sim-only plant access
    /// (fault injection, thermal state, workload coupling) goes through
    /// [`SimBackend::server`] / [`SimBackend::server_mut`].
    backend: SimBackend,
    layout: DeviceLayout,
    pipelines: Vec<PipelineSim>,
    gpu_device_indices: Vec<usize>,
    featsel: FeatselRateModel,
    monitors: Vec<ThroughputMonitor>,
    slo_tracker: SloTracker,
    latency_models: Vec<LatencyModel>,
    modulators: Vec<DeltaSigmaModulator>,
    setpoint: f64,
    slos: Vec<Option<f64>>,
    targets: Vec<f64>,
    rng: StdRng,
    identified: Option<IdentifiedModel>,
    /// Streaming restricted re-identifier (gain scale + offset) for
    /// continuous model tracking; populated only when the scenario
    /// enables `rls_tracking` (anchored to the startup identification by
    /// [`ExperimentRunner::identify`]).
    tracker: Option<ScaledModelTracker>,
    /// Per-task aggregates for the period currently being simulated.
    second_stats: Vec<TaskPeriodStats>,
    /// Utilizations of the most recent simulated second.
    last_utils: Vec<f64>,
    /// Whether the §4.4 memory-throttle escape is currently engaged.
    mem_escape_active: bool,
    /// Index of the (single) CPU package device.
    cpu_device_index: usize,
    /// Recycled per-window pipeline statistics (hot-path scratch).
    scratch_stats: WindowStats,
    /// Request-level serving engines, one per GPU task; empty when the
    /// scenario's serving layer is disabled. When present they replace
    /// the pipeline model as the GPU-side plant: busy fraction drives
    /// utilization, per-request completions drive the SLO tracker.
    serve_engines: Vec<ServeEngine>,
    /// Two-phase LLM serving engines, one per GPU task; empty when the
    /// scenario's LLM layer is disabled. When present they replace the
    /// pipeline model as the GPU-side plant, and additionally feed the
    /// controller a per-device [`PhaseMix`] signal each period.
    llm_engines: Vec<LlmEngine>,
    /// Recycled per-window serving statistics (hot-path scratch, shared
    /// by the one-shot and LLM serving plants).
    serve_scratch: ServeWindowStats,
    /// Measured time-to-first-token tracker (LLM mode only; empty
    /// task list otherwise).
    ttft_tracker: SloTracker,
    /// Measured inter-token-latency tracker (LLM mode only).
    itl_tracker: SloTracker,
    /// Per-task phase aggregates for the period being simulated.
    phase_stats: Vec<PhasePeriodStats>,
    /// Run telemetry (registry + journal + spans); `None` — recording
    /// nothing and touching nothing — unless the scenario opts in.
    telemetry: Option<RunTelemetry>,
}

impl ExperimentRunner {
    /// Builds a runner from a scenario and the initial power set point.
    ///
    /// # Errors
    /// Propagates scenario validation and component construction errors.
    pub fn new(scenario: Scenario, initial_setpoint: f64) -> Result<Self> {
        scenario.validate()?;
        let mut builder = ServerBuilder::new(scenario.seed).platform_watts(scenario.platform_watts);
        for d in &scenario.devices {
            builder = builder.add_device(d.clone());
        }
        let server = builder.build()?;
        let layout = DeviceLayout::new(
            scenario.devices.iter().map(|d| d.kind).collect(),
            server.f_min().to_vec(),
            server.f_max().to_vec(),
        )?;
        let gpu_device_indices = server.gpu_indices().to_vec();
        let mut pipelines = Vec::new();
        for (i, model) in scenario.gpu_models.iter().enumerate() {
            let dev = gpu_device_indices[i];
            pipelines.push(PipelineSim::new(PipelineConfig {
                model: model.clone(),
                num_workers: scenario.workers_per_pipeline,
                queue_capacity: scenario.queue_capacity,
                seed: scenario.seed.wrapping_add(1000 + i as u64),
                f_gpu_max_mhz: scenario.devices[dev].freq_table.max(),
                arrivals: match &scenario.arrival_rates {
                    Some(rates) => ArrivalMode::Open {
                        rate_img_s: rates[i],
                    },
                    None => ArrivalMode::Closed,
                },
            })?);
        }
        let featsel =
            FeatselRateModel::new(scenario.featsel_ref_rate, scenario.featsel_ref_mhz, 0.05)?;
        let monitors = (0..layout.len())
            .map(|_| ThroughputMonitor::new(0.5))
            .collect();
        // SLO tracker: a placeholder huge SLO where None.
        let initial: Vec<f64> = scenario
            .slos
            .iter()
            .map(|s| s.unwrap_or(f64::MAX / 2.0))
            .collect();
        let slo_tracker = SloTracker::new(initial);
        let latency_models = scenario
            .gpu_models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let dev = gpu_device_indices[i];
                LatencyModel::new(
                    m.e_min_s,
                    scenario.gamma_fitted,
                    scenario.devices[dev].freq_table.max(),
                )
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let modulators = scenario
            .devices
            .iter()
            .map(|d| DeltaSigmaModulator::new(d.freq_table.levels().to_vec()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let targets = server.f_min().to_vec();
        let rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x9E37_79B9));
        let slos = scenario.slos.clone();
        let n_tasks = pipelines.len();
        let n_devices = layout.len();
        let cpu_device_index = server.cpu_indices()[0];
        let mut serve_engines = Vec::new();
        if let Some(cfg) = &scenario.serving {
            for (i, m) in scenario.gpu_models.iter().enumerate() {
                let dev = gpu_device_indices[i];
                let service = ServiceModel {
                    e_min_s: m.e_min_s,
                    // The plant serves at the model's *true* γ; the
                    // controller still plans with the fitted one.
                    gamma: m.gamma_true,
                    f_max_mhz: scenario.devices[dev].freq_table.max(),
                    max_batch: m.batch_size,
                    batch_overhead: cfg.batch_overhead,
                };
                let arrivals = ArrivalGen::new(
                    cfg.arrivals[i].clone(),
                    scenario.seed.wrapping_add(2000 + i as u64),
                )?;
                serve_engines.push(ServeEngine::new(
                    service,
                    cfg.batch_timeout_s,
                    cfg.queue_capacity,
                    arrivals,
                )?);
            }
        }
        let mut llm_engines = Vec::new();
        if let Some(cfg) = &scenario.llm {
            for (i, task) in cfg.tasks.iter().enumerate() {
                llm_engines.push(LlmEngine::new(
                    cfg.model,
                    task.clone(),
                    cfg.queue_capacity,
                    scenario.seed.wrapping_add(3000 + i as u64),
                )?);
            }
        }
        // TTFT / inter-token trackers carry real SLOs only in LLM mode;
        // otherwise a one-task placeholder (the tracker requires >= 1
        // task) that is never recorded into.
        let (ttft_slos, itl_slos): (Vec<f64>, Vec<f64>) = match &scenario.llm {
            Some(cfg) => cfg
                .tasks
                .iter()
                .map(|t| (t.ttft_slo_s, t.itl_slo_s))
                .unzip(),
            None => (vec![f64::MAX / 2.0], vec![f64::MAX / 2.0]),
        };
        let telemetry = scenario
            .telemetry
            .map(|cfg| RunTelemetry::new(cfg, &layout.kinds, n_tasks, !llm_engines.is_empty()));
        let backend = SimBackend::new(server);
        Ok(ExperimentRunner {
            telemetry,
            serve_engines,
            llm_engines,
            ttft_tracker: SloTracker::new(ttft_slos),
            itl_tracker: SloTracker::new(itl_slos),
            phase_stats: vec![PhasePeriodStats::default(); n_tasks],
            serve_scratch: ServeWindowStats::default(),
            second_stats: vec![TaskPeriodStats::default(); n_tasks],
            last_utils: vec![0.0; n_devices],
            mem_escape_active: false,
            cpu_device_index,
            scratch_stats: WindowStats::default(),
            scenario,
            backend,
            layout,
            pipelines,
            gpu_device_indices,
            featsel,
            monitors,
            slo_tracker,
            latency_models,
            modulators,
            setpoint: initial_setpoint,
            slos,
            targets,
            rng,
            identified: None,
            tracker: None,
        })
    }

    /// The device layout.
    pub fn layout(&self) -> &DeviceLayout {
        &self.layout
    }

    /// The current power set point.
    pub fn setpoint(&self) -> f64 {
        self.setpoint
    }

    /// Changes the power set point (used by rack-level coordinators that
    /// re-divide a shared budget between servers at runtime).
    pub fn set_setpoint(&mut self, watts: f64) {
        self.setpoint = watts;
    }

    /// Direct access to the simulated server (tests, oracles).
    pub fn server(&self) -> &Server {
        self.backend.server()
    }

    /// The sense/actuate backend the control loop runs against.
    pub fn backend(&self) -> &SimBackend {
        &self.backend
    }

    /// Scales every serving task's request arrival intensity relative to
    /// its *nominal* (scenario-configured) rate — the hook fleet-level
    /// load balancers use to migrate request streams between servers at
    /// allocator-epoch boundaries: the stream's share of intensity leaves
    /// one server's engines and arrives at another's. Takes effect from
    /// the next drawn arrival; absolute, not cumulative (setting 1.0
    /// always restores the nominal rates).
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] when the scenario has no serving layer
    /// or the scale is not positive and finite.
    pub fn set_serving_intensity_scale(&mut self, scale: f64) -> Result<()> {
        if self.serve_engines.is_empty() && self.llm_engines.is_empty() {
            return Err(CapGpuError::BadConfig(
                "serving intensity scale without the serving layer".into(),
            ));
        }
        for engine in &mut self.serve_engines {
            engine.set_intensity_scale(scale)?;
        }
        for engine in &mut self.llm_engines {
            engine.set_intensity_scale(scale)?;
        }
        Ok(())
    }

    /// The run's telemetry instruments, when the scenario enables them.
    pub fn telemetry(&self) -> Option<&RunTelemetry> {
        self.telemetry.as_ref()
    }

    /// A frozen [`TelemetryReport`] of everything recorded so far, or
    /// `None` when the scenario has telemetry off.
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        self.telemetry.as_ref().map(RunTelemetry::report)
    }

    /// Runs the paper's system-identification procedure (§4.2): sweep each
    /// device's frequency with the others held, dwell one control period
    /// per point under the live workload, fit `p = A·F + C`.
    ///
    /// The fitted model is cached and reused by the controller builders.
    ///
    /// # Errors
    /// Propagates excitation-plan and fitting errors.
    pub fn identify(&mut self) -> Result<IdentifiedModel> {
        if let Some(tm) = self.telemetry.as_mut() {
            tm.span_enter(Phase::Identify);
        }
        let fitted = self.identify_inner();
        if let Some(tm) = self.telemetry.as_mut() {
            tm.span_exit();
        }
        fitted
    }

    fn identify_inner(&mut self) -> Result<IdentifiedModel> {
        let frac = self.scenario.sysid_hold_fraction;
        let hold: Vec<f64> = self
            .layout
            .f_min
            .iter()
            .zip(self.layout.f_max.iter())
            .map(|(lo, hi)| lo + frac * (hi - lo))
            .collect();
        let plan = ExcitationPlan::new(
            self.layout.f_min.clone(),
            self.layout.f_max.clone(),
            hold,
            self.scenario.sysid_steps_per_device,
        )?;
        let mut ident = SystemIdentifier::new(self.layout.len());
        // Continuous tracking is seeded with the sweep's samples (replayed
        // into the tracker once the anchor model exists below), so the
        // first closed-loop refits do not overweight a handful of
        // near-steady-state samples.
        let mut track_rows: Option<Vec<(Vec<f64>, f64)>> =
            self.scenario.rls_tracking.map(|_| Vec::new());
        let mut applied = Vec::with_capacity(self.layout.len());
        for point in plan.points() {
            self.backend.set_frequencies(&point)?;
            // Effective = applied clamped by any active thermal throttle.
            self.backend.effective_frequencies_into(&mut applied)?;
            // Dwell one control period; workloads run at these clocks.
            let mut power_sum = 0.0;
            let mut samples = 0;
            for _ in 0..self.scenario.control_period_s {
                if let Some(p) = self.advance_one_second(&applied)? {
                    power_sum += p;
                    samples += 1;
                }
            }
            if samples > 0 {
                let p_mean = power_sum / samples as f64;
                ident.record(&applied, p_mean);
                if let Some(rows) = track_rows.as_mut() {
                    rows.push((applied.clone(), p_mean));
                }
            }
        }
        let fitted = ident.fit()?;
        if let Some(cfg) = self.scenario.rls_tracking {
            let mut tracker = ScaledModelTracker::new(fitted.model.clone(), cfg.forgetting)?;
            for (row, p_mean) in track_rows.iter().flatten() {
                tracker.record(row, *p_mean);
            }
            self.tracker = Some(tracker);
        }
        self.identified = Some(fitted.clone());
        Ok(fitted)
    }

    /// The cached identified model, identifying first if needed.
    ///
    /// # Errors
    /// Propagates identification errors.
    pub fn identified_model(&mut self) -> Result<LinearPowerModel> {
        if self.identified.is_none() {
            self.identify()?;
        }
        Ok(self
            .identified
            .as_ref()
            .expect("just identified")
            .model
            .clone())
    }

    /// Builds the CapGPU controller from the identified model.
    ///
    /// # Errors
    /// Propagates identification and construction errors.
    pub fn build_capgpu_controller(&mut self) -> Result<CapGpuController> {
        let model = self.identified_model()?;
        CapGpuController::new(&self.layout, model, WeightAssigner::default())
    }

    /// Builds the CapGPU controller with the phase-mix signal ignored —
    /// throughput-inversion weights only. The ablation arm that shows
    /// why phase awareness matters under LLM serving: completions-lumpy
    /// decode-bound devices read as idle and get parked at the floor,
    /// paying inter-token latency for power that memory-bound decode
    /// never returns.
    ///
    /// # Errors
    /// Propagates identification and construction errors.
    pub fn build_capgpu_phase_blind(&mut self) -> Result<CapGpuController> {
        let model = self.identified_model()?;
        let config = capgpu_control::mpc::MpcConfig::paper_defaults(
            self.layout.f_min.clone(),
            self.layout.f_max.clone(),
        );
        CapGpuController::with_config(
            config,
            model,
            WeightAssigner::phase_blind(),
            "CapGPU (phase-blind)",
        )
    }

    /// Builds the paper's controller with the structure-exploiting fast
    /// MPC solver enabled (`MpcConfig::fast_solver`): same model, weights,
    /// and constraints as [`ExperimentRunner::build_capgpu_controller`],
    /// but the condensed QP is solved in cumulative coordinates as a box
    /// QP with an explicit-MPC region table. Agrees with the default
    /// controller to solver tolerance (see DESIGN.md §15).
    ///
    /// # Errors
    /// Propagates identification and construction errors.
    pub fn build_capgpu_fast(&mut self) -> Result<CapGpuController> {
        let model = self.identified_model()?;
        let mut config = capgpu_control::mpc::MpcConfig::paper_defaults(
            self.layout.f_min.clone(),
            self.layout.f_max.clone(),
        );
        config.fast_solver = true;
        CapGpuController::with_config(config, model, WeightAssigner::default(), "CapGPU (fast)")
    }

    /// Builds the GPU-Only baseline (pole 0.5) from identified GPU gains.
    ///
    /// # Errors
    /// Propagates identification and construction errors.
    pub fn build_gpu_only(&mut self) -> Result<GpuOnlyController> {
        let model = self.identified_model()?;
        let gain: f64 = self
            .layout
            .gpu_indices()
            .iter()
            .map(|&i| model.gains()[i].max(0.0))
            .sum();
        GpuOnlyController::new(self.layout.clone(), gain.max(1e-6), 0.5)
    }

    /// Builds the CPU-Only baseline (pole 0.5) from identified CPU gains.
    ///
    /// # Errors
    /// Propagates identification and construction errors.
    pub fn build_cpu_only(&mut self) -> Result<CpuOnlyController> {
        let model = self.identified_model()?;
        let gain: f64 = self
            .layout
            .cpu_indices()
            .iter()
            .map(|&i| model.gains()[i].max(0.0))
            .sum();
        CpuOnlyController::new(self.layout.clone(), gain.max(1e-6), 0.5)
    }

    /// Builds the CPU+GPU split baseline with the given GPU budget share.
    ///
    /// # Errors
    /// Propagates identification and construction errors.
    pub fn build_split(&mut self, gpu_share: f64) -> Result<CpuGpuSplitController> {
        let model = self.identified_model()?;
        let cpu_gain: f64 = self
            .layout
            .cpu_indices()
            .iter()
            .map(|&i| model.gains()[i].max(0.0))
            .sum();
        let gpu_gain: f64 = self
            .layout
            .gpu_indices()
            .iter()
            .map(|&i| model.gains()[i].max(0.0))
            .sum();
        CpuGpuSplitController::new(
            self.layout.clone(),
            cpu_gain.max(1e-6),
            gpu_gain.max(1e-6),
            gpu_share,
            0.5,
        )
    }

    /// Builds the Fixed-step baseline with the given step multiplier.
    pub fn build_fixed_step(&self, step_multiplier: usize) -> FixedStepController {
        FixedStepController::new(self.layout.clone(), step_multiplier)
    }

    /// Builds the Safe Fixed-step baseline. The margin defaults to the
    /// worst-case one-step power impact implied by the identified model.
    ///
    /// # Errors
    /// Propagates identification errors.
    pub fn build_safe_fixed_step(
        &mut self,
        step_multiplier: usize,
    ) -> Result<SafeFixedStepController> {
        let model = self.identified_model()?;
        let worst = self
            .layout
            .kinds
            .iter()
            .zip(model.gains().iter())
            .map(|(k, g)| {
                let unit = match k {
                    capgpu_sim::DeviceKind::Cpu => {
                        crate::controllers::fixed_step::CPU_STEP_UNIT_MHZ
                    }
                    capgpu_sim::DeviceKind::Gpu => {
                        crate::controllers::fixed_step::GPU_STEP_UNIT_MHZ
                    }
                };
                (g * unit * step_multiplier as f64).abs()
            })
            .fold(0.0_f64, f64::max);
        Ok(SafeFixedStepController::new(
            self.layout.clone(),
            step_multiplier,
            // Margin: one worst-case step plus meter noise headroom.
            worst + 2.0 * self.backend.meter_noise_std(),
        ))
    }

    /// Advances one simulated second at the given applied frequencies;
    /// returns the meter sample, if the meter produced one. Internal
    /// helper shared by identification and the main loop — updates
    /// pipelines, computes utilizations, ticks the server.
    fn advance_one_second(&mut self, applied: &[f64]) -> Result<Option<f64>> {
        self.advance_one_second_collect(applied, None)
    }

    /// [`ExperimentRunner::advance_one_second`] with an optional per-task
    /// queue-delay collector (used by fixed-frequency motivation runs;
    /// the closed-loop path passes `None` and skips the copies).
    ///
    /// All per-second state lives in recycled buffers (`last_utils`,
    /// `scratch_stats`): this function performs no heap allocation.
    fn advance_one_second_collect(
        &mut self,
        applied: &[f64],
        mut queue_delays: Option<&mut Vec<Vec<f64>>>,
    ) -> Result<Option<f64>> {
        let cpu_dev = self.cpu_device_index;
        let f_cpu = applied[cpu_dev];
        let mut utils = std::mem::take(&mut self.last_utils);
        utils.iter_mut().for_each(|u| *u = 0.0);
        let mut worker_util_sum = 0.0;
        if !self.llm_engines.is_empty() {
            // Two-phase LLM plant: continuous-batching engines replace
            // the pipeline model. Utilization is attributed per regime —
            // compute-bound prefill busy-time at `gpu_util_prefill`,
            // memory-bound decode at `gpu_util_decode` — which is exactly
            // why capping a decode-bound device recovers so little power.
            // End-to-end request latencies feed the SLO tracker; token
            // latencies feed the TTFT / inter-token trackers; busy-time
            // splits and KV occupancy accumulate into the period's
            // phase-mix signal.
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_enter(Phase::ServeDrain);
            }
            let util_prefill = self
                .scenario
                .llm
                .as_ref()
                .map(|c| c.model.gpu_util_prefill)
                .unwrap_or(1.0);
            let util_decode = self
                .scenario
                .llm
                .as_ref()
                .map(|c| c.model.gpu_util_decode)
                .unwrap_or(1.0);
            let sstats = &mut self.serve_scratch;
            for i in 0..self.llm_engines.len() {
                let dev = self.gpu_device_indices[i];
                // An ejected device does no work and draws no power; its
                // engine is frozen until re-admission.
                if self.backend.is_ejected(dev) {
                    continue;
                }
                // An engaged memory throttle slows inference: model it as
                // an effective core-clock derating in the latency law.
                let f_eff = match (
                    self.backend.server().device(dev)?.mem_throttle,
                    self.backend.server().memory_throttled(dev)?,
                ) {
                    (Some(mt), true) => applied[dev] / mt.latency_penalty,
                    _ => applied[dev],
                };
                self.llm_engines[i].advance_into(1.0, f_eff, sstats);
                utils[dev] = (sstats.prefill_busy_s * util_prefill
                    + sstats.decode_busy_s * util_decode)
                    .clamp(0.0, 1.0);
                // Tokenization/detokenization tracks the admitted
                // request stream on the preprocessing workers.
                let model = &self.scenario.gpu_models[i];
                let admitted = (sstats.arrivals - sstats.dropped) as f64;
                worker_util_sum += (admitted * model.preprocess_time(f_cpu)
                    / self.scenario.workers_per_pipeline.max(1) as f64)
                    .clamp(0.0, 1.0);
                for lat in &sstats.request_latencies {
                    self.slo_tracker.record(i, *lat);
                }
                for t in &sstats.ttft_s {
                    self.ttft_tracker.record(i, *t);
                }
                for t in &sstats.inter_token_s {
                    self.itl_tracker.record(i, *t);
                }
                self.second_stats[i].images += sstats.completions;
                self.second_stats[i].batches += sstats.batches;
                self.second_stats[i].latency_sum += sstats.request_latencies.iter().sum::<f64>();
                let ps = &mut self.phase_stats[i];
                ps.prefill_busy_s += sstats.prefill_busy_s;
                ps.decode_busy_s += sstats.decode_busy_s;
                ps.kv_occupancy_end = sstats.kv_occupancy();
                ps.tokens += (sstats.prefill_tokens + sstats.decode_tokens) as u64;
                if let Some(tm) = self.telemetry.as_mut() {
                    tm.on_serve_second(i, sstats, self.llm_engines[i].queue_len());
                    tm.on_llm_second(i, sstats);
                }
            }
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_exit();
            }
        } else if !self.serve_engines.is_empty() {
            // Request-level serving plant: the discrete-event engines
            // replace the pipeline model. Busy fraction (scaled by the
            // model's busy utilization) drives the power simulation,
            // per-request completions drive the SLO tracker, and the
            // period's queue drain becomes the throughput signal via
            // `second_stats`. Per-image queue delays are folded into the
            // end-to-end request latencies, so the `queue_delays`
            // collector stays empty in this mode.
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_enter(Phase::ServeDrain);
            }
            let sstats = &mut self.serve_scratch;
            for i in 0..self.serve_engines.len() {
                let dev = self.gpu_device_indices[i];
                // An ejected device does no work and draws no power; its
                // engine is frozen until re-admission.
                if self.backend.is_ejected(dev) {
                    continue;
                }
                // An engaged memory throttle slows inference: model it as
                // an effective core-clock derating in the latency law.
                let f_eff = match (
                    self.backend.server().device(dev)?.mem_throttle,
                    self.backend.server().memory_throttled(dev)?,
                ) {
                    (Some(mt), true) => applied[dev] / mt.latency_penalty,
                    _ => applied[dev],
                };
                self.serve_engines[i].advance_into(1.0, f_eff, sstats);
                let model = &self.scenario.gpu_models[i];
                utils[dev] = (sstats.busy_fraction * model.gpu_util_busy).clamp(0.0, 1.0);
                // Preprocessing tracks the admitted request stream: each
                // admitted image costs one worker `preprocess_time`.
                let admitted = (sstats.arrivals - sstats.dropped) as f64;
                worker_util_sum += (admitted * model.preprocess_time(f_cpu)
                    / self.scenario.workers_per_pipeline.max(1) as f64)
                    .clamp(0.0, 1.0);
                for lat in &sstats.request_latencies {
                    self.slo_tracker.record(i, *lat);
                }
                self.second_stats[i].images += sstats.completions;
                self.second_stats[i].batches += sstats.batches;
                self.second_stats[i].latency_sum += sstats.request_latencies.iter().sum::<f64>();
                if let Some(tm) = self.telemetry.as_mut() {
                    tm.on_serve_second(i, sstats, self.serve_engines[i].queue_len());
                }
            }
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_exit();
            }
        } else {
            let stats = &mut self.scratch_stats;
            for (i, pipe) in self.pipelines.iter_mut().enumerate() {
                let dev = self.gpu_device_indices[i];
                // An ejected device does no work and draws no power; its
                // pipeline is frozen until re-admission.
                if self.backend.is_ejected(dev) {
                    continue;
                }
                // An engaged memory throttle slows inference: model it as
                // an effective core-clock derating in the latency law.
                let f_eff = match (
                    self.backend.server().device(dev)?.mem_throttle,
                    self.backend.server().memory_throttled(dev)?,
                ) {
                    (Some(mt), true) => applied[dev] / mt.latency_penalty,
                    _ => applied[dev],
                };
                pipe.advance_into(1.0, f_cpu, f_eff, stats);
                utils[dev] = stats.gpu_util;
                worker_util_sum += stats.cpu_worker_util;
                // Latency and throughput bookkeeping at 1 s granularity is
                // aggregated per period by the caller via pipeline stats;
                // record SLO hits here so no batch is lost.
                for lat in &stats.batch_latencies {
                    self.slo_tracker.record(i, *lat);
                }
                self.second_stats[i].images += stats.images_completed;
                self.second_stats[i].batches += stats.batch_latencies.len();
                self.second_stats[i].latency_sum += stats.batch_latencies.iter().sum::<f64>();
                if let Some(qd) = queue_delays.as_deref_mut() {
                    qd[i].extend_from_slice(&stats.queue_delays);
                }
            }
        }
        // CPU package utilization: the feature-selection job keeps the
        // remaining cores busy (~0.85) and preprocessing adds the rest.
        let worker_share = worker_util_sum / self.pipelines.len().max(1) as f64;
        utils[cpu_dev] = (0.85 + 0.1 * worker_share).clamp(0.0, 1.0);
        // One second of plant time through the sense/actuate seam: the
        // simulator consumes the staged utilizations (real hardware
        // measures its own load) and hands back the meter sample.
        self.backend.stage_utilizations(&utils)?;
        let sample = self.backend.advance(1.0)?;
        self.last_utils = utils;
        Ok(sample)
    }

    /// Runs `num_periods` control periods with the given controller,
    /// returning the trace.
    ///
    /// # Errors
    /// Propagates controller and testbed errors.
    pub fn run(
        &mut self,
        mut controller: impl PowerController,
        num_periods: usize,
    ) -> Result<RunTrace> {
        let t = self.scenario.control_period_s;
        let n = self.layout.len();
        if let Some(tm) = self.telemetry.as_mut() {
            tm.begin_run(controller.name(), self.setpoint, num_periods);
        }
        let mut records = Vec::with_capacity(num_periods);
        let mut last_power = self.scenario.platform_watts;
        let changes = self.scenario.changes.clone();
        // Fault schedule (capgpu-faults): per-spec active flags drive
        // apply/clear transitions at period boundaries.
        let fault_schedule = self.scenario.faults.clone();
        let mut fault_active: Vec<bool> = fault_schedule
            .as_ref()
            .map(|s| vec![false; s.specs.len()])
            .unwrap_or_default();
        // Supervisory failover layer: wraps the controller with the
        // staleness watchdog, authority detector, quarantine, and the
        // CapGPU → safe fixed-step → park ladder. Needs the identified
        // gains (for predicted Δp) and a ready fallback controller.
        let mut supervision: Option<(Supervisor, SafeFixedStepController)> =
            match self.scenario.supervisor {
                Some(cfg) => {
                    let model = self.identified_model()?;
                    let fallback = self.build_safe_fixed_step(1)?;
                    Some((Supervisor::new(cfg, model.gains().to_vec(), n)?, fallback))
                }
                None => None,
            };
        let mut ejected_flags = vec![false; n];
        // Latencies recorded during calibration (identification) must not
        // count against the measured run's SLO statistics.
        self.slo_tracker.reset_stats();
        self.ttft_tracker.reset_stats();
        self.itl_tracker.reset_stats();
        let llm_on = !self.llm_engines.is_empty();
        // Per-device phase mix handed to the controller (LLM mode only);
        // non-LLM devices stay at the neutral mix.
        let mut phase_mix = vec![PhaseMix::neutral(); n];
        // Per-second scratch, recycled across all periods of the run.
        let mut levels = vec![0.0; n];
        let mut applied = Vec::with_capacity(n);
        let mut applied_sum = vec![0.0; n];
        let mut device_power = Vec::with_capacity(n);
        // Continuous tracking needs an anchor model; identify if the
        // caller has not already done so.
        if self.scenario.rls_tracking.is_some() && self.tracker.is_none() {
            self.identify()?;
        }
        let probe_mhz = self.scenario.rls_tracking.map_or(0.0, |c| c.probe_mhz);
        let mut probed = vec![0.0; n];
        let mut prev_applied_mean: Option<Vec<f64>> = None;
        // Scale last pushed to the controller. Refits inside the deadband
        // are withheld: re-pushing on every sub-percent estimate wiggle
        // makes the MPC chase identification noise, which costs more
        // tracking error than the wiggle is worth.
        let mut pushed_scale = 1.0_f64;
        for period in 0..num_periods {
            let t_start_s = (period * t) as f64;
            let t_end_s = ((period + 1) * t) as f64;
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_enter(Phase::Period);
            }
            // Fault-schedule transitions take effect at period start:
            // each spec is applied when it becomes active and cleared
            // when it stops (including intermittency flaps).
            if let Some(schedule) = &fault_schedule {
                for (i, spec) in schedule.specs.iter().enumerate() {
                    let now = spec.active_at(period);
                    if now != fault_active[i] {
                        if now {
                            spec.kind.apply(self.backend.server_mut())?;
                        } else {
                            spec.kind.clear(self.backend.server_mut())?;
                        }
                        fault_active[i] = now;
                        if let Some(tm) = self.telemetry.as_mut() {
                            tm.on_fault(
                                period,
                                t_start_s,
                                i,
                                spec.kind.label(),
                                spec.kind.device(),
                                now,
                            );
                        }
                    }
                }
            }
            // Scheduled changes take effect at the start of their period.
            for change in &changes {
                match change {
                    ScheduledChange::SetPoint { at_period, watts } if *at_period == period => {
                        self.setpoint = *watts;
                        if let Some(tm) = self.telemetry.as_mut() {
                            tm.on_setpoint_change(period, t_start_s, *watts);
                        }
                    }
                    ScheduledChange::Slo {
                        at_period,
                        task,
                        slo_s,
                    } if *at_period == period => {
                        self.slos[*task] = Some(*slo_s);
                        self.slo_tracker.set_slo(*task, *slo_s);
                    }
                    ScheduledChange::ArrivalRate {
                        at_period,
                        task,
                        rate_img_s,
                    } if *at_period == period => {
                        self.pipelines[*task].set_arrival_rate(*rate_img_s)?;
                    }
                    ScheduledChange::MeterFault { at_period, fault } if *at_period == period => {
                        self.backend.server_mut().set_meter_fault(*fault);
                    }
                    ScheduledChange::GainDrift {
                        at_period,
                        device,
                        factor,
                    } if *at_period == period => {
                        self.backend
                            .server_mut()
                            .scale_power_gain(*device, *factor)?;
                    }
                    ScheduledChange::ServingBurst {
                        at_period,
                        task,
                        factor,
                    } if *at_period == period => {
                        if !self.llm_engines.is_empty() {
                            self.llm_engines
                                .get_mut(*task)
                                .ok_or_else(|| {
                                    CapGpuError::BadConfig(format!(
                                        "serving burst targets unknown llm task {task}"
                                    ))
                                })?
                                .set_intensity_scale(*factor)?;
                        } else {
                            self.serve_engines
                                .get_mut(*task)
                                .ok_or_else(|| {
                                    CapGpuError::BadConfig(
                                        "serving burst without the serving layer".into(),
                                    )
                                })?
                                .set_intensity_scale(*factor)?;
                        }
                    }
                    _ => {}
                }
            }

            // Reset per-period aggregates.
            self.second_stats
                .iter_mut()
                .for_each(|s| *s = TaskPeriodStats::default());
            self.phase_stats
                .iter_mut()
                .for_each(|s| *s = PhasePeriodStats::default());
            let misses_before: Vec<usize> = (0..self.pipelines.len())
                .map(|i| {
                    (self.slo_tracker.miss_rate(i) * self.slo_tracker.latencies(i).len() as f64)
                        .round() as usize
                })
                .collect();

            // One control period: T seconds of actuation. CapGPU resolves
            // fractional targets by delta-sigma modulation (§5); baselines
            // apply plain nearest-level rounding (§6.2 applies the
            // modulator only to CapGPU).
            let modulate = controller.uses_delta_sigma();
            applied_sum.iter_mut().for_each(|s| *s = 0.0);
            let mut fresh_meter_samples = 0usize;
            // Persistent-excitation probe (tracking only): a converged
            // loop holds frequencies still, so without a probe the
            // closed-loop stream carries no gain information — and worse,
            // the few moves it does contain are the controller's own
            // noise responses, which bias any fit. The ±probe_mhz offsets
            // use a deterministic per-(period, device) sign pattern so
            // they never perturb the simulation's RNG streams.
            if probe_mhz > 0.0 {
                for (d, p) in probed.iter_mut().enumerate() {
                    let sign = probe_sign(self.scenario.seed, period, d);
                    *p = (self.targets[d] + probe_mhz * sign)
                        .clamp(self.layout.f_min[d], self.layout.f_max[d]);
                }
            } else {
                probed.copy_from_slice(&self.targets);
            }
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_enter(Phase::Actuate);
            }
            for _ in 0..t {
                if modulate {
                    match self.telemetry.as_mut() {
                        // Carry-wrap accounting rides along only when
                        // telemetry is on; the emitted level sequence is
                        // identical either way (pinned by a modulator
                        // test), so traces stay byte-stable.
                        Some(tm) => {
                            for (d, l) in levels.iter_mut().enumerate() {
                                let (level, wrapped) =
                                    self.modulators[d].next_level_with_carry(probed[d]);
                                *l = level;
                                if wrapped {
                                    tm.on_carry_wrap(d);
                                }
                            }
                        }
                        None => {
                            for ((l, m), &tgt) in levels
                                .iter_mut()
                                .zip(self.modulators.iter_mut())
                                .zip(probed.iter())
                            {
                                *l = m.next_level(tgt);
                            }
                        }
                    }
                } else {
                    levels.copy_from_slice(&probed);
                }
                self.backend.set_frequencies(&levels)?;
                // Effective = applied clamped by any active thermal
                // throttle; that is what the workload actually sees.
                self.backend.effective_frequencies_into(&mut applied)?;
                for (s, a) in applied_sum.iter_mut().zip(applied.iter()) {
                    *s += a;
                }
                if self.advance_one_second(&applied)?.is_some() {
                    fresh_meter_samples += 1;
                }
            }
            let actuate_ns = match self.telemetry.as_mut() {
                Some(tm) => tm.span_exit(),
                None => 0,
            };
            let applied_mean: Vec<f64> = applied_sum.iter().map(|s| s / t as f64).collect();

            // Measurement: average the period's *fresh* meter samples.
            // Averaging `average_last(t)` unconditionally would silently
            // blend pre-dropout samples still in the ring buffer into a
            // "fresh" reading; instead a partial-dropout period averages
            // only what the meter actually produced this period, and a
            // fully silent period holds the previous measurement and is
            // flagged stale (the supervisor's staleness watchdog keys on
            // exactly this).
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_enter(Phase::Sense);
            }
            let (avg_power, meter_stale) = if fresh_meter_samples >= t {
                (self.backend.average_power(t).unwrap_or(last_power), false)
            } else if fresh_meter_samples > 0 {
                (
                    self.backend
                        .average_power(fresh_meter_samples)
                        .unwrap_or(last_power),
                    false,
                )
            } else {
                (last_power, true)
            };
            last_power = avg_power;
            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_exit();
            }

            // Continuous model tracking (§6.4, generalized to every
            // period): fold this period's (F̄, p̄) sample into the
            // streaming identifier and refit — O(n²) total instead of an
            // O(m·n²) batch refit. Meter-dropout periods are skipped (a
            // held-over reading says nothing about this period's plant),
            // quasi-steady gating skips periods whose frequencies slewed
            // too far for the average to reflect a steady-state operating
            // point, and refits are withheld while the factor's
            // excitation is too collinear for the gains to be trustworthy.
            if self.tracker.is_some() {
                if let Some(tm) = self.telemetry.as_mut() {
                    tm.span_enter(Phase::Identify);
                }
            }
            if let (Some(tracker), Some(cfg)) = (self.tracker.as_mut(), self.scenario.rls_tracking)
            {
                let quasi_steady = prev_applied_mean.as_ref().is_none_or(|prev| {
                    applied_mean
                        .iter()
                        .zip(prev.iter())
                        .all(|(now, was)| (now - was).abs() <= cfg.settle_gate_mhz)
                });
                if fresh_meter_samples > 0 && quasi_steady {
                    tracker.record(&applied_mean, avg_power);
                    if tracker.design_condition() < cfg.condition_guard {
                        match tracker.fit() {
                            Ok((model, scale))
                                if (scale - pushed_scale).abs()
                                    > SCALE_PUSH_DEADBAND * pushed_scale =>
                            {
                                pushed_scale = scale;
                                controller.set_power_model(&model)?;
                                self.identified = Some(IdentifiedModel {
                                    model,
                                    r_squared: tracker.r_squared(),
                                    rmse_watts: tracker.rmse(),
                                    n_samples: tracker.len(),
                                    design_condition: tracker.design_condition(),
                                });
                                if let Some(tm) = self.telemetry.as_mut() {
                                    tm.on_refit(period, t_end_s, scale, tracker.r_squared());
                                }
                            }
                            Ok(_) => {}
                            Err(capgpu_control::ControlError::InsufficientData(_)) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                } else {
                    // Unusable period (dropout or transient): no sample,
                    // but time still passed — decay so stale data does
                    // not keep full weight across the gap.
                    tracker.decay();
                }
                prev_applied_mean = Some(applied_mean.clone());
            }
            if self.tracker.is_some() {
                if let Some(tm) = self.telemetry.as_mut() {
                    tm.span_exit();
                }
            }

            if let Some(tm) = self.telemetry.as_mut() {
                tm.span_enter(Phase::Solve);
            }
            // Throughput monitors.
            let cpu_dev = self.cpu_device_index;
            let cpu_noise: f64 = self.rng.gen_range(-1.0..1.0);
            let cpu_rate = self.featsel.rate(applied_mean[cpu_dev], cpu_noise);
            self.monitors[cpu_dev].record(cpu_rate);
            let mut gpu_throughput = vec![0.0; self.pipelines.len()];
            let mut gpu_latency = vec![0.0; self.pipelines.len()];
            let mut batches = vec![0usize; self.pipelines.len()];
            for i in 0..self.pipelines.len() {
                let dev = self.gpu_device_indices[i];
                let st = &self.second_stats[i];
                // LLM mode: the throughput signal is tokens/s, not
                // completions/s — decode emits tokens continuously even
                // when whole-request completions are lumpy.
                gpu_throughput[i] = if llm_on {
                    self.phase_stats[i].tokens as f64 / t as f64
                } else {
                    st.images as f64 / t as f64
                };
                batches[i] = st.batches;
                // Serving/LLM modes accumulate per-request latencies,
                // model mode per-batch; divide by the matching count.
                let denom = if self.serve_engines.is_empty() && !llm_on {
                    st.batches
                } else {
                    st.images
                };
                gpu_latency[i] = if denom > 0 {
                    st.latency_sum / denom as f64
                } else {
                    0.0
                };
                self.monitors[dev].record(gpu_throughput[i]);
            }

            // SLO frequency floors for the next period.
            let mut floors = self.layout.f_min.clone();
            for (i, slo) in self.slos.iter().enumerate() {
                if let Some(slo_s) = slo {
                    let dev = self.gpu_device_indices[i];
                    floors[dev] = match self.latency_models[i].frequency_floor(*slo_s) {
                        // Safety margin covers fitted-γ error, latency
                        // jitter and the modulator's dips below the target.
                        Ok(f) => (f * self.scenario.slo_margin)
                            .clamp(self.layout.f_min[dev], self.layout.f_max[dev]),
                        // SLO tighter than achievable: run flat out.
                        Err(_) => self.layout.f_max[dev],
                    };
                }
            }

            // Per-device power readings for the split baseline. The
            // backend attributes them as of the most recent elapsed
            // second (the staged utilizations equal `last_utils` here).
            self.backend.per_device_power_into(&mut device_power)?;

            let normalized: Vec<f64> = self
                .monitors
                .iter()
                .map(ThroughputMonitor::normalized)
                .collect();

            // Supervisory health check: ingest this period's evidence
            // before the control decision so demotions take effect in
            // the same period the fault is observed.
            let mut effective_setpoint = self.setpoint;
            let mut tier = SupervisorTier::Primary;
            let mut sup_stale_periods = 0usize;
            if let Some((sup, _)) = supervision.as_mut() {
                for (d, flag) in ejected_flags.iter_mut().enumerate() {
                    *flag = self.backend.is_ejected(d);
                }
                let directive = sup.step(&HealthSample {
                    fresh_samples: fresh_meter_samples,
                    meter_age_s: self.backend.seconds_since_sample(),
                    avg_power,
                    setpoint: self.setpoint,
                    psu_limit: self.backend.psu_limit(),
                    applied_mean: &applied_mean,
                    ejected: &ejected_flags,
                });
                effective_setpoint = directive.effective_setpoint;
                tier = directive.tier;
                sup_stale_periods = directive.stale_periods;
            }

            // Phase-mix signal for the controller (LLM mode): busy-time
            // prefill share, end-of-period KV occupancy, and token rate,
            // per device. Non-LLM devices keep the neutral mix, under
            // which the phase-aware penalty equals the phase-blind one.
            if llm_on {
                for (i, ps) in self.phase_stats.iter().enumerate() {
                    let dev = self.gpu_device_indices[i];
                    let busy = ps.prefill_busy_s + ps.decode_busy_s;
                    phase_mix[dev] = PhaseMix {
                        prefill_share: if busy > 0.0 {
                            (ps.prefill_busy_s / busy).clamp(0.0, 1.0)
                        } else {
                            1.0
                        },
                        kv_occupancy: ps.kv_occupancy_end,
                        tokens_per_s: ps.tokens as f64 / t as f64,
                    };
                }
            }
            let input = ControlInput {
                measured_power: avg_power,
                setpoint: effective_setpoint,
                current_targets: &self.targets,
                normalized_throughput: &normalized,
                device_power: &device_power,
                floors: &floors,
                phase_mix: if llm_on { Some(&phase_mix) } else { None },
            };
            let new_targets = match supervision.as_mut() {
                None => controller.control(&input)?,
                Some((_, fallback)) => match tier {
                    SupervisorTier::Primary => controller.control(&input)?,
                    SupervisorTier::SafeFallback => fallback.control(&input)?,
                    // No trustworthy feedback at all: park at the floors
                    // (SLO floors where set, else the hardware minima).
                    SupervisorTier::Park => floors.clone(),
                },
            };
            if new_targets.len() != n {
                return Err(CapGpuError::BadConfig(format!(
                    "controller returned {} targets for {n} devices",
                    new_targets.len()
                )));
            }
            self.targets = new_targets;
            // Quarantine: a device that was ejected is pinned at its
            // hardware floor after re-admission until it stays healthy
            // for the recovery window, so a flapping GPU cannot whipsaw
            // the budget redistribution.
            if let Some((sup, _)) = supervision.as_ref() {
                for (d, q) in sup.quarantined().iter().enumerate() {
                    if *q {
                        self.targets[d] = self.layout.f_min[d];
                    }
                }
            }
            let solve_ns = match self.telemetry.as_mut() {
                Some(tm) => tm.span_exit(),
                None => 0,
            };

            // §4.4 multi-layer adaptation: if frequency scaling alone is
            // out of authority (cap exceeded with every knob at its
            // floor), engage the GPUs' low-memory-clock states; release
            // with hysteresis once frequency scaling regains headroom.
            if self.scenario.memory_escape {
                let noise = self.backend.meter_noise_std();
                let saturated_low =
                    (0..n).all(|j| self.targets[j] <= floors[j].max(self.layout.f_min[j]) + 20.0);
                let over = avg_power > self.setpoint + 2.0 * noise.max(1.0);
                if over && saturated_low && !self.mem_escape_active {
                    for &dev in &self.gpu_device_indices {
                        if self.backend.server().device(dev)?.mem_throttle.is_some() {
                            self.backend.server_mut().set_memory_throttle(dev, true)?;
                        }
                    }
                    self.mem_escape_active = true;
                } else if self.mem_escape_active {
                    // Estimate the power that releasing would restore; only
                    // release if the cap still holds afterwards.
                    let mut restore = 0.0;
                    for &dev in &self.gpu_device_indices {
                        if let Some(mt) = self.backend.server().device(dev)?.mem_throttle {
                            if self.backend.server().memory_throttled(dev)? {
                                let idle = self.backend.server().device(dev)?.power_law.idle_watts;
                                let dynamic = (device_power[dev] - idle).max(0.0);
                                // device_power is the throttled reading.
                                restore += dynamic * (1.0 / mt.power_scale - 1.0);
                            }
                        }
                    }
                    if avg_power + restore < self.setpoint - 2.0 * noise.max(1.0) {
                        for &dev in &self.gpu_device_indices {
                            self.backend.server_mut().set_memory_throttle(dev, false)?;
                        }
                        self.mem_escape_active = false;
                    }
                }
            }

            let slo_misses: Vec<usize> = (0..self.pipelines.len())
                .map(|i| {
                    let total = (self.slo_tracker.miss_rate(i)
                        * self.slo_tracker.latencies(i).len() as f64)
                        .round() as usize;
                    total.saturating_sub(misses_before[i])
                })
                .collect();

            records.push(PeriodRecord {
                period,
                setpoint: effective_setpoint,
                avg_power,
                targets: self.targets.clone(),
                applied_mean,
                gpu_throughput,
                cpu_throughput: cpu_rate,
                gpu_mean_latency: gpu_latency,
                slo: self.slos.clone(),
                slo_misses,
                batches,
                floors,
                memory_escape_active: self.mem_escape_active,
                supervisor_tier: tier.as_u8(),
                meter_stale,
                solve_ns,
                actuate_ns,
            });

            // Fold the completed period into the telemetry registry and
            // journal. Diagnostics are taken only when the primary
            // controller acted — on a fallback/park period its cached
            // solve is from an earlier period.
            if self.telemetry.is_some() {
                let diag = match tier {
                    SupervisorTier::Primary => controller.diagnostics(),
                    _ => None,
                };
                let quarantined = supervision.as_ref().map(|(sup, _)| sup.quarantined());
                let rec = records.last().expect("just pushed");
                let obs = PeriodObservation {
                    period,
                    t_s: t_end_s,
                    seconds: t,
                    fresh_meter_samples,
                    avg_power,
                    setpoint: effective_setpoint,
                    meter_stale,
                    tier: tier.as_u8(),
                    stale_periods: sup_stale_periods,
                    quarantined,
                    targets: &rec.targets,
                    diag,
                    mem_escape_active: self.mem_escape_active,
                };
                if let Some(tm) = self.telemetry.as_mut() {
                    tm.on_period(&obs);
                    if llm_on {
                        for (i, ps) in self.phase_stats.iter().enumerate() {
                            let dev = self.gpu_device_indices[i];
                            tm.on_llm_period(
                                period,
                                t_end_s,
                                i,
                                phase_mix[dev].prefill_share,
                                ps.kv_occupancy_end,
                            );
                        }
                    }
                    tm.span_exit();
                }
            }
        }
        let miss_rates = (0..self.pipelines.len())
            .map(|i| self.slo_tracker.miss_rate(i))
            .collect();
        let p99_latency_s: Vec<f64> = (0..self.pipelines.len())
            .map(|i| capgpu_linalg::stats::percentile(self.slo_tracker.latencies(i), 99.0))
            .collect();
        let n_tasks = self.pipelines.len();
        let (ttft_p99_s, itl_p99_s, ttft_miss_rates, itl_miss_rates) = if llm_on {
            (
                (0..n_tasks)
                    .map(|i| capgpu_linalg::stats::percentile(self.ttft_tracker.latencies(i), 99.0))
                    .collect(),
                (0..n_tasks)
                    .map(|i| capgpu_linalg::stats::percentile(self.itl_tracker.latencies(i), 99.0))
                    .collect(),
                (0..n_tasks)
                    .map(|i| self.ttft_tracker.miss_rate(i))
                    .collect(),
                (0..n_tasks)
                    .map(|i| self.itl_tracker.miss_rate(i))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        };
        let tracker_stats = self.tracker.as_ref().map(|tr| tr.stats());
        if let Some(tm) = self.telemetry.as_mut() {
            tm.end_run(
                num_periods,
                (num_periods * t) as f64,
                &p99_latency_s,
                tracker_stats,
            );
        }
        Ok(RunTrace {
            controller: controller.name().to_string(),
            records,
            miss_rates,
            p99_latency_s,
            ttft_p99_s,
            itl_p99_s,
            ttft_miss_rates,
            itl_miss_rates,
        })
    }

    /// Runs with fixed frequencies and no controller for `seconds`,
    /// returning `(mean power, per-task throughput img/s, per-task mean
    /// batch latency, per-task mean queue delay)`. Used by the Table 1
    /// motivation experiment.
    ///
    /// # Errors
    /// Propagates testbed errors.
    pub fn run_fixed(
        &mut self,
        freqs: &[f64],
        seconds: usize,
        warmup_seconds: usize,
    ) -> Result<FixedRunStats> {
        self.backend.set_frequencies(freqs)?;
        let mut applied = Vec::with_capacity(self.layout.len());
        self.backend.effective_frequencies_into(&mut applied)?;
        self.second_stats
            .iter_mut()
            .for_each(|s| *s = TaskPeriodStats::default());
        for _ in 0..warmup_seconds {
            self.advance_one_second(&applied)?;
        }
        // Reset aggregates after warmup.
        self.second_stats
            .iter_mut()
            .for_each(|s| *s = TaskPeriodStats::default());
        let mut power_sum = 0.0;
        let mut power_n = 0usize;
        let mut queue_delays: Vec<Vec<f64>> = vec![Vec::new(); self.pipelines.len()];
        let f_cpu = applied[self.cpu_device_index];
        for _ in 0..seconds {
            if let Some(p) = self.advance_one_second_collect(&applied, Some(&mut queue_delays))? {
                power_sum += p;
                power_n += 1;
            }
        }
        let throughput: Vec<f64> = self
            .second_stats
            .iter()
            .map(|s| s.images as f64 / seconds as f64)
            .collect();
        let latency: Vec<f64> = self
            .second_stats
            .iter()
            .map(|s| {
                if s.batches > 0 {
                    s.latency_sum / s.batches as f64
                } else {
                    0.0
                }
            })
            .collect();
        let queue_delay: Vec<f64> = queue_delays
            .iter()
            .map(|d| capgpu_linalg::stats::mean(d))
            .collect();
        let preprocess: Vec<f64> = self
            .pipelines
            .iter()
            .enumerate()
            .map(|(i, _)| self.scenario.gpu_models[i].preprocess_time(f_cpu))
            .collect();
        Ok(FixedRunStats {
            mean_power: if power_n > 0 {
                power_sum / power_n as f64
            } else {
                0.0
            },
            throughput_img_s: throughput,
            mean_batch_latency_s: latency,
            mean_queue_delay_s: queue_delay,
            preprocess_s_per_image: preprocess,
        })
    }
}

/// Relative deadband on the tracked gain scale below which a refreshed
/// model is *not* pushed to the controller. The streaming estimate
/// wiggles by a few percent under meter noise even on a stationary
/// plant; pushing every wiggle makes the MPC retune constantly and
/// costs more cap-tracking error than the stale-by-ε model does. Real
/// drift (tens of percent) clears the band within a few periods.
const SCALE_PUSH_DEADBAND: f64 = 0.05;

/// Deterministic ±1 persistent-excitation sign for one (period, device)
/// pair: a splitmix64-style hash of the scenario seed and the pair's
/// coordinates. Keeping this independent of the simulation RNG streams
/// means enabling RLS tracking never shifts the scenario's stochastic
/// draws, so tracked and untracked runs stay sample-for-sample
/// comparable.
fn probe_sign(seed: u64, period: usize, device: usize) -> f64 {
    let mut z = seed
        ^ (period as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (device as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Per-task aggregates accumulated within one control period.
#[derive(Debug, Clone, Default)]
struct TaskPeriodStats {
    images: usize,
    batches: usize,
    latency_sum: f64,
}

/// Per-task phase aggregates accumulated within one control period
/// (LLM mode): the raw material of the [`PhaseMix`] signal.
#[derive(Debug, Clone, Default)]
struct PhasePeriodStats {
    prefill_busy_s: f64,
    decode_busy_s: f64,
    /// KV occupancy at the period's last simulated second (fraction).
    kv_occupancy_end: f64,
    /// Prefill + decode tokens processed this period.
    tokens: u64,
}

/// Results of a fixed-frequency (controller-less) run — the Table 1 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedRunStats {
    /// Mean server power (W).
    pub mean_power: f64,
    /// Per-task throughput (images/s).
    pub throughput_img_s: Vec<f64>,
    /// Per-task mean batch inference latency (s).
    pub mean_batch_latency_s: Vec<f64>,
    /// Per-task mean queue delay (s/image).
    pub mean_queue_delay_s: Vec<f64>,
    /// Per-task CPU preprocessing time (s/image) at the applied CPU clock.
    pub preprocess_s_per_image: Vec<f64>,
}
