//! Supervisory failover layer: watchdogs, authority detection, and a
//! hysteretic controller ladder.
//!
//! The MPC stability result covers multiplicative model error; it says
//! nothing about a meter that stops reporting, a clock that stops
//! responding, or a PSU that derates the budget mid-run. The
//! [`Supervisor`] wraps *any* primary controller with the structural
//! defenses a production capping loop needs:
//!
//! * **Staleness watchdog** — counts control periods in which the meter
//!   produced no fresh sample. Short outages demote the loop to the safe
//!   fixed-step fallback (which needs no model, only the sign of the
//!   error); long outages park every clock at its floor, the only state
//!   that is safe without *any* feedback.
//! * **Actuation-authority detector** — regresses the observed power
//!   change `Δp` on the model-predicted change `Σ gᵢ·ΔFᵢ` over a sliding
//!   window. When the loop commands real frequency moves (excitation
//!   above a floor) but power does not follow (slope below a ratio), the
//!   plant has stopped obeying — stuck clocks, rejected commands, or a
//!   stuck meter all land here — and the MPC's model is actively harmful.
//! * **Per-device quarantine** — a device seen ejected is pinned to its
//!   frequency floor after re-admission until it proves healthy, so a
//!   flapping GPU cannot whipsaw the budget redistribution.
//! * **PSU-derate clamp** — the effective set-point is
//!   `min(set-point, advertised PSU limit − margin)`: a derated supply
//!   shrinks the feasible budget no matter what the operator asked for.
//!
//! Escalation is immediate (one faulty period is enough to demote);
//! recovery is hysteretic and one tier at a time — the loop must string
//! together [`SupervisorConfig::recovery_periods`] consecutive healthy
//! periods before each single step back up the ladder, so an
//! intermittent fault cannot chatter the loop between controllers.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{CapGpuError, Result};

/// Failover ladder position, ordered from most to least capable.
/// `Ord`: a *greater* tier is *safer* (more degraded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SupervisorTier {
    /// The wrapped primary controller (e.g. CapGPU MPC) is in charge.
    Primary = 0,
    /// Model-free safe fixed-step control: small conservative moves with
    /// a safety margin, usable with degraded telemetry.
    SafeFallback = 1,
    /// Every clock parked at its frequency floor: the only safe state
    /// when feedback is gone entirely.
    Park = 2,
}

impl SupervisorTier {
    /// Numeric encoding for traces/CSV (0 = primary … 2 = park).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes the trace encoding (saturating: unknown values park).
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => SupervisorTier::Primary,
            1 => SupervisorTier::SafeFallback,
            _ => SupervisorTier::Park,
        }
    }

    /// One step toward `Primary` (identity at `Primary`).
    fn step_down(self) -> Self {
        match self {
            SupervisorTier::Park => SupervisorTier::SafeFallback,
            _ => SupervisorTier::Primary,
        }
    }
}

/// Supervisor thresholds. See DESIGN.md §13 for the rationale behind
/// each default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Consecutive meter-silent periods before demoting to the safe
    /// fixed-step fallback.
    pub stale_fallback_periods: usize,
    /// Consecutive meter-silent periods before parking at the floors
    /// (must be ≥ `stale_fallback_periods`).
    pub stale_park_periods: usize,
    /// Sliding-window length (periods) for the authority regression.
    pub authority_window: usize,
    /// Authority is lost when the observed-vs-predicted slope falls
    /// below this ratio (1.0 = perfect tracking, 0 = no response).
    pub authority_min_ratio: f64,
    /// Minimum summed |predicted Δp| (W) over the window before the
    /// authority verdict is trusted — a converged loop barely moves its
    /// clocks, and a regression on zero excitation is noise.
    pub authority_min_excitation_w: f64,
    /// Consecutive healthy periods required per single recovery step
    /// back up the ladder (and to release a quarantined device).
    pub recovery_periods: usize,
    /// Safety margin (W) kept below an advertised PSU limit.
    pub psu_margin_watts: f64,
}

impl Default for SupervisorConfig {
    /// Defaults tuned for the paper's 4 s control period: fallback after
    /// 2 silent periods (8 s), park after 5 (20 s, ≈ the thermal time
    /// constant), a 6-period authority window, slope < 0.3 with ≥ 25 W
    /// of windowed excitation, 5-period recovery hysteresis, 10 W PSU
    /// margin.
    fn default() -> Self {
        SupervisorConfig {
            stale_fallback_periods: 2,
            stale_park_periods: 5,
            authority_window: 6,
            authority_min_ratio: 0.3,
            authority_min_excitation_w: 25.0,
            recovery_periods: 5,
            psu_margin_watts: 10.0,
        }
    }
}

impl SupervisorConfig {
    /// Validates thresholds.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] with a description.
    pub fn validate(&self) -> Result<()> {
        if self.stale_fallback_periods == 0 {
            return Err(CapGpuError::BadConfig(
                "supervisor.stale_fallback_periods must be >= 1".into(),
            ));
        }
        if self.stale_park_periods < self.stale_fallback_periods {
            return Err(CapGpuError::BadConfig(
                "supervisor.stale_park_periods must be >= stale_fallback_periods".into(),
            ));
        }
        if self.authority_window < 2 {
            return Err(CapGpuError::BadConfig(
                "supervisor.authority_window must be >= 2".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.authority_min_ratio) {
            return Err(CapGpuError::BadConfig(
                "supervisor.authority_min_ratio must be in [0, 1)".into(),
            ));
        }
        if self.authority_min_excitation_w <= 0.0 || !self.authority_min_excitation_w.is_finite() {
            return Err(CapGpuError::BadConfig(
                "supervisor.authority_min_excitation_w must be finite and > 0".into(),
            ));
        }
        if self.recovery_periods == 0 {
            return Err(CapGpuError::BadConfig(
                "supervisor.recovery_periods must be >= 1".into(),
            ));
        }
        if self.psu_margin_watts < 0.0 || !self.psu_margin_watts.is_finite() {
            return Err(CapGpuError::BadConfig(
                "supervisor.psu_margin_watts must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// One control period's health evidence, gathered by the runner after
/// measurement and before the control decision.
#[derive(Debug, Clone, Copy)]
pub struct HealthSample<'a> {
    /// Fresh meter samples obtained this period (0 = meter silent).
    pub fresh_samples: usize,
    /// Seconds since the meter last produced any sample, if ever.
    pub meter_age_s: Option<u64>,
    /// The power measurement the controller is about to act on (W).
    pub avg_power: f64,
    /// The operator's requested set-point (W).
    pub setpoint: f64,
    /// BMC-advertised PSU limit, if a derate is active (W).
    pub psu_limit: Option<f64>,
    /// Per-device mean applied frequency over the period (MHz).
    pub applied_mean: &'a [f64],
    /// Per-device ejected flags.
    pub ejected: &'a [bool],
}

/// The supervisor's verdict for one control period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Directive {
    /// Which rung of the failover ladder should act this period.
    pub tier: SupervisorTier,
    /// The set-point the acting controller should regulate to — the
    /// operator's request, clamped under any advertised PSU limit.
    pub effective_setpoint: f64,
    /// Whether the authority detector currently declares the plant
    /// unresponsive (exposed for traces and diagnostics).
    pub authority_lost: bool,
    /// Consecutive meter-silent periods at this decision (0 when the
    /// meter is fresh). Telemetry: how deep into the staleness ladder
    /// the loop is, and the `reason` behind a tier change.
    pub stale_periods: usize,
}

/// Supervisory failover state machine. Wraps a primary controller
/// conceptually — the runner dispatches to primary / fallback / park
/// based on the [`Directive`] tier.
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    /// Identified per-device power gains (W/MHz) for predicted Δp.
    gains: Vec<f64>,
    tier: SupervisorTier,
    /// Consecutive meter-silent periods.
    stale_run: usize,
    /// Consecutive fully-healthy periods (drives recovery).
    healthy_run: usize,
    /// Last fresh period's (applied frequencies, measured power), the
    /// reference point for the next residual pair.
    prev: Option<(Vec<f64>, f64)>,
    /// Sliding (predicted Δp, observed Δp) window.
    window: VecDeque<(f64, f64)>,
    /// Latest authority verdict.
    authority_lost: bool,
    /// Per-device quarantine flags (set on ejection, released after
    /// `recovery_periods` healthy periods post re-admission).
    quarantined: Vec<bool>,
    /// Healthy streak per quarantined device since re-admission.
    readmit_ok: Vec<usize>,
    /// Previous period's ejected flags (residuals reset on change).
    prev_ejected: Vec<bool>,
}

impl Supervisor {
    /// Creates a supervisor for `n_devices` devices with the identified
    /// per-device gains (W/MHz) used by the authority detector.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on invalid thresholds or a gains/device
    /// count mismatch.
    pub fn new(cfg: SupervisorConfig, gains: Vec<f64>, n_devices: usize) -> Result<Self> {
        cfg.validate()?;
        if gains.len() != n_devices {
            return Err(CapGpuError::BadConfig(format!(
                "{} supervisor gains for {n_devices} devices",
                gains.len()
            )));
        }
        Ok(Supervisor {
            cfg,
            gains,
            tier: SupervisorTier::Primary,
            stale_run: 0,
            healthy_run: 0,
            prev: None,
            window: VecDeque::with_capacity(cfg.authority_window),
            authority_lost: false,
            quarantined: vec![false; n_devices],
            readmit_ok: vec![0; n_devices],
            prev_ejected: vec![false; n_devices],
        })
    }

    /// Current ladder tier.
    pub fn tier(&self) -> SupervisorTier {
        self.tier
    }

    /// Restores journaled state after a crash-recovery replay: the
    /// ladder tier and the quarantine set (device indices). The
    /// authority window and residual chain start empty — they are
    /// evidence about the *running* plant and must be re-earned, not
    /// replayed — and the healthy streak resets, so a restored degraded
    /// tier still needs `recovery_periods` fresh healthy periods per
    /// step back up.
    pub fn restore(&mut self, tier: SupervisorTier, quarantined: &[usize]) {
        self.tier = tier;
        self.stale_run = 0;
        self.healthy_run = 0;
        self.prev = None;
        self.window.clear();
        self.authority_lost = false;
        for q in self.quarantined.iter_mut() {
            *q = false;
        }
        for r in self.readmit_ok.iter_mut() {
            *r = 0;
        }
        for &d in quarantined {
            if let Some(q) = self.quarantined.get_mut(d) {
                *q = true;
            }
        }
    }

    /// Per-device quarantine flags.
    pub fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    /// Ingests one period's health evidence and returns the directive
    /// for the imminent control decision. Allocation-free after the
    /// first few calls — this sits on the control hot path.
    pub fn step(&mut self, obs: &HealthSample<'_>) -> Directive {
        // --- staleness watchdog -------------------------------------
        let stale = obs.fresh_samples == 0;
        if stale {
            self.stale_run += 1;
        } else {
            self.stale_run = 0;
        }

        // --- actuation-authority residuals --------------------------
        // Residual pairs only span consecutive *fresh* periods with an
        // unchanged ejection pattern: a stale gap breaks the chain, and
        // an ejection/re-admission step change in power is topology, not
        // lost authority.
        if obs.ejected != self.prev_ejected.as_slice() {
            self.prev_ejected.copy_from_slice(obs.ejected);
            self.prev = None;
            self.window.clear();
        }
        if stale {
            self.prev = None;
        } else {
            if let Some((pf, pp)) = &self.prev {
                let mut predicted = 0.0;
                for (((g, &ej), &now), &was) in self
                    .gains
                    .iter()
                    .zip(obs.ejected)
                    .zip(obs.applied_mean)
                    .zip(pf.iter())
                {
                    if !ej {
                        predicted += g * (now - was);
                    }
                }
                let observed = obs.avg_power - pp;
                if self.window.len() == self.cfg.authority_window {
                    self.window.pop_front();
                }
                self.window.push_back((predicted, observed));
            }
            match &mut self.prev {
                Some((pf, pp)) => {
                    pf.copy_from_slice(obs.applied_mean);
                    *pp = obs.avg_power;
                }
                None => self.prev = Some((obs.applied_mean.to_vec(), obs.avg_power)),
            }
        }
        self.authority_lost = if self.window.len() == self.cfg.authority_window {
            let excitation: f64 = self.window.iter().map(|(p, _)| p.abs()).sum();
            if excitation >= self.cfg.authority_min_excitation_w {
                let num: f64 = self.window.iter().map(|(p, o)| p * o).sum();
                let den: f64 = self.window.iter().map(|(p, _)| p * p).sum();
                num / den < self.cfg.authority_min_ratio
            } else {
                false
            }
        } else {
            false
        };

        // --- per-device quarantine ----------------------------------
        for d in 0..self.quarantined.len() {
            if obs.ejected[d] {
                self.quarantined[d] = true;
                self.readmit_ok[d] = 0;
            } else if self.quarantined[d] {
                self.readmit_ok[d] += 1;
                if self.readmit_ok[d] >= self.cfg.recovery_periods {
                    self.quarantined[d] = false;
                }
            }
        }

        // --- ladder: immediate escalation, hysteretic recovery ------
        let desired = if self.stale_run >= self.cfg.stale_park_periods {
            SupervisorTier::Park
        } else if self.stale_run >= self.cfg.stale_fallback_periods || self.authority_lost {
            SupervisorTier::SafeFallback
        } else {
            SupervisorTier::Primary
        };
        if desired > self.tier {
            self.tier = desired;
            self.healthy_run = 0;
        } else if desired == SupervisorTier::Primary && !stale {
            // No detector active and the meter spoke: accumulate healthy
            // evidence, then step down exactly one tier per recovery
            // window. A silent period below the fallback threshold still
            // resets the streak — silence is never evidence of health.
            self.healthy_run += 1;
            if self.healthy_run >= self.cfg.recovery_periods && self.tier > SupervisorTier::Primary
            {
                self.tier = self.tier.step_down();
                self.healthy_run = 0;
                // A recovered tier must re-earn authority evidence.
                self.window.clear();
            }
        } else {
            self.healthy_run = 0;
        }

        // --- PSU-derate clamp ---------------------------------------
        let effective_setpoint = match obs.psu_limit {
            Some(limit) => obs.setpoint.min(limit - self.cfg.psu_margin_watts),
            None => obs.setpoint,
        };

        Directive {
            tier: self.tier,
            effective_setpoint,
            authority_lost: self.authority_lost,
            stale_periods: self.stale_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy<'a>(applied: &'a [f64], ejected: &'a [bool], power: f64) -> HealthSample<'a> {
        HealthSample {
            fresh_samples: 4,
            meter_age_s: Some(0),
            avg_power: power,
            setpoint: 900.0,
            psu_limit: None,
            applied_mean: applied,
            ejected,
        }
    }

    fn sup() -> Supervisor {
        Supervisor::new(SupervisorConfig::default(), vec![0.1, 0.3, 0.3, 0.3], 4).unwrap()
    }

    #[test]
    fn stays_primary_when_healthy() {
        let mut s = sup();
        let applied = [2000.0, 900.0, 900.0, 900.0];
        let ejected = [false; 4];
        for _ in 0..20 {
            let d = s.step(&healthy(&applied, &ejected, 900.0));
            assert_eq!(d.tier, SupervisorTier::Primary);
            assert_eq!(d.effective_setpoint, 900.0);
            assert!(!d.authority_lost);
        }
    }

    #[test]
    fn staleness_ladder_escalates_then_recovers_one_tier_at_a_time() {
        let mut s = sup();
        let applied = [2000.0, 900.0, 900.0, 900.0];
        let ejected = [false; 4];
        let mut stale = healthy(&applied, &ejected, 900.0);
        stale.fresh_samples = 0;
        stale.meter_age_s = Some(8);
        // 1 silent period: still primary. 2: fallback. 5: park.
        assert_eq!(s.step(&stale).tier, SupervisorTier::Primary);
        assert_eq!(s.step(&stale).tier, SupervisorTier::SafeFallback);
        assert_eq!(s.step(&stale).tier, SupervisorTier::SafeFallback);
        assert_eq!(s.step(&stale).tier, SupervisorTier::SafeFallback);
        assert_eq!(s.step(&stale).tier, SupervisorTier::Park);
        // Recovery: 5 healthy periods per tier, never skipping a rung.
        let ok = healthy(&applied, &ejected, 900.0);
        for _ in 0..4 {
            assert_eq!(s.step(&ok).tier, SupervisorTier::Park);
        }
        assert_eq!(s.step(&ok).tier, SupervisorTier::SafeFallback);
        for _ in 0..4 {
            assert_eq!(s.step(&ok).tier, SupervisorTier::SafeFallback);
        }
        assert_eq!(s.step(&ok).tier, SupervisorTier::Primary);
    }

    #[test]
    fn authority_loss_demotes() {
        let mut s = sup();
        let ejected = [false; 4];
        // Commanded swings of ±100 MHz on every GPU (predicted ±90 W)
        // with zero observed response: a stuck plant.
        let hi = [2000.0, 1000.0, 1000.0, 1000.0];
        let lo = [2000.0, 900.0, 900.0, 900.0];
        let mut tier = SupervisorTier::Primary;
        for i in 0..10 {
            let applied = if i % 2 == 0 { &hi } else { &lo };
            tier = s.step(&healthy(applied, &ejected, 950.0)).tier;
        }
        assert_eq!(tier, SupervisorTier::SafeFallback);
        // A responsive plant keeps authority.
        let mut s = sup();
        let mut power = 950.0;
        for i in 0..10 {
            let applied: &[f64] = if i % 2 == 0 { &hi } else { &lo };
            power = 950.0 + if i % 2 == 0 { 45.0 } else { -45.0 };
            assert_eq!(
                s.step(&healthy(applied, &ejected, power)).tier,
                SupervisorTier::Primary
            );
        }
        let _ = power;
    }

    #[test]
    fn converged_loop_never_trips_authority() {
        // Near-zero excitation must not produce a verdict, whatever the
        // (noise-dominated) observed deltas say.
        let mut s = sup();
        let ejected = [false; 4];
        let applied = [2000.0, 900.0, 900.0, 900.0];
        for i in 0..20 {
            let p = 900.0 + if i % 2 == 0 { 4.0 } else { -4.0 };
            let d = s.step(&healthy(&applied, &ejected, p));
            assert!(!d.authority_lost);
            assert_eq!(d.tier, SupervisorTier::Primary);
        }
    }

    #[test]
    fn psu_limit_clamps_effective_setpoint() {
        let mut s = sup();
        let applied = [2000.0, 900.0, 900.0, 900.0];
        let ejected = [false; 4];
        let mut obs = healthy(&applied, &ejected, 900.0);
        obs.psu_limit = Some(860.0);
        let d = s.step(&obs);
        assert_eq!(d.effective_setpoint, 850.0); // 860 − 10 margin
        obs.psu_limit = Some(2000.0);
        let d = s.step(&obs);
        assert_eq!(d.effective_setpoint, 900.0); // limit not binding
    }

    #[test]
    fn ejection_quarantines_until_proven_healthy() {
        let mut s = sup();
        let applied = [2000.0, 900.0, 900.0, 900.0];
        let mut ejected = [false; 4];
        ejected[2] = true;
        s.step(&healthy(&applied, &ejected, 800.0));
        assert_eq!(s.quarantined(), [false, false, true, false]);
        // Re-admitted: stays quarantined for recovery_periods periods.
        ejected[2] = false;
        for _ in 0..4 {
            s.step(&healthy(&applied, &ejected, 900.0));
            assert!(s.quarantined()[2]);
        }
        s.step(&healthy(&applied, &ejected, 900.0));
        assert!(!s.quarantined()[2]);
    }

    #[test]
    fn ejection_change_resets_residual_chain() {
        // The power cliff from an ejection must not read as lost
        // authority.
        let mut s = sup();
        let hi = [2000.0, 1000.0, 1000.0, 1000.0];
        let lo = [2000.0, 900.0, 900.0, 900.0];
        let healthy_flags = [false; 4];
        let mut power = 950.0;
        for i in 0..3 {
            let applied: &[f64] = if i % 2 == 0 { &hi } else { &lo };
            power = 950.0 + if i % 2 == 0 { 45.0 } else { -45.0 };
            s.step(&healthy(applied, &healthy_flags, power));
        }
        let mut flags = [false; 4];
        flags[1] = true;
        // 250 W cliff with an ejection: chain must reset, no demotion.
        let d = s.step(&healthy(&lo, &flags, power - 250.0));
        assert!(!d.authority_lost);
        assert_eq!(d.tier, SupervisorTier::Primary);
    }

    #[test]
    fn config_validation() {
        let ok = SupervisorConfig::default();
        ok.validate().unwrap();
        let bad = SupervisorConfig {
            stale_fallback_periods: 0,
            ..ok
        };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig {
            stale_park_periods: 1,
            ..ok
        };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig {
            authority_window: 1,
            ..ok
        };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig {
            authority_min_ratio: 1.0,
            ..ok
        };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig {
            authority_min_excitation_w: 0.0,
            ..ok
        };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig {
            recovery_periods: 0,
            ..ok
        };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig {
            psu_margin_watts: -1.0,
            ..ok
        };
        assert!(bad.validate().is_err());
        assert!(Supervisor::new(ok, vec![0.1; 3], 4).is_err());
    }

    #[test]
    fn tier_encoding_roundtrip() {
        for t in [
            SupervisorTier::Primary,
            SupervisorTier::SafeFallback,
            SupervisorTier::Park,
        ] {
            assert_eq!(SupervisorTier::from_u8(t.as_u8()), t);
        }
        assert_eq!(SupervisorTier::from_u8(9), SupervisorTier::Park);
    }
}
