//! Parallel experiment sweep engine.
//!
//! Every figure and table in the paper's evaluation (§6) is a grid of
//! independent closed-loop experiments: controllers × set points × seeds
//! × scenario variants. This module factors that grid into an explicit
//! [`SweepSpec`], expands it into [`SweepCell`]s, and executes the cells
//! either serially or across OS threads (`std::thread::scope` with an
//! atomic work index, the same work-stealing idiom as the feature
//! selection workload's `run_parallel`).
//!
//! ## Determinism
//!
//! Each cell builds its state from nothing but `(scenario, seed,
//! set point, controller)`: its runner's RNGs are seeded from the
//! scenario, no state is shared mutably between cells, and results are
//! written into per-cell slots. The report is therefore **bit-identical**
//! for any thread count, and identical to [`SweepSpec::run_serial`].
//!
//! ## Identification sharing
//!
//! System identification (§4.2) is a pure function of `(scenario, seed)`
//! — it never reads the power set point. Cells whose controller needs the
//! identified model therefore share one identification pass per
//! `(scenario, seed)` class: the engine identifies once and clones the
//! post-identification [`ExperimentRunner`] for each cell, which replays
//! exactly the trajectory the cell would have produced by identifying on
//! its own (every stochastic component is part of the cloned state).
//! Controllers that do not identify ([`ControllerSpec::FixedStep`],
//! [`ControllerSpec::FixedFrequencies`]) get a fresh runner so their
//! testbed has not been advanced through the excitation sweep.
//!
//! ## Thread count
//!
//! [`SweepSpec::run`] uses the `CAPGPU_SWEEP_THREADS` environment
//! variable when set, otherwise [`std::thread::available_parallelism`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use capgpu_telemetry::registry::Snapshot;

use crate::config::Scenario;
use crate::controllers::PowerController;
use crate::runner::{ExperimentRunner, FixedRunStats, RunTrace};
use crate::{CapGpuError, Result};

/// Environment variable overriding the sweep engine's thread count.
pub const THREADS_ENV: &str = "CAPGPU_SWEEP_THREADS";

/// Thread count for [`SweepSpec::run`]: `CAPGPU_SWEEP_THREADS` if set to
/// a positive integer, else the machine's available parallelism.
pub fn threads_from_env() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// A user-supplied controller factory for [`ControllerSpec::Custom`].
pub type ControllerBuilder =
    dyn Fn(&mut ExperimentRunner) -> Result<Box<dyn PowerController>> + Send + Sync;

/// One axis value of the controller dimension: how a cell's controller
/// (or controller-less dwell) is built from its runner.
#[derive(Clone)]
pub enum ControllerSpec {
    /// The paper's controller (identified model, default weights).
    CapGpu,
    /// The paper's controller with the structure-exploiting fast MPC
    /// solver (`MpcConfig::fast_solver`): box QP in cumulative coordinates
    /// plus an explicit-MPC region table. Same model, weights, and
    /// constraints as [`ControllerSpec::CapGpu`]; agrees to solver
    /// tolerance (see DESIGN.md §15).
    CapGpuFast,
    /// The paper's controller with a phase-blind weight assigner
    /// ([`crate::weights::WeightAssigner::phase_blind`]): throughput
    /// inversion only, ignoring the LLM layer's per-device phase mix.
    /// The ablation arm that shows why the phase signal matters
    /// (DESIGN.md §17); identical to [`ControllerSpec::CapGpu`] on
    /// non-LLM scenarios.
    CapGpuPhaseBlind,
    /// GPU-Only pole-placed baseline (§6.1 baseline 2).
    GpuOnly,
    /// CPU-Only pole-placed baseline (§6.1 baseline 3).
    CpuOnly,
    /// CPU+GPU split baseline with the given GPU budget share.
    Split {
        /// Fraction of the power budget assigned to the GPU loop.
        gpu_share: f64,
    },
    /// Fixed-step baseline (no identification, §6.1 baseline 1).
    FixedStep {
        /// Step-unit multiplier.
        multiplier: usize,
    },
    /// Safe Fixed-step baseline (margin from the identified model).
    SafeFixedStep {
        /// Step-unit multiplier.
        multiplier: usize,
    },
    /// Controller-less fixed-frequency dwell via
    /// [`ExperimentRunner::run_fixed`] — the Table 1 motivation rows. The
    /// cell's output is [`CellOutput::Fixed`] instead of a trace.
    FixedFrequencies {
        /// Display label for the cell.
        label: String,
        /// Per-device frequencies (MHz), in device order.
        freqs: Vec<f64>,
        /// Measured seconds (after warmup).
        seconds: usize,
        /// Warmup seconds excluded from the statistics.
        warmup_seconds: usize,
    },
    /// An arbitrary controller built by a user closure (ablations).
    Custom {
        /// Display label for the cell.
        label: String,
        /// Whether to hand the closure a pre-identified runner. Set
        /// `false` only for builders that never touch the identified
        /// model, so their testbed is not advanced through excitation.
        identify: bool,
        /// The factory.
        build: Arc<ControllerBuilder>,
    },
}

impl ControllerSpec {
    /// A [`ControllerSpec::Custom`] whose builder uses the identified
    /// model (the common case — identification is shared per class).
    pub fn custom<F>(label: impl Into<String>, build: F) -> Self
    where
        F: Fn(&mut ExperimentRunner) -> Result<Box<dyn PowerController>> + Send + Sync + 'static,
    {
        ControllerSpec::Custom {
            label: label.into(),
            identify: true,
            build: Arc::new(build),
        }
    }

    /// The spec's display label (the trace additionally carries the
    /// controller's own `name()`).
    pub fn label(&self) -> String {
        match self {
            ControllerSpec::CapGpu => "CapGPU".into(),
            ControllerSpec::CapGpuFast => "CapGPU (fast)".into(),
            ControllerSpec::CapGpuPhaseBlind => "CapGPU (phase-blind)".into(),
            ControllerSpec::GpuOnly => "GPU-Only".into(),
            ControllerSpec::CpuOnly => "CPU-Only".into(),
            ControllerSpec::Split { gpu_share } => {
                format!("CPU+GPU ({:.0}% GPU)", 100.0 * gpu_share)
            }
            ControllerSpec::FixedStep { multiplier } => format!("Fixed-step x{multiplier}"),
            ControllerSpec::SafeFixedStep { multiplier } => {
                format!("Safe Fixed-step x{multiplier}")
            }
            ControllerSpec::FixedFrequencies { label, .. }
            | ControllerSpec::Custom { label, .. } => label.clone(),
        }
    }

    /// Whether the cell wants the shared post-identification runner.
    fn needs_identification(&self) -> bool {
        match self {
            ControllerSpec::FixedStep { .. } | ControllerSpec::FixedFrequencies { .. } => false,
            ControllerSpec::Custom { identify, .. } => *identify,
            _ => true,
        }
    }

    /// Builds the boxed controller on the cell's runner.
    fn build(&self, r: &mut ExperimentRunner) -> Result<Box<dyn PowerController>> {
        Ok(match self {
            ControllerSpec::CapGpu => Box::new(r.build_capgpu_controller()?),
            ControllerSpec::CapGpuFast => Box::new(r.build_capgpu_fast()?),
            ControllerSpec::CapGpuPhaseBlind => Box::new(r.build_capgpu_phase_blind()?),
            ControllerSpec::GpuOnly => Box::new(r.build_gpu_only()?),
            ControllerSpec::CpuOnly => Box::new(r.build_cpu_only()?),
            ControllerSpec::Split { gpu_share } => Box::new(r.build_split(*gpu_share)?),
            ControllerSpec::FixedStep { multiplier } => Box::new(r.build_fixed_step(*multiplier)),
            ControllerSpec::SafeFixedStep { multiplier } => {
                Box::new(r.build_safe_fixed_step(*multiplier)?)
            }
            ControllerSpec::Custom { build, .. } => build(r)?,
            ControllerSpec::FixedFrequencies { .. } => {
                return Err(CapGpuError::BadConfig(
                    "fixed-frequency cells have no controller".into(),
                ))
            }
        })
    }
}

impl std::fmt::Debug for ControllerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ControllerSpec({})", self.label())
    }
}

/// One point of the expanded sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Index into the spec's scenario list.
    pub scenario_index: usize,
    /// Label of the cell's scenario variant.
    pub scenario_label: String,
    /// Index into the spec's seed list (0 when the spec uses each
    /// scenario's embedded seed).
    pub seed_index: usize,
    /// The RNG seed in force for the cell.
    pub seed: u64,
    /// Index into the spec's set-point list.
    pub setpoint_index: usize,
    /// Initial power set point (W).
    pub setpoint: f64,
    /// Index into the spec's controller list.
    pub controller_index: usize,
    /// Label of the cell's controller spec.
    pub controller_label: String,
}

/// What a cell produced: a closed-loop trace or fixed-dwell statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutput {
    /// Closed-loop run ([`ExperimentRunner::run`]).
    Trace(RunTrace),
    /// Controller-less dwell ([`ExperimentRunner::run_fixed`]).
    Fixed(FixedRunStats),
}

impl CellOutput {
    /// The trace, if this was a closed-loop cell.
    pub fn as_trace(&self) -> Option<&RunTrace> {
        match self {
            CellOutput::Trace(t) => Some(t),
            CellOutput::Fixed(_) => None,
        }
    }

    /// The fixed-dwell statistics, if this was a fixed-frequency cell.
    pub fn as_fixed(&self) -> Option<&FixedRunStats> {
        match self {
            CellOutput::Fixed(s) => Some(s),
            CellOutput::Trace(_) => None,
        }
    }
}

/// A completed cell: its grid coordinates plus its output.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellResult {
    /// The cell's coordinates in the sweep grid.
    pub cell: SweepCell,
    /// The cell's output.
    pub output: CellOutput,
    /// Frozen telemetry registry of the cell's runner, when its
    /// scenario enables telemetry. Snapshot contents are sim-clock
    /// deterministic, so they participate in the report's bit-identity
    /// guarantee across thread counts.
    pub telemetry: Option<Snapshot>,
}

impl SweepCellResult {
    /// The cell's trace.
    ///
    /// # Panics
    /// Panics if the cell was a fixed-frequency dwell.
    pub fn trace(&self) -> &RunTrace {
        self.output
            .as_trace()
            .expect("cell produced fixed-dwell statistics, not a trace")
    }

    /// The cell's fixed-dwell statistics.
    ///
    /// # Panics
    /// Panics if the cell was a closed-loop run.
    pub fn fixed(&self) -> &FixedRunStats {
        self.output
            .as_fixed()
            .expect("cell produced a trace, not fixed-dwell statistics")
    }
}

/// The collected results of a sweep, in expansion order (scenario, then
/// seed, then set point, then controller — row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-cell results in expansion order.
    pub cells: Vec<SweepCellResult>,
    n_seeds: usize,
    n_setpoints: usize,
    n_controllers: usize,
}

impl SweepReport {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell at the given grid coordinates.
    ///
    /// # Panics
    /// Panics if any index is out of the sweep grid's range.
    pub fn get(
        &self,
        scenario: usize,
        seed: usize,
        setpoint: usize,
        controller: usize,
    ) -> &SweepCellResult {
        assert!(
            seed < self.n_seeds && setpoint < self.n_setpoints && controller < self.n_controllers,
            "cell ({scenario}, {seed}, {setpoint}, {controller}) outside the sweep grid"
        );
        let idx = ((scenario * self.n_seeds + seed) * self.n_setpoints + setpoint)
            * self.n_controllers
            + controller;
        &self.cells[idx]
    }

    /// Shorthand for `get(..).trace()`.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates or a fixed-frequency cell.
    pub fn trace(
        &self,
        scenario: usize,
        seed: usize,
        setpoint: usize,
        controller: usize,
    ) -> &RunTrace {
        self.get(scenario, seed, setpoint, controller).trace()
    }

    /// All traces in expansion order (fixed-frequency cells excluded).
    pub fn traces(&self) -> impl Iterator<Item = &RunTrace> {
        self.cells.iter().filter_map(|c| c.output.as_trace())
    }

    /// Fold every cell's telemetry snapshot into one aggregate, merging
    /// strictly in grid (expansion) order. Because the fold order is a
    /// property of the spec — not of how cells were scheduled across
    /// threads — the aggregate is bit-identical for any thread count,
    /// including the float histogram sums. `None` when no cell carried
    /// telemetry.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] when two cells registered the same
    /// histogram with different bucket edges.
    pub fn merged_telemetry(&self) -> Result<Option<Snapshot>> {
        let mut acc: Option<Snapshot> = None;
        for cell in &self.cells {
            if let Some(snap) = &cell.telemetry {
                match acc.as_mut() {
                    Some(a) => a
                        .merge(snap)
                        .map_err(|e| CapGpuError::BadConfig(e.to_string()))?,
                    None => acc = Some(snap.clone()),
                }
            }
        }
        Ok(acc)
    }
}

/// Scalar summary of one finished cell — everything the streaming mode
/// keeps before folding; the trace itself is dropped as soon as these are
/// extracted.
#[derive(Debug, Clone, PartialEq)]
struct CellSummary {
    /// Group index: `scenario_index · n_controllers + controller_index`.
    group: usize,
    power_mean: f64,
    power_std: f64,
    tracking_error: f64,
    violations: usize,
    settling_period: Option<usize>,
    mean_miss_rate: f64,
    telemetry: Option<Snapshot>,
}

/// Streaming accumulator for one `(scenario, controller)` group: scalar
/// sums folded strictly in grid (expansion) order, so every float total is
/// bit-identical for any thread count. Means are exposed as accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Index into the spec's scenario list.
    pub scenario_index: usize,
    /// Label of the group's scenario variant.
    pub scenario_label: String,
    /// Index into the spec's controller list.
    pub controller_index: usize,
    /// Label of the group's controller spec.
    pub controller_label: String,
    /// Cells folded into this group.
    pub cells: usize,
    /// Sum of steady-state mean powers (W).
    pub power_mean_sum: f64,
    /// Sum of steady-state power standard deviations (W).
    pub power_std_sum: f64,
    /// Sum of per-cell |steady power − set point| tracking errors (W).
    pub tracking_error_sum: f64,
    /// Worst per-cell tracking error in the group (W).
    pub tracking_error_max: f64,
    /// Total set-point violations across the group's cells.
    pub violations: usize,
    /// Cells whose power settled into the ±2% band.
    pub settled_cells: usize,
    /// Sum of settling periods over the settled cells.
    pub settling_sum: usize,
    /// Sum of per-cell mean deadline-miss rates.
    pub miss_rate_sum: f64,
}

impl GroupSummary {
    fn new(spec: &SweepSpec, scenario_index: usize, controller_index: usize) -> Self {
        GroupSummary {
            scenario_index,
            scenario_label: spec.scenarios[scenario_index].0.clone(),
            controller_index,
            controller_label: spec.controllers[controller_index].label(),
            cells: 0,
            power_mean_sum: 0.0,
            power_std_sum: 0.0,
            tracking_error_sum: 0.0,
            tracking_error_max: 0.0,
            violations: 0,
            settled_cells: 0,
            settling_sum: 0,
            miss_rate_sum: 0.0,
        }
    }

    fn fold(&mut self, s: &CellSummary) {
        self.cells += 1;
        self.power_mean_sum += s.power_mean;
        self.power_std_sum += s.power_std;
        self.tracking_error_sum += s.tracking_error;
        self.tracking_error_max = self.tracking_error_max.max(s.tracking_error);
        self.violations += s.violations;
        if let Some(p) = s.settling_period {
            self.settled_cells += 1;
            self.settling_sum += p;
        }
        self.miss_rate_sum += s.mean_miss_rate;
    }

    /// Mean steady-state power over the group's cells (W).
    pub fn mean_power(&self) -> f64 {
        self.power_mean_sum / (self.cells.max(1) as f64)
    }

    /// Mean steady-state power standard deviation (W).
    pub fn mean_power_std(&self) -> f64 {
        self.power_std_sum / (self.cells.max(1) as f64)
    }

    /// Mean tracking error (W).
    pub fn mean_tracking_error(&self) -> f64 {
        self.tracking_error_sum / (self.cells.max(1) as f64)
    }

    /// Mean deadline-miss rate across the group's cells.
    pub fn mean_miss_rate(&self) -> f64 {
        self.miss_rate_sum / (self.cells.max(1) as f64)
    }

    /// Mean settling period over the cells that settled (`None` when none
    /// did).
    pub fn mean_settling(&self) -> Option<f64> {
        (self.settled_cells > 0).then(|| self.settling_sum as f64 / self.settled_cells as f64)
    }

    /// One-line report row for the group.
    pub fn row(&self) -> String {
        format!(
            "{:<16} {:<22} cells {:>5}  P {:>7.1} ± {:>5.1} W  err {:>6.2} W (max {:>6.2})  viol {:>5}",
            self.scenario_label,
            self.controller_label,
            self.cells,
            self.mean_power(),
            self.mean_power_std(),
            self.mean_tracking_error(),
            self.tracking_error_max,
            self.violations,
        )
    }
}

/// Result of a streaming sweep ([`SweepSpec::streaming`]): one
/// [`GroupSummary`] per `(scenario, controller)` pair plus the merged
/// telemetry — memory is `O(groups)`, independent of the cell count.
///
/// `peak_pending` is a scheduling diagnostic (the largest number of
/// finished-but-not-yet-folded cells the bounded reorder window ever
/// held); it depends on thread scheduling and is deliberately excluded
/// from equality so reports stay comparable across thread counts.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Group accumulators, scenario-major then controller-minor.
    pub groups: Vec<GroupSummary>,
    /// Total cells folded.
    pub cells: usize,
    /// Telemetry snapshots merged in grid order (as
    /// [`SweepReport::merged_telemetry`]); `None` when no cell carried
    /// telemetry.
    pub telemetry: Option<Snapshot>,
    /// Peak size of the out-of-order pending buffer (0 for serial runs).
    /// Bounded by the reorder window (configurable via
    /// [`SweepSpec::reorder_window`], default `2·threads + 16`);
    /// excluded from `PartialEq`.
    pub peak_pending: usize,
    n_controllers: usize,
}

impl PartialEq for StreamReport {
    fn eq(&self, other: &Self) -> bool {
        self.groups == other.groups
            && self.cells == other.cells
            && self.telemetry == other.telemetry
            && self.n_controllers == other.n_controllers
    }
}

impl StreamReport {
    /// The group accumulator at `(scenario, controller)`.
    ///
    /// # Panics
    /// Panics if either index is outside the sweep grid.
    pub fn get(&self, scenario: usize, controller: usize) -> &GroupSummary {
        assert!(
            controller < self.n_controllers,
            "group ({scenario}, {controller}) outside the sweep grid"
        );
        &self.groups[scenario * self.n_controllers + controller]
    }
}

/// Shared fold state of the parallel streaming executor.
struct FoldState {
    /// Next cell index to fold (the fold frontier).
    next: usize,
    /// Finished cells waiting for the frontier, keyed by cell index.
    pending: BTreeMap<usize, CellSummary>,
    groups: Vec<GroupSummary>,
    telemetry: Option<Snapshot>,
    peak_pending: usize,
}

/// Declarative description of an experiment sweep.
///
/// ```
/// use capgpu::prelude::*;
/// use capgpu::sweep::{ControllerSpec, SweepSpec};
///
/// let report = SweepSpec::new(Scenario::paper_testbed(42))
///     .setpoint(900.0)
///     .periods(10)
///     .controller(ControllerSpec::CapGpu)
///     .controller(ControllerSpec::GpuOnly)
///     .run()
///     .unwrap();
/// assert_eq!(report.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    scenarios: Vec<(String, Scenario)>,
    seeds: Vec<u64>,
    setpoints: Vec<f64>,
    controllers: Vec<ControllerSpec>,
    periods: usize,
    reorder_window: Option<usize>,
}

/// The streaming executor's default bounded reorder window for a given
/// thread count: `2·threads + 16`. Shared by [`SweepSpec::streaming`]
/// and the fleet simulator's shard folding (`capgpu-fleet`), so one
/// knob ([`SweepSpec::reorder_window`] / `FleetConfig::reorder_window`)
/// tunes the same memory/throughput trade everywhere.
pub fn default_reorder_window(threads: usize) -> usize {
    2 * threads.max(1) + 16
}

impl SweepSpec {
    /// A sweep over one base scenario (labelled `"base"`).
    pub fn new(base: Scenario) -> Self {
        SweepSpec {
            scenarios: vec![("base".into(), base)],
            seeds: Vec::new(),
            setpoints: Vec::new(),
            controllers: Vec::new(),
            periods: 100,
            reorder_window: None,
        }
    }

    /// The serving scenario family: the serving testbed
    /// ([`Scenario::serving_testbed`]) swept over arrival-rate scales
    /// (each scale multiplies every task's nominal rate), plus — when
    /// `burst_factor` is given — a burst variant that doubles down
    /// mid-run via [`crate::config::ScheduledChange::ServingBurst`] on
    /// task 0 at period 50. Labels are `load x<scale>` and
    /// `burst x<factor>`.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on a non-positive scale or factor.
    pub fn serving_family(
        seed: u64,
        rate_scales: &[f64],
        burst_factor: Option<f64>,
    ) -> Result<Self> {
        let mut scenarios = Vec::new();
        for &scale in rate_scales {
            if !(scale > 0.0 && scale.is_finite()) {
                return Err(CapGpuError::BadConfig(
                    "serving family rate scales must be positive".into(),
                ));
            }
            let mut scenario = Scenario::serving_testbed(seed);
            let serving = scenario.serving.as_mut().expect("serving testbed");
            for p in &mut serving.arrivals {
                *p = p.scaled(scale);
            }
            scenarios.push((format!("load x{scale:.2}"), scenario));
        }
        if let Some(factor) = burst_factor {
            let scenario = Scenario::serving_testbed(seed).with_change(
                crate::config::ScheduledChange::ServingBurst {
                    at_period: 50,
                    task: 0,
                    factor,
                },
            );
            scenario.validate()?;
            scenarios.push((format!("burst x{factor:.2}"), scenario));
        }
        Ok(SweepSpec::over_scenarios(scenarios))
    }

    /// The fault-injection scenario family: the fault testbed
    /// ([`Scenario::fault_testbed`]) swept over storm intensities. Each
    /// intensity appears twice — unsupervised (`storm x<i>`) and with
    /// the default supervisory failover layer (`storm x<i> +sup`). Both
    /// variants share byte-identical storm schedules, so any difference
    /// between the paired cells isolates the supervisor.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on a non-positive intensity.
    pub fn fault_family(seed: u64, intensities: &[f64]) -> Result<Self> {
        let mut scenarios = Vec::new();
        for &intensity in intensities {
            if !(intensity > 0.0 && intensity.is_finite()) {
                return Err(CapGpuError::BadConfig(
                    "fault family intensities must be positive".into(),
                ));
            }
            let cfg = capgpu_faults::StormConfig {
                intensity,
                ..Default::default()
            };
            let storm = capgpu_faults::FaultSchedule::storm(seed, &cfg)?;
            let base = Scenario::fault_testbed(seed).with_faults(storm);
            base.validate()?;
            scenarios.push((format!("storm x{intensity:.2}"), base.clone()));
            scenarios.push((
                format!("storm x{intensity:.2} +sup"),
                base.with_supervisor(crate::supervisor::SupervisorConfig::default()),
            ));
        }
        Ok(SweepSpec::over_scenarios(scenarios))
    }

    /// The LLM serving scenario family: the LLM testbed
    /// ([`Scenario::llm_testbed`]) swept over arrival-rate scales (each
    /// scale multiplies every task's nominal request rate), paired with
    /// the phase-aware and phase-blind CapGPU arms when run through
    /// [`ControllerSpec::CapGpu`] / [`ControllerSpec::CapGpuPhaseBlind`].
    /// Labels are `llm x<scale>`. Like every family, the expanded grid
    /// is a pure function of the spec — bit-identical across thread
    /// counts.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on a non-positive scale.
    pub fn llm_family(seed: u64, rate_scales: &[f64]) -> Result<Self> {
        let mut scenarios = Vec::new();
        for &scale in rate_scales {
            if !(scale > 0.0 && scale.is_finite()) {
                return Err(CapGpuError::BadConfig(
                    "llm family rate scales must be positive".into(),
                ));
            }
            let mut scenario = Scenario::llm_testbed(seed);
            let llm = scenario.llm.as_mut().expect("llm testbed");
            for task in &mut llm.tasks {
                task.arrival = task.arrival.scaled(scale);
            }
            scenario.validate()?;
            scenarios.push((format!("llm x{scale:.2}"), scenario));
        }
        Ok(SweepSpec::over_scenarios(scenarios))
    }

    /// A sweep over several labelled scenario variants.
    pub fn over_scenarios(scenarios: Vec<(String, Scenario)>) -> Self {
        SweepSpec {
            scenarios,
            seeds: Vec::new(),
            setpoints: Vec::new(),
            controllers: Vec::new(),
            periods: 100,
            reorder_window: None,
        }
    }

    /// Adds a labelled scenario variant.
    #[must_use]
    pub fn scenario(mut self, label: impl Into<String>, scenario: Scenario) -> Self {
        self.scenarios.push((label.into(), scenario));
        self
    }

    /// Adds a seed to the seed axis. When no seed is added, each scenario
    /// runs with its own embedded seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds a set point to the set-point axis.
    #[must_use]
    pub fn setpoint(mut self, watts: f64) -> Self {
        self.setpoints.push(watts);
        self
    }

    /// Adds several set points.
    #[must_use]
    pub fn setpoints(mut self, watts: &[f64]) -> Self {
        self.setpoints.extend_from_slice(watts);
        self
    }

    /// Adds a controller to the controller axis.
    #[must_use]
    pub fn controller(mut self, spec: ControllerSpec) -> Self {
        self.controllers.push(spec);
        self
    }

    /// Sets the closed-loop run length in control periods (default 100,
    /// the paper's standard; ignored by fixed-frequency cells).
    #[must_use]
    pub fn periods(mut self, periods: usize) -> Self {
        self.periods = periods;
        self
    }

    /// Sets the streaming executor's bounded reorder window (finished
    /// cells that may be parked out of fold order before admission
    /// control blocks further claims). Default: [`default_reorder_window`]
    /// = `2·threads + 16`, which existing goldens were produced with.
    /// Values below 1 are clamped to 1 (pure in-order folding). Only
    /// [`SweepSpec::streaming`]/[`SweepSpec::streaming_with_threads`]
    /// read it; the full-trace paths retain every cell regardless.
    #[must_use]
    pub fn reorder_window(mut self, window: usize) -> Self {
        self.reorder_window = Some(window.max(1));
        self
    }

    /// The reorder window the streaming executor will use at the given
    /// thread count: the configured override, else
    /// [`default_reorder_window`].
    pub fn effective_reorder_window(&self, threads: usize) -> usize {
        self.reorder_window
            .unwrap_or_else(|| default_reorder_window(threads))
    }

    fn n_seeds(&self) -> usize {
        self.seeds.len().max(1)
    }

    /// Number of cells the spec expands to.
    pub fn num_cells(&self) -> usize {
        self.scenarios.len() * self.n_seeds() * self.setpoints.len() * self.controllers.len()
    }

    fn validate(&self) -> Result<()> {
        if self.scenarios.is_empty() {
            return Err(CapGpuError::BadConfig("sweep needs >= 1 scenario".into()));
        }
        if self.setpoints.is_empty() {
            return Err(CapGpuError::BadConfig("sweep needs >= 1 set point".into()));
        }
        if self.controllers.is_empty() {
            return Err(CapGpuError::BadConfig("sweep needs >= 1 controller".into()));
        }
        if self.periods == 0 {
            return Err(CapGpuError::BadConfig("sweep needs >= 1 period".into()));
        }
        Ok(())
    }

    /// The expanded cell grid, in execution/report order.
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.num_cells());
        for (si, (label, scenario)) in self.scenarios.iter().enumerate() {
            let seeds: Vec<u64> = if self.seeds.is_empty() {
                vec![scenario.seed]
            } else {
                self.seeds.clone()
            };
            for (di, &seed) in seeds.iter().enumerate() {
                for (pi, &setpoint) in self.setpoints.iter().enumerate() {
                    for (ci, spec) in self.controllers.iter().enumerate() {
                        cells.push(SweepCell {
                            scenario_index: si,
                            scenario_label: label.clone(),
                            seed_index: di,
                            seed,
                            setpoint_index: pi,
                            setpoint,
                            controller_index: ci,
                            controller_label: spec.label(),
                        });
                    }
                }
            }
        }
        cells
    }

    /// The scenario of one `(scenario, seed)` class, seed applied.
    fn class_scenario(&self, class_index: usize) -> Scenario {
        let n_seeds = self.n_seeds();
        let (_, base) = &self.scenarios[class_index / n_seeds];
        let mut scenario = base.clone();
        if !self.seeds.is_empty() {
            scenario.seed = self.seeds[class_index % n_seeds];
        }
        scenario
    }

    /// Identifies one class's runner (set point is per-cell, overwritten
    /// at clone time; identification never reads it).
    fn identify_class(&self, class_index: usize) -> Result<ExperimentRunner> {
        let mut runner =
            ExperimentRunner::new(self.class_scenario(class_index), self.setpoints[0])?;
        runner.identify()?;
        Ok(runner)
    }

    /// Executes one cell, cloning the class's identified runner when the
    /// controller wants it and building a fresh one otherwise.
    fn run_cell(
        &self,
        cell: &SweepCell,
        identified: Option<&ExperimentRunner>,
    ) -> Result<(CellOutput, Option<Snapshot>)> {
        let spec = &self.controllers[cell.controller_index];
        let class_index = cell.scenario_index * self.n_seeds() + cell.seed_index;
        let mut runner = match identified {
            Some(base) if spec.needs_identification() => {
                let mut r = base.clone();
                r.set_setpoint(cell.setpoint);
                r
            }
            _ => ExperimentRunner::new(self.class_scenario(class_index), cell.setpoint)?,
        };
        if let ControllerSpec::FixedFrequencies {
            freqs,
            seconds,
            warmup_seconds,
            ..
        } = spec
        {
            let output = CellOutput::Fixed(runner.run_fixed(freqs, *seconds, *warmup_seconds)?);
            let telemetry = runner.telemetry().map(|tm| tm.snapshot());
            return Ok((output, telemetry));
        }
        let controller = spec.build(&mut runner)?;
        let output = CellOutput::Trace(runner.run(controller, self.periods)?);
        let telemetry = runner.telemetry().map(|tm| tm.snapshot());
        Ok((output, telemetry))
    }

    fn report(&self, cells: Vec<SweepCellResult>) -> SweepReport {
        SweepReport {
            cells,
            n_seeds: self.n_seeds(),
            n_setpoints: self.setpoints.len(),
            n_controllers: self.controllers.len(),
        }
    }

    /// Runs the sweep with the thread count from [`threads_from_env`].
    ///
    /// # Errors
    /// Propagates the first cell or identification error.
    pub fn run(&self) -> Result<SweepReport> {
        self.run_with_threads(threads_from_env())
    }

    /// Runs the sweep serially with plain loops — the reference
    /// implementation the parallel executor must match bit-for-bit.
    ///
    /// # Errors
    /// Propagates the first cell or identification error.
    pub fn run_serial(&self) -> Result<SweepReport> {
        self.validate()?;
        let cells = self.expand();
        let n_classes = self.scenarios.len() * self.n_seeds();
        let any_ident = self
            .controllers
            .iter()
            .any(ControllerSpec::needs_identification);
        let mut identified: Vec<Option<ExperimentRunner>> = Vec::with_capacity(n_classes);
        for class in 0..n_classes {
            identified.push(if any_ident {
                Some(self.identify_class(class)?)
            } else {
                None
            });
        }
        let mut results = Vec::with_capacity(cells.len());
        for cell in cells {
            let class = cell.scenario_index * self.n_seeds() + cell.seed_index;
            let (output, telemetry) = self.run_cell(&cell, identified[class].as_ref())?;
            results.push(SweepCellResult {
                cell,
                output,
                telemetry,
            });
        }
        Ok(self.report(results))
    }

    /// Runs the sweep across `threads` OS threads. Cells are distributed
    /// by an atomic work index; each writes its own result slot, so the
    /// report is bit-identical to [`SweepSpec::run_serial`] regardless of
    /// the thread count or scheduling order.
    ///
    /// # Errors
    /// Propagates the first cell or identification error (remaining work
    /// is abandoned).
    pub fn run_with_threads(&self, threads: usize) -> Result<SweepReport> {
        self.validate()?;
        let threads = threads.max(1);
        let cells = self.expand();
        let n_classes = self.scenarios.len() * self.n_seeds();
        let any_ident = self
            .controllers
            .iter()
            .any(ControllerSpec::needs_identification);

        let first_error: Mutex<Option<CapGpuError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        let record_error = |e: CapGpuError| {
            abort.store(true, Ordering::Relaxed);
            first_error.lock().expect("error lock").get_or_insert(e);
        };

        // Phase 1: one identification per (scenario, seed) class.
        let identified: Vec<Mutex<Option<ExperimentRunner>>> =
            (0..n_classes).map(|_| Mutex::new(None)).collect();
        if any_ident {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(n_classes) {
                    scope.spawn(|| loop {
                        let class = next.fetch_add(1, Ordering::Relaxed);
                        if class >= n_classes || abort.load(Ordering::Relaxed) {
                            break;
                        }
                        match self.identify_class(class) {
                            Ok(runner) => {
                                *identified[class].lock().expect("class lock") = Some(runner);
                            }
                            Err(e) => record_error(e),
                        }
                    });
                }
            });
        }
        if let Some(e) = first_error.lock().expect("error lock").take() {
            return Err(e);
        }

        // Phase 2: the cells, work-stolen by index into private slots.
        let slots: Vec<Mutex<Option<SweepCellResult>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(cells.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() || abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let cell = &cells[i];
                    let class = cell.scenario_index * self.n_seeds() + cell.seed_index;
                    let base = identified[class]
                        .lock()
                        .expect("class lock")
                        .as_ref()
                        .cloned();
                    match self.run_cell(cell, base.as_ref()) {
                        Ok((output, telemetry)) => {
                            *slots[i].lock().expect("slot lock") = Some(SweepCellResult {
                                cell: cell.clone(),
                                output,
                                telemetry,
                            });
                        }
                        Err(e) => record_error(e),
                    }
                });
            }
        });
        if let Some(e) = first_error.lock().expect("error lock").take() {
            return Err(e);
        }

        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("cell completed without error")
            })
            .collect();
        Ok(self.report(results))
    }

    // ---- Streaming summary-reduction mode ------------------------------

    /// Reduces one finished cell to its scalar summary; the cell's trace
    /// is dropped by the caller immediately afterwards. Fixed-frequency
    /// dwell cells contribute only their mean power (they have no set
    /// point to track).
    fn summarize_cell(
        &self,
        cell: &SweepCell,
        output: &CellOutput,
        telemetry: Option<Snapshot>,
    ) -> CellSummary {
        let group = cell.scenario_index * self.controllers.len() + cell.controller_index;
        match output {
            CellOutput::Trace(trace) => {
                let s = crate::summary::RunSummary::from_trace(trace);
                let mean_miss_rate = if s.miss_rates.is_empty() {
                    0.0
                } else {
                    s.miss_rates.iter().sum::<f64>() / s.miss_rates.len() as f64
                };
                CellSummary {
                    group,
                    power_mean: s.power_mean,
                    power_std: s.power_std,
                    tracking_error: s.tracking_error,
                    violations: s.violations,
                    settling_period: s.settling_period,
                    mean_miss_rate,
                    telemetry,
                }
            }
            CellOutput::Fixed(stats) => CellSummary {
                group,
                power_mean: stats.mean_power,
                power_std: 0.0,
                tracking_error: 0.0,
                violations: 0,
                settling_period: None,
                mean_miss_rate: 0.0,
                telemetry,
            },
        }
    }

    /// One group accumulator per `(scenario, controller)` pair,
    /// scenario-major.
    fn make_groups(&self) -> Vec<GroupSummary> {
        let mut groups = Vec::with_capacity(self.scenarios.len() * self.controllers.len());
        for si in 0..self.scenarios.len() {
            for ci in 0..self.controllers.len() {
                groups.push(GroupSummary::new(self, si, ci));
            }
        }
        groups
    }

    /// Folds one summary into the accumulators (strictly in grid order —
    /// the caller guarantees ordering; this keeps the float sums and the
    /// telemetry merge bit-identical across thread counts).
    fn fold_summary(
        groups: &mut [GroupSummary],
        telemetry: &mut Option<Snapshot>,
        s: CellSummary,
    ) -> Result<()> {
        groups[s.group].fold(&s);
        if let Some(snap) = s.telemetry {
            match telemetry.as_mut() {
                Some(acc) => acc
                    .merge(&snap)
                    .map_err(|e| CapGpuError::BadConfig(e.to_string()))?,
                None => *telemetry = Some(snap),
            }
        }
        Ok(())
    }

    /// Folds an already-collected full-trace report into the group
    /// accumulators [`SweepSpec::streaming`] produces — same fold code,
    /// same order, so
    /// `spec.summarize_report(&spec.run_serial()?)? == spec.streaming_serial()?`
    /// holds exactly (used by the regression tests and the smoke bin).
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on a telemetry bucket-layout mismatch.
    pub fn summarize_report(&self, report: &SweepReport) -> Result<StreamReport> {
        self.validate()?;
        let mut groups = self.make_groups();
        let mut telemetry = None;
        for r in &report.cells {
            let s = self.summarize_cell(&r.cell, &r.output, r.telemetry.clone());
            Self::fold_summary(&mut groups, &mut telemetry, s)?;
        }
        Ok(StreamReport {
            groups,
            cells: report.cells.len(),
            telemetry,
            peak_pending: 0,
            n_controllers: self.controllers.len(),
        })
    }

    /// Runs the sweep in streaming summary-reduction mode with the thread
    /// count from [`threads_from_env`]: each finished cell is folded into
    /// its `(scenario, controller)` group accumulator in deterministic
    /// grid order and its trace is dropped immediately, keeping memory
    /// `O(groups + classes)` instead of `O(cells)`. The result is
    /// bit-identical for any thread count.
    ///
    /// # Errors
    /// Propagates the first cell or identification error.
    pub fn streaming(&self) -> Result<StreamReport> {
        self.streaming_with_threads(threads_from_env())
    }

    /// Serial reference implementation of [`SweepSpec::streaming`].
    ///
    /// # Errors
    /// Propagates the first cell or identification error.
    pub fn streaming_serial(&self) -> Result<StreamReport> {
        self.validate()?;
        let cells = self.expand();
        let n_classes = self.scenarios.len() * self.n_seeds();
        let any_ident = self
            .controllers
            .iter()
            .any(ControllerSpec::needs_identification);
        let mut identified: Vec<Option<ExperimentRunner>> = Vec::with_capacity(n_classes);
        for class in 0..n_classes {
            identified.push(if any_ident {
                Some(self.identify_class(class)?)
            } else {
                None
            });
        }
        let mut groups = self.make_groups();
        let mut telemetry = None;
        for cell in &cells {
            let class = cell.scenario_index * self.n_seeds() + cell.seed_index;
            let (output, telem) = self.run_cell(cell, identified[class].as_ref())?;
            let s = self.summarize_cell(cell, &output, telem);
            drop(output); // the trace dies here — flat memory
            Self::fold_summary(&mut groups, &mut telemetry, s)?;
        }
        Ok(StreamReport {
            groups,
            cells: cells.len(),
            telemetry,
            peak_pending: 0,
            n_controllers: self.controllers.len(),
        })
    }

    /// Runs the streaming sweep across `threads` OS threads.
    ///
    /// Cells are claimed by an atomic work index, but folding happens
    /// strictly at the fold frontier (cell `next` folds before `next+1`),
    /// with finished out-of-order cells parked in a pending buffer. A
    /// worker may only *claim* a cell while it is within the reorder
    /// window ([`SweepSpec::reorder_window`] if configured, else
    /// `2·threads + 16`) of the frontier, which bounds the buffer:
    /// the worker holding the lowest unfolded cell is never blocked, so
    /// the frontier always advances (no deadlock) and
    /// [`StreamReport::peak_pending`] never exceeds the window.
    ///
    /// # Errors
    /// Propagates the first cell or identification error (remaining work
    /// is abandoned).
    pub fn streaming_with_threads(&self, threads: usize) -> Result<StreamReport> {
        self.validate()?;
        let threads = threads.max(1);
        let cells = self.expand();
        let n_classes = self.scenarios.len() * self.n_seeds();
        let any_ident = self
            .controllers
            .iter()
            .any(ControllerSpec::needs_identification);

        let first_error: Mutex<Option<CapGpuError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        let record_error = |e: CapGpuError| {
            abort.store(true, Ordering::Relaxed);
            first_error.lock().expect("error lock").get_or_insert(e);
        };

        // Phase 1: one identification per (scenario, seed) class — the
        // same shared-identification scheme as `run_with_threads`.
        let identified: Vec<Mutex<Option<ExperimentRunner>>> =
            (0..n_classes).map(|_| Mutex::new(None)).collect();
        if any_ident {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(n_classes) {
                    scope.spawn(|| loop {
                        let class = next.fetch_add(1, Ordering::Relaxed);
                        if class >= n_classes || abort.load(Ordering::Relaxed) {
                            break;
                        }
                        match self.identify_class(class) {
                            Ok(runner) => {
                                *identified[class].lock().expect("class lock") = Some(runner);
                            }
                            Err(e) => record_error(e),
                        }
                    });
                }
            });
        }
        if let Some(e) = first_error.lock().expect("error lock").take() {
            return Err(e);
        }

        // Phase 2: run cells and fold them at the frontier.
        let window = self.effective_reorder_window(threads);
        let fold = Mutex::new(FoldState {
            next: 0,
            pending: BTreeMap::new(),
            groups: self.make_groups(),
            telemetry: None,
            peak_pending: 0,
        });
        let gate = Condvar::new();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(cells.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() || abort.load(Ordering::Relaxed) {
                        break;
                    }
                    // Admission control: stay within the reorder window of
                    // the fold frontier.
                    {
                        let mut st = fold.lock().expect("fold lock");
                        while st.next + window <= i && !abort.load(Ordering::Relaxed) {
                            st = gate.wait(st).expect("fold lock");
                        }
                    }
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let cell = &cells[i];
                    let class = cell.scenario_index * self.n_seeds() + cell.seed_index;
                    let base = identified[class]
                        .lock()
                        .expect("class lock")
                        .as_ref()
                        .cloned();
                    match self.run_cell(cell, base.as_ref()) {
                        Ok((output, telem)) => {
                            let s = self.summarize_cell(cell, &output, telem);
                            drop(output); // the trace dies here — flat memory
                            let mut st = fold.lock().expect("fold lock");
                            st.pending.insert(i, s);
                            st.peak_pending = st.peak_pending.max(st.pending.len());
                            while let Some(ready) = {
                                let key = st.next;
                                st.pending.remove(&key)
                            } {
                                let FoldState {
                                    groups, telemetry, ..
                                } = &mut *st;
                                if let Err(e) = Self::fold_summary(groups, telemetry, ready) {
                                    record_error(e);
                                    break;
                                }
                                st.next += 1;
                            }
                            gate.notify_all();
                        }
                        Err(e) => {
                            record_error(e);
                            gate.notify_all();
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.lock().expect("error lock").take() {
            return Err(e);
        }

        let st = fold.into_inner().expect("fold lock");
        debug_assert_eq!(st.next, cells.len(), "all cells folded");
        debug_assert!(st.pending.is_empty(), "no cell left pending");
        Ok(StreamReport {
            groups: st.groups,
            cells: cells.len(),
            telemetry: st.telemetry,
            peak_pending: st.peak_pending,
            n_controllers: self.controllers.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec::new(Scenario::paper_testbed(7))
            .setpoints(&[900.0, 1000.0])
            .periods(5)
            .controller(ControllerSpec::CapGpu)
            .controller(ControllerSpec::FixedStep { multiplier: 2 })
    }

    #[test]
    fn expansion_order_is_row_major() {
        let spec = small_spec();
        let cells = spec.expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(spec.num_cells(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.setpoint_index, c.controller_index))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0), (1, 1)]
        );
        assert_eq!(cells[0].seed, 7);
        assert_eq!(cells[0].controller_label, "CapGPU");
    }

    #[test]
    fn validation_rejects_empty_axes() {
        let s = Scenario::paper_testbed(1);
        assert!(SweepSpec::new(s.clone()).run_serial().is_err());
        assert!(SweepSpec::new(s.clone())
            .setpoint(900.0)
            .run_serial()
            .is_err());
        assert!(SweepSpec::new(s)
            .setpoint(900.0)
            .controller(ControllerSpec::CapGpu)
            .periods(0)
            .run_serial()
            .is_err());
    }

    #[test]
    fn parallel_matches_serial_for_all_thread_counts() {
        let spec = small_spec();
        let serial = spec.run_serial().expect("serial sweep");
        assert_eq!(serial.len(), 4);
        for threads in [1, 2, 4, 8] {
            let parallel = spec.run_with_threads(threads).expect("parallel sweep");
            assert_eq!(
                serial, parallel,
                "parallel report at {threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn fault_family_bit_identical_across_thread_counts() {
        // Fault storms stress the supervisor's failover path; the sweep
        // must still be a pure function of the spec regardless of how
        // cells are scheduled across threads.
        let spec = SweepSpec::fault_family(42, &[1.0])
            .expect("fault family")
            .setpoint(1000.0)
            .periods(12)
            .controller(ControllerSpec::CapGpu);
        let serial = spec.run_serial().expect("serial sweep");
        assert_eq!(serial.len(), 2);
        for threads in [2, 4, 8] {
            let parallel = spec.run_with_threads(threads).expect("parallel sweep");
            assert_eq!(
                serial, parallel,
                "fault-family report at {threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn llm_family_bit_identical_across_thread_counts() {
        // The LLM plant (continuous batcher, KV accounting, phase-mix
        // signal) lives per-cell; the sweep must remain a pure function
        // of the spec regardless of scheduling.
        let spec = SweepSpec::llm_family(42, &[1.0])
            .expect("llm family")
            .setpoint(1000.0)
            .periods(12)
            .controller(ControllerSpec::CapGpu)
            .controller(ControllerSpec::CapGpuPhaseBlind);
        let serial = spec.run_serial().expect("serial sweep");
        assert_eq!(serial.len(), 2);
        for threads in [2, 4, 8] {
            let parallel = spec.run_with_threads(threads).expect("parallel sweep");
            assert_eq!(
                serial, parallel,
                "llm-family report at {threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn shared_identification_matches_bin_style_run() {
        // A cell must reproduce exactly what the hand-rolled pattern in
        // the figure bins produces: fresh runner, lazy identification
        // inside the builder, then run.
        let report = SweepSpec::new(Scenario::paper_testbed(7))
            .setpoint(950.0)
            .periods(5)
            .controller(ControllerSpec::CapGpu)
            .run_serial()
            .expect("sweep");
        let mut runner = ExperimentRunner::new(Scenario::paper_testbed(7), 950.0).expect("runner");
        let controller = runner.build_capgpu_controller().expect("controller");
        let trace = runner.run(controller, 5).expect("run");
        assert_eq!(report.cells[0].trace(), &trace);
    }

    #[test]
    fn fixed_step_cells_skip_identification() {
        // Fixed-step never identifies in the bins; the engine must hand
        // it a testbed that has not been advanced through excitation.
        let report = SweepSpec::new(Scenario::paper_testbed(7))
            .setpoint(900.0)
            .periods(4)
            .controller(ControllerSpec::FixedStep { multiplier: 1 })
            .controller(ControllerSpec::CapGpu)
            .run_serial()
            .expect("sweep");
        let mut runner = ExperimentRunner::new(Scenario::paper_testbed(7), 900.0).expect("runner");
        let controller = runner.build_fixed_step(1);
        let trace = runner.run(controller, 4).expect("run");
        assert_eq!(report.cells[0].trace(), &trace);
    }

    #[test]
    fn fixed_frequency_cells_produce_dwell_stats() {
        let report = SweepSpec::new(Scenario::motivation_testbed(42))
            .setpoint(0.0)
            .controller(ControllerSpec::FixedFrequencies {
                label: "midpoint".into(),
                freqs: vec![1600.0, 660.0],
                seconds: 20,
                warmup_seconds: 5,
            })
            .run_serial()
            .expect("sweep");
        let mut runner =
            ExperimentRunner::new(Scenario::motivation_testbed(42), 0.0).expect("runner");
        let stats = runner.run_fixed(&[1600.0, 660.0], 20, 5).expect("dwell");
        assert_eq!(report.cells[0].fixed(), &stats);
        assert!(report.cells[0].output.as_trace().is_none());
    }

    #[test]
    fn seed_axis_overrides_scenario_seed() {
        let spec = SweepSpec::new(Scenario::paper_testbed(7))
            .seed(21)
            .seed(22)
            .setpoint(900.0)
            .periods(3)
            .controller(ControllerSpec::FixedStep { multiplier: 1 });
        let report = spec.run_serial().expect("sweep");
        assert_eq!(report.len(), 2);
        assert_eq!(report.cells[0].cell.seed, 21);
        assert_eq!(report.cells[1].cell.seed, 22);
        // Different seeds → different traces.
        assert_ne!(
            report.get(0, 0, 0, 0).trace().power_series(),
            report.get(0, 1, 0, 0).trace().power_series()
        );
    }

    #[test]
    fn telemetry_sweep_is_bit_identical_across_thread_counts() {
        use capgpu_telemetry::TelemetryConfig;

        // Deterministic telemetry participates in the report's PartialEq,
        // so bit-identity across schedules covers the snapshots too.
        let spec = SweepSpec::new(
            Scenario::paper_testbed(7).with_telemetry(TelemetryConfig::deterministic()),
        )
        .setpoints(&[900.0, 1000.0])
        .periods(5)
        .controller(ControllerSpec::CapGpu)
        .controller(ControllerSpec::FixedStep { multiplier: 2 });
        let serial = spec.run_serial().expect("serial sweep");
        assert!(serial.cells.iter().all(|c| c.telemetry.is_some()));
        let merged_serial = serial
            .merged_telemetry()
            .expect("merge")
            .expect("snapshots present");
        assert_eq!(
            merged_serial.counter_value("capgpu_periods_total", &[]),
            Some(4 * 5),
            "4 cells × 5 periods each"
        );
        for threads in [2, 4, 8] {
            let parallel = spec.run_with_threads(threads).expect("parallel sweep");
            assert_eq!(
                serial, parallel,
                "telemetry sweep at {threads} threads diverged from serial"
            );
            let merged = parallel
                .merged_telemetry()
                .expect("merge")
                .expect("snapshots present");
            assert_eq!(
                merged.to_prometheus_text(),
                merged_serial.to_prometheus_text(),
                "merged telemetry at {threads} threads diverged"
            );
        }

        // Without telemetry the cells carry no snapshots and the merge
        // folds to None.
        let off = small_spec().run_serial().expect("sweep");
        assert!(off.cells.iter().all(|c| c.telemetry.is_none()));
        assert!(off.merged_telemetry().expect("merge").is_none());
    }

    #[test]
    fn report_indexing_matches_expansion_order() {
        let spec = small_spec();
        let report = spec.run_serial().expect("sweep");
        for (i, cell) in spec.expand().iter().enumerate() {
            let got = report.get(
                cell.scenario_index,
                cell.seed_index,
                cell.setpoint_index,
                cell.controller_index,
            );
            assert_eq!(&got.cell, cell);
            assert_eq!(got, &report.cells[i]);
        }
        assert_eq!(report.traces().count(), 4);
    }

    #[test]
    fn streaming_summary_is_bit_identical_to_full_trace_summary() {
        // The streamed fold must reproduce, bit for bit, what summarizing
        // the fully-retained report produces — and be schedule-invariant.
        let spec = small_spec();
        let full = spec
            .summarize_report(&spec.run_serial().expect("full sweep"))
            .expect("summarize");
        let streamed = spec.streaming_serial().expect("streaming serial");
        assert_eq!(full, streamed);
        assert_eq!(streamed.cells, 4);
        for threads in [1, 2, 4, 8] {
            let parallel = spec
                .streaming_with_threads(threads)
                .expect("streaming parallel");
            assert_eq!(
                streamed, parallel,
                "streamed summary at {threads} threads diverged from serial"
            );
        }
        // Group accessors line up with the grid axes.
        let g = streamed.get(0, 0);
        assert_eq!(g.controller_label, "CapGPU");
        assert_eq!(g.cells, 2, "two setpoints fold into each group");
        assert!(g.mean_power() > 0.0);
    }

    #[test]
    fn streaming_memory_stays_within_reorder_window() {
        // 250 seeds × 10 setpoints × 2 controllers = 5000 cells. In
        // streaming mode the retained state is O(groups + window), not
        // O(cells): with 4 threads at most 2·4 + 16 = 24 summaries may
        // ever be parked out of order.
        let mut spec = SweepSpec::new(Scenario::paper_testbed(1))
            .setpoints(&[
                880.0, 900.0, 920.0, 940.0, 960.0, 980.0, 1000.0, 1020.0, 1040.0, 1060.0,
            ])
            .periods(1)
            .controller(ControllerSpec::FixedStep { multiplier: 1 })
            .controller(ControllerSpec::FixedStep { multiplier: 2 });
        for seed in 0..250 {
            spec = spec.seed(seed);
        }
        assert_eq!(spec.num_cells(), 5000);
        let streamed = spec.streaming_with_threads(4).expect("streaming sweep");
        assert_eq!(streamed.cells, 5000);
        assert!(
            streamed.peak_pending <= 2 * 4 + 16,
            "reorder buffer grew past the window: {}",
            streamed.peak_pending
        );
        assert_eq!(streamed.groups.len(), 2, "one accumulator per group");
        assert_eq!(streamed.get(0, 0).cells, 2500);
        // And the parked-summary shortcut changes nothing.
        assert_eq!(streamed, spec.streaming_serial().expect("serial"));
    }

    #[test]
    fn reorder_window_is_configurable_and_result_invariant() {
        // The knob only changes *scheduling admission*, never the folded
        // result: a window of 1 (pure in-order) and a huge window both
        // reproduce the default bit-for-bit, and peak_pending respects
        // the configured bound.
        let spec = small_spec();
        let reference = spec.streaming_serial().expect("serial");
        assert_eq!(spec.effective_reorder_window(4), 2 * 4 + 16);
        assert_eq!(
            spec.clone().reorder_window(0).effective_reorder_window(4),
            1
        );
        for window in [1usize, 3, 64] {
            let tight = spec.clone().reorder_window(window);
            assert_eq!(tight.effective_reorder_window(8), window.max(1));
            let streamed = tight.streaming_with_threads(4).expect("streaming");
            assert_eq!(
                streamed, reference,
                "window {window} changed the folded result"
            );
            assert!(
                streamed.peak_pending <= window.max(1),
                "window {window}: peak_pending {}",
                streamed.peak_pending
            );
        }
    }

    #[test]
    fn streaming_telemetry_merge_matches_full_report_merge() {
        use capgpu_telemetry::TelemetryConfig;

        let spec = SweepSpec::new(
            Scenario::paper_testbed(7).with_telemetry(TelemetryConfig::deterministic()),
        )
        .setpoints(&[900.0, 1000.0])
        .periods(5)
        .controller(ControllerSpec::CapGpu)
        .controller(ControllerSpec::FixedStep { multiplier: 2 });
        let merged_full = spec
            .run_serial()
            .expect("full sweep")
            .merged_telemetry()
            .expect("merge")
            .expect("snapshots present");
        let streamed = spec.streaming().expect("streaming sweep");
        let merged_stream = streamed.telemetry.as_ref().expect("streamed snapshots");
        assert_eq!(
            merged_stream.to_prometheus_text(),
            merged_full.to_prometheus_text(),
            "streamed telemetry merge diverged from full-report merge"
        );
    }

    #[test]
    fn fast_capgpu_cell_tracks_like_the_generic_controller() {
        // The fast-solver controller rides through the sweep engine like
        // any other spec; its closed-loop tracking quality must match the
        // generic CapGPU controller on the same scenario.
        let streamed = SweepSpec::new(Scenario::paper_testbed(7))
            .setpoint(1000.0)
            .periods(40)
            .controller(ControllerSpec::CapGpu)
            .controller(ControllerSpec::CapGpuFast)
            .streaming_serial()
            .expect("sweep");
        let generic = streamed.get(0, 0);
        let fast = streamed.get(0, 1);
        assert_eq!(fast.controller_label, "CapGPU (fast)");
        assert!(
            (fast.mean_power() - generic.mean_power()).abs() < 5.0,
            "fast {} vs generic {} mean power",
            fast.mean_power(),
            generic.mean_power()
        );
        assert!(
            fast.mean_tracking_error() < generic.mean_tracking_error() * 1.5 + 1.0,
            "fast tracking error {} vs generic {}",
            fast.mean_tracking_error(),
            generic.mean_tracking_error()
        );
    }
}
