//! Rack-level budget coordination across CapGPU servers.
//!
//! The paper caps one server; its related work (SHIP \[29\], Dynamo \[34\])
//! caps racks and whole data centers by *dividing* a shared budget among
//! servers. This module closes that gap with a demand-driven coordinator:
//! each member server runs its own CapGPU loop against a per-server set
//! point, and every `rebalance_every` control periods the coordinator
//! re-divides the rack budget by **max–min water-filling** over estimated
//! demands — servers that sit pinned at their cap are presumed hungry and
//! probe upward; servers drawing below their cap release the slack.
//!
//! The rack invariant — Σ per-server set points ≤ rack budget — holds by
//! construction, so the rack never exceeds its breaker rating even while
//! shares move (the property Dynamo calls "safe capping").

use crate::config::Scenario;
use crate::controllers::CapGpuController;
use crate::runner::{ExperimentRunner, RunTrace};
use crate::{CapGpuError, Result};

/// Rack coordinator configuration.
#[derive(Debug, Clone)]
pub struct RackConfig {
    /// Total rack power budget (W).
    pub budget_watts: f64,
    /// Control periods between budget rebalances.
    pub rebalance_every: usize,
    /// Hard per-server minimum share (W) — keeps every member alive.
    pub min_share_watts: f64,
}

/// Per-epoch snapshot of one member.
#[derive(Debug, Clone)]
pub struct MemberEpoch {
    /// Set point assigned for the epoch (W).
    pub assigned: f64,
    /// Steady-state measured power over the epoch (W).
    pub measured: f64,
    /// Demand estimate used for the *next* allocation (W).
    pub demand: f64,
}

/// Full rack trace: one entry per epoch per member.
#[derive(Debug, Clone, Default)]
pub struct RackTrace {
    /// `epochs[e][m]` = member `m`'s snapshot in epoch `e`.
    pub epochs: Vec<Vec<MemberEpoch>>,
    /// Per-member concatenated server traces.
    pub member_traces: Vec<Vec<RunTrace>>,
}

impl RackTrace {
    /// Total assigned budget in an epoch (must be ≤ rack budget).
    pub fn total_assigned(&self, epoch: usize) -> f64 {
        self.epochs[epoch].iter().map(|m| m.assigned).sum()
    }

    /// Total measured rack power in an epoch.
    pub fn total_measured(&self, epoch: usize) -> f64 {
        self.epochs[epoch].iter().map(|m| m.measured).sum()
    }
}

/// Max–min water-filling: allocates `budget` across `demands` such that no
/// member gets more than its demand (beyond the guaranteed floor) and the
/// leftover is shared max–min fairly. Any budget left after all demands
/// are satisfied is spread evenly (servers can always burn headroom).
///
/// Returns allocations with `Σ alloc == min(budget, …)` exactly
/// (conservation) and `alloc[i] ≥ floor` whenever `budget ≥ n·floor`.
pub fn water_fill(demands: &[f64], budget: f64, floor: f64) -> Vec<f64> {
    let n = demands.len();
    if n == 0 {
        return vec![];
    }
    let floor = floor.max(0.0);
    let mut alloc = vec![floor.min(budget / n as f64); n];
    let mut remaining = budget - alloc.iter().sum::<f64>();
    // Iteratively satisfy the smallest unmet demand (classic water-fill).
    let mut unmet: Vec<usize> = (0..n).filter(|&i| demands[i] > alloc[i]).collect();
    while remaining > 1e-9 && !unmet.is_empty() {
        let share = remaining / unmet.len() as f64;
        let mut consumed = 0.0;
        let mut still_unmet = Vec::with_capacity(unmet.len());
        for &i in &unmet {
            let want = demands[i] - alloc[i];
            let take = want.min(share);
            alloc[i] += take;
            consumed += take;
            if demands[i] > alloc[i] + 1e-12 {
                still_unmet.push(i);
            }
        }
        remaining -= consumed;
        if consumed <= 1e-12 {
            break;
        }
        unmet = still_unmet;
    }
    // Spread any surplus evenly.
    if remaining > 1e-9 {
        let share = remaining / n as f64;
        for a in alloc.iter_mut() {
            *a += share;
        }
    }
    alloc
}

/// One member: a server runner plus its CapGPU controller and demand
/// estimate.
struct Member {
    runner: ExperimentRunner,
    controller: CapGpuController,
    demand: f64,
    max_watts: f64,
    min_watts: f64,
}

/// The rack coordinator.
pub struct Rack {
    members: Vec<Member>,
    config: RackConfig,
}

impl Rack {
    /// Builds a rack from member scenarios: each member is identified and
    /// gets a CapGPU controller; initial demands are the servers' model
    /// maxima (everyone starts hungry).
    ///
    /// # Errors
    /// Propagates scenario/identification/controller errors; rejects an
    /// empty rack or a budget below the summed minimum shares.
    pub fn new(scenarios: Vec<Scenario>, config: RackConfig) -> Result<Self> {
        if scenarios.is_empty() {
            return Err(CapGpuError::BadConfig("rack needs >= 1 server".into()));
        }
        if config.budget_watts < config.min_share_watts * scenarios.len() as f64 {
            return Err(CapGpuError::BadConfig(
                "rack budget below summed minimum shares".into(),
            ));
        }
        if config.rebalance_every == 0 {
            return Err(CapGpuError::BadConfig(
                "rebalance_every must be >= 1".into(),
            ));
        }
        let equal = config.budget_watts / scenarios.len() as f64;
        let mut members = Vec::with_capacity(scenarios.len());
        for scenario in scenarios {
            let mut runner = ExperimentRunner::new(scenario, equal)?;
            let model = runner.identified_model()?;
            let (lo, hi) = model.achievable_range(&runner.layout().f_min, &runner.layout().f_max);
            let controller = runner.build_capgpu_controller()?;
            members.push(Member {
                runner,
                controller,
                demand: hi,
                max_watts: hi,
                min_watts: lo,
            });
        }
        Ok(Rack { members, config })
    }

    /// Number of member servers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the rack has no members (cannot happen by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs `epochs` rebalance epochs, each `rebalance_every` control
    /// periods long.
    ///
    /// # Errors
    /// Propagates member run errors.
    pub fn run(&mut self, epochs: usize) -> Result<RackTrace> {
        let mut trace = RackTrace {
            epochs: Vec::with_capacity(epochs),
            member_traces: vec![Vec::new(); self.members.len()],
        };
        for _ in 0..epochs {
            // 1. Allocate the budget over current demand estimates.
            let demands: Vec<f64> = self.members.iter().map(|m| m.demand).collect();
            let alloc = water_fill(
                &demands,
                self.config.budget_watts,
                self.config.min_share_watts,
            );

            // 2. Run every member one epoch at its assigned set point.
            let mut epoch_snap = Vec::with_capacity(self.members.len());
            for (mi, member) in self.members.iter_mut().enumerate() {
                member.runner.set_setpoint(alloc[mi]);
                let run = member
                    .runner
                    .run(&mut member.controller, self.config.rebalance_every)?;
                let (measured, _) = run.steady_state_power(0.6);

                // 3. Demand update: pinned at the cap → hungry, probe up;
                //    below the cap → satisfied, release slack.
                let noise_band = 8.0;
                member.demand = if measured >= alloc[mi] - noise_band {
                    (alloc[mi] * 1.15).min(member.max_watts)
                } else {
                    (measured + 15.0).clamp(member.min_watts, member.max_watts)
                };
                epoch_snap.push(MemberEpoch {
                    assigned: alloc[mi],
                    measured,
                    demand: member.demand,
                });
                trace.member_traces[mi].push(run);
            }
            trace.epochs.push(epoch_snap);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_workload::models;

    #[test]
    fn water_fill_conserves_budget() {
        let alloc = water_fill(&[500.0, 800.0, 1200.0], 2000.0, 100.0);
        assert!((alloc.iter().sum::<f64>() - 2000.0).abs() < 1e-9);
        // Nobody exceeds demand while others are unmet.
        assert!(alloc[0] <= 500.0 + 1e-9 || alloc.iter().all(|&a| a >= 500.0));
    }

    #[test]
    fn water_fill_satisfies_small_demands_first() {
        let alloc = water_fill(&[300.0, 900.0], 1000.0, 0.0);
        assert!((alloc[0] - 300.0).abs() < 1e-9);
        assert!((alloc[1] - 700.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_spreads_surplus() {
        let alloc = water_fill(&[300.0, 300.0], 1000.0, 0.0);
        assert!((alloc[0] - 500.0).abs() < 1e-9);
        assert!((alloc[1] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_respects_floor() {
        let alloc = water_fill(&[0.0, 1000.0], 900.0, 200.0);
        assert!(alloc[0] >= 200.0 - 1e-9);
        assert!((alloc.iter().sum::<f64>() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_edge_cases() {
        assert!(water_fill(&[], 100.0, 0.0).is_empty());
        let single = water_fill(&[50.0], 100.0, 0.0);
        assert!((single[0] - 100.0).abs() < 1e-9); // surplus spread to the one member
    }

    #[test]
    fn rack_validation() {
        assert!(Rack::new(
            vec![],
            RackConfig {
                budget_watts: 1000.0,
                rebalance_every: 5,
                min_share_watts: 100.0,
            }
        )
        .is_err());
        assert!(Rack::new(
            vec![Scenario::paper_testbed(1), Scenario::paper_testbed(2)],
            RackConfig {
                budget_watts: 100.0,
                rebalance_every: 5,
                min_share_watts: 400.0,
            }
        )
        .is_err());
    }

    /// A rack of two servers — one heavy (3 V100 busy), one light (its
    /// GPUs mostly idle because its pipelines run a light model) — under a
    /// shared budget below the sum of their maxima. The coordinator must
    /// (a) never assign more than the budget, (b) shift watts toward the
    /// heavy server over time.
    #[test]
    fn rack_shifts_budget_toward_demand() {
        let heavy = Scenario::paper_testbed(51);
        let mut light = Scenario::paper_testbed(52);
        // The light server's tasks idle their GPUs: tiny batch latency ⇒
        // low utilization ⇒ low power demand.
        for m in &mut light.gpu_models {
            *m = models::resnet50();
            m.e_min_s = 0.005;
        }
        let mut rack = Rack::new(
            vec![heavy, light],
            RackConfig {
                budget_watts: 1900.0,
                rebalance_every: 8,
                min_share_watts: 700.0,
            },
        )
        .unwrap();
        let trace = rack.run(6).unwrap();

        for e in 0..trace.epochs.len() {
            assert!(
                trace.total_assigned(e) <= 1900.0 + 1e-6,
                "epoch {e} over-assigned: {}",
                trace.total_assigned(e)
            );
        }
        let last = trace.epochs.last().unwrap();
        assert!(
            last[0].assigned > last[1].assigned + 50.0,
            "heavy server should hold the bigger share: {last:?}"
        );
        // The heavy member tracks its assigned cap.
        assert!(
            (last[0].measured - last[0].assigned).abs() < 20.0,
            "heavy member off its cap: {last:?}"
        );
    }
}
