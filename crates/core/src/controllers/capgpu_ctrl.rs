//! The CapGPU controller: MIMO MPC + throughput-driven weight assignment.

use capgpu_control::model::LinearPowerModel;
use capgpu_control::mpc::{MpcConfig, MpcController};

use crate::weights::WeightAssigner;
use crate::Result;

use super::{ControlDiagnostics, ControlInput, DeviceLayout, PowerController};

/// The paper's controller (§4): a condensed MIMO model-predictive power
/// controller over all devices, with per-device control-penalty weights
/// derived from normalized throughput and per-GPU SLO frequency floors
/// passed through as hard constraints.
#[derive(Debug)]
pub struct CapGpuController {
    mpc: MpcController,
    weights: WeightAssigner,
    name: String,
    /// Diagnostics of the most recent solve (telemetry).
    last_diag: Option<ControlDiagnostics>,
}

impl CapGpuController {
    /// Builds the controller from a device layout and an identified power
    /// model, using the paper's MPC configuration (P = 8, M = 2).
    ///
    /// # Errors
    /// Propagates MPC construction errors (device-count mismatch etc.).
    pub fn new(
        layout: &DeviceLayout,
        model: LinearPowerModel,
        weights: WeightAssigner,
    ) -> Result<Self> {
        let config = MpcConfig::paper_defaults(layout.f_min.clone(), layout.f_max.clone());
        let mpc = MpcController::new(config, model)?;
        Ok(CapGpuController {
            mpc,
            weights,
            name: "CapGPU".to_string(),
            last_diag: None,
        })
    }

    /// Builds with a custom MPC configuration (horizon ablations).
    ///
    /// # Errors
    /// Propagates MPC construction errors.
    pub fn with_config(
        config: MpcConfig,
        model: LinearPowerModel,
        weights: WeightAssigner,
        name: impl Into<String>,
    ) -> Result<Self> {
        Ok(CapGpuController {
            mpc: MpcController::new(config, model)?,
            weights,
            name: name.into(),
            last_diag: None,
        })
    }

    /// Replaces the power model (online re-identification).
    ///
    /// # Errors
    /// Propagates device-count mismatches.
    pub fn set_model(&mut self, model: LinearPowerModel) -> Result<()> {
        self.mpc.set_model(model)?;
        Ok(())
    }

    /// Access to the inner MPC (stability analysis, ablations).
    pub fn mpc(&self) -> &MpcController {
        &self.mpc
    }
}

impl PowerController for CapGpuController {
    fn name(&self) -> &str {
        &self.name
    }

    fn uses_delta_sigma(&self) -> bool {
        true
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        let r_weights = self
            .weights
            .control_penalties_with_phase(input.normalized_throughput, input.phase_mix);
        let step = self.mpc.step(
            input.measured_power,
            input.setpoint,
            input.current_targets,
            &r_weights,
            input.floors,
        )?;
        self.last_diag = Some(ControlDiagnostics {
            solver_iterations: step.qp_iterations,
            active_constraints: step.active_constraints,
            slo_floor_binding: step.slo_floor_binding,
            floor_clamped: step.floor_clamped,
            predicted_power: step.predicted_power,
        });
        Ok(step.target_freqs)
    }

    fn set_power_model(&mut self, model: &LinearPowerModel) -> Result<()> {
        self.set_model(model.clone())
    }

    fn diagnostics(&self) -> Option<ControlDiagnostics> {
        self.last_diag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_sim::DeviceKind;

    fn layout() -> DeviceLayout {
        DeviceLayout::new(
            vec![DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Gpu],
            vec![1000.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0],
        )
        .unwrap()
    }

    fn model() -> LinearPowerModel {
        LinearPowerModel::new(vec![0.05, 0.15, 0.15], 300.0).unwrap()
    }

    fn input<'a>(
        p: f64,
        sp: f64,
        targets: &'a [f64],
        thr: &'a [f64],
        power: &'a [f64],
        floors: &'a [f64],
    ) -> ControlInput<'a> {
        ControlInput {
            measured_power: p,
            setpoint: sp,
            current_targets: targets,
            normalized_throughput: thr,
            device_power: power,
            floors,
            phase_mix: None,
        }
    }

    #[test]
    fn closes_the_loop_to_setpoint() {
        let mut c = CapGpuController::new(&layout(), model(), WeightAssigner::default()).unwrap();
        assert_eq!(c.name(), "CapGPU");
        let plant = model();
        let mut f = vec![1000.0, 435.0, 435.0];
        let mut p = plant.predict(&f);
        for _ in 0..30 {
            let inp = input(
                p,
                550.0,
                &f,
                &[0.8, 1.0, 0.6],
                &[0.0; 3],
                &[1000.0, 435.0, 435.0],
            );
            f = c.control(&inp).unwrap();
            p = plant.predict(&f);
        }
        assert!((p - 550.0).abs() < 5.0, "p = {p}");
    }

    #[test]
    fn busier_gpu_ends_up_faster() {
        let mut c = CapGpuController::new(&layout(), model(), WeightAssigner::default()).unwrap();
        let plant = model();
        let mut f = vec![1000.0, 800.0, 800.0];
        let mut p = plant.predict(&f);
        for _ in 0..30 {
            // GPU 1 (index 1) at full throughput, GPU 2 (index 2) at 30%.
            let inp = input(
                p,
                560.0,
                &f,
                &[0.5, 1.0, 0.3],
                &[0.0; 3],
                &[1000.0, 435.0, 435.0],
            );
            f = c.control(&inp).unwrap();
            p = plant.predict(&f);
        }
        assert!(f[1] > f[2] + 50.0, "busy GPU should run faster: {f:?}");
    }

    #[test]
    fn slo_floor_respected() {
        let mut c = CapGpuController::new(&layout(), model(), WeightAssigner::default()).unwrap();
        let f = vec![1400.0, 600.0, 600.0];
        let inp = input(
            500.0,
            500.0,
            &f,
            &[1.0, 1.0, 1.0],
            &[0.0; 3],
            &[1000.0, 1000.0, 435.0],
        );
        let out = c.control(&inp).unwrap();
        assert!(out[1] >= 1000.0 - 1e-6, "{out:?}");
    }

    #[test]
    fn phase_mix_keeps_decode_bound_gpu_faster() {
        use crate::weights::PhaseMix;
        // Same normalized throughput on both GPUs; GPU 1 is
        // prefill-heavy (cap-elastic), GPU 2 decode-bound. The
        // phase-aware controller must shed the cap on GPU 1.
        let mix = [
            PhaseMix::neutral(), // CPU
            PhaseMix {
                prefill_share: 0.9,
                kv_occupancy: 0.1,
                tokens_per_s: 5000.0,
            },
            PhaseMix {
                prefill_share: 0.1,
                kv_occupancy: 0.7,
                tokens_per_s: 1500.0,
            },
        ];
        let run = |phase_aware: bool| {
            let weights = if phase_aware {
                WeightAssigner::default()
            } else {
                WeightAssigner::phase_blind()
            };
            let mut c = CapGpuController::new(&layout(), model(), weights).unwrap();
            let plant = model();
            let mut f = vec![1000.0, 800.0, 800.0];
            let mut p = plant.predict(&f);
            for _ in 0..30 {
                let inp = ControlInput {
                    measured_power: p,
                    setpoint: 560.0,
                    current_targets: &f,
                    normalized_throughput: &[0.5, 0.6, 0.6],
                    device_power: &[0.0; 3],
                    floors: &[1000.0, 435.0, 435.0],
                    phase_mix: Some(&mix),
                };
                f = c.control(&inp).unwrap();
                p = plant.predict(&f);
            }
            (f, p)
        };
        let (aware, p_aware) = run(true);
        let (blind, p_blind) = run(false);
        // Both settle at the cap...
        assert!((p_aware - 560.0).abs() < 5.0 && (p_blind - 560.0).abs() < 5.0);
        // ...but only the phase-aware one keeps the decode GPU faster.
        assert!(
            aware[2] > aware[1] + 50.0,
            "decode GPU should run faster: {aware:?}"
        );
        assert!(
            aware[2] > blind[2] + 25.0,
            "phase-aware {aware:?} vs blind {blind:?}"
        );
    }

    #[test]
    fn model_swap() {
        let mut c = CapGpuController::new(&layout(), model(), WeightAssigner::default()).unwrap();
        let new_model = LinearPowerModel::new(vec![0.06, 0.2, 0.2], 280.0).unwrap();
        c.set_model(new_model).unwrap();
        let bad = LinearPowerModel::new(vec![0.06], 280.0).unwrap();
        assert!(c.set_model(bad).is_err());
    }
}
