//! Power controllers: CapGPU and all four baselines of §6.1.
//!
//! Every controller implements [`PowerController`]: once per control
//! period it receives the measured average power, the set point, the
//! current frequency targets and the monitoring data, and returns new
//! (possibly fractional) per-device frequency targets. The experiment
//! runner realizes fractional targets with per-device delta-sigma
//! modulators.

mod capgpu_ctrl;
mod cpu_gpu_split;
mod cpu_only;
pub mod fixed_step;
mod gpu_only;

pub use capgpu_ctrl::CapGpuController;
pub use cpu_gpu_split::CpuGpuSplitController;
pub use cpu_only::CpuOnlyController;
pub use fixed_step::{FixedStepController, SafeFixedStepController};
pub use gpu_only::GpuOnlyController;

use capgpu_control::model::LinearPowerModel;
use capgpu_sim::DeviceKind;

use crate::{CapGpuError, Result};

/// Static description of the actuated devices, shared by all controllers.
#[derive(Debug, Clone)]
pub struct DeviceLayout {
    /// Device kinds in index order (CPUs and GPUs).
    pub kinds: Vec<DeviceKind>,
    /// Per-device minimum frequency (MHz).
    pub f_min: Vec<f64>,
    /// Per-device maximum frequency (MHz).
    pub f_max: Vec<f64>,
}

impl DeviceLayout {
    /// Validates and returns the layout.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on inconsistent lengths or bounds.
    pub fn new(kinds: Vec<DeviceKind>, f_min: Vec<f64>, f_max: Vec<f64>) -> Result<Self> {
        let n = kinds.len();
        if n == 0 {
            return Err(CapGpuError::BadConfig("layout needs >= 1 device".into()));
        }
        if f_min.len() != n || f_max.len() != n {
            return Err(CapGpuError::BadConfig("layout length mismatch".into()));
        }
        if f_min.iter().zip(f_max.iter()).any(|(lo, hi)| lo >= hi) {
            return Err(CapGpuError::BadConfig("layout needs f_min < f_max".into()));
        }
        Ok(DeviceLayout {
            kinds,
            f_min,
            f_max,
        })
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Indices of CPU devices.
    pub fn cpu_indices(&self) -> Vec<usize> {
        self.indices_of(DeviceKind::Cpu)
    }

    /// Indices of GPU devices.
    pub fn gpu_indices(&self) -> Vec<usize> {
        self.indices_of(DeviceKind::Gpu)
    }

    fn indices_of(&self, kind: DeviceKind) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == kind)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Everything a controller may observe at the end of a control period.
#[derive(Debug, Clone)]
pub struct ControlInput<'a> {
    /// Average server power over the elapsed control period (W).
    pub measured_power: f64,
    /// Desired power set point `P_s` (W).
    pub setpoint: f64,
    /// The fractional frequency targets currently in force (MHz).
    pub current_targets: &'a [f64],
    /// Normalized per-device throughput from the monitors (∈ [0, 1]).
    pub normalized_throughput: &'a [f64],
    /// Per-device power readings (W) à la RAPL / `nvidia-smi` — only the
    /// split-budget baseline uses these; CapGPU needs only total power.
    pub device_power: &'a [f64],
    /// SLO-derived per-device frequency floors (MHz; equals `f_min` when
    /// no SLO applies).
    pub floors: &'a [f64],
    /// Per-device serving-phase mix from the LLM layer, device-indexed
    /// (`None` outside LLM serving — pipeline and one-shot plants). Only
    /// phase-aware CapGPU consumes it; every other controller ignores it.
    pub phase_mix: Option<&'a [crate::weights::PhaseMix]>,
}

/// Per-period solver diagnostics a controller may expose for telemetry
/// (all deterministic — derived from the solve, not wall clocks).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControlDiagnostics {
    /// Iterations the period's optimization took (0 for closed-form
    /// controllers).
    pub solver_iterations: usize,
    /// Constraint rows active at the optimum.
    pub active_constraints: usize,
    /// Whether an SLO-raised frequency floor — the paper's (10b) latency
    /// bound — was binding this period.
    pub slo_floor_binding: bool,
    /// Whether an SLO floor had to be clamped to the device range
    /// (best-effort infeasibility).
    pub floor_clamped: bool,
    /// Power the model predicts after the commanded move (W).
    pub predicted_power: f64,
}

/// A power-capping controller, invoked once per control period.
pub trait PowerController {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Computes the next per-device fractional frequency targets.
    ///
    /// # Errors
    /// Implementation-specific; the runner aborts the run on error.
    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>>;

    /// Resets internal state (e.g. on a set-point step). Default: no-op.
    fn reset(&mut self) {}

    /// Whether the runner should realize this controller's fractional
    /// targets with delta-sigma modulation. Per the paper (§6.2) only
    /// CapGPU uses the modulator; the baselines' targets are simply
    /// rounded to the nearest supported clock.
    fn uses_delta_sigma(&self) -> bool {
        false
    }

    /// Accepts a re-identified power model (§6.4 online adaptation / the
    /// runner's continuous RLS tracking). Controllers that carry no model
    /// ignore the refresh — the default is a no-op — so the runner can
    /// push refits through `impl PowerController` generically.
    ///
    /// # Errors
    /// Implementation-specific (e.g. device-count mismatch).
    fn set_power_model(&mut self, _model: &LinearPowerModel) -> Result<()> {
        Ok(())
    }

    /// Diagnostics of the most recent [`control`](Self::control) call,
    /// for telemetry. `None` (the default) for controllers that expose
    /// none; the runner records whatever is offered.
    fn diagnostics(&self) -> Option<ControlDiagnostics> {
        None
    }
}

impl<T: PowerController + ?Sized> PowerController for &mut T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        (**self).control(input)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn uses_delta_sigma(&self) -> bool {
        (**self).uses_delta_sigma()
    }

    fn set_power_model(&mut self, model: &LinearPowerModel) -> Result<()> {
        (**self).set_power_model(model)
    }

    fn diagnostics(&self) -> Option<ControlDiagnostics> {
        (**self).diagnostics()
    }
}

impl PowerController for Box<dyn PowerController> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        self.as_mut().control(input)
    }

    fn reset(&mut self) {
        self.as_mut().reset();
    }

    fn uses_delta_sigma(&self) -> bool {
        self.as_ref().uses_delta_sigma()
    }

    fn set_power_model(&mut self, model: &LinearPowerModel) -> Result<()> {
        self.as_mut().set_power_model(model)
    }

    fn diagnostics(&self) -> Option<ControlDiagnostics> {
        self.as_ref().diagnostics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_indices() {
        let l = DeviceLayout::new(
            vec![DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Gpu],
            vec![1000.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0],
        )
        .unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.cpu_indices(), vec![0]);
        assert_eq!(l.gpu_indices(), vec![1, 2]);
    }

    #[test]
    fn layout_validation() {
        assert!(DeviceLayout::new(vec![], vec![], vec![]).is_err());
        assert!(DeviceLayout::new(vec![DeviceKind::Cpu], vec![1000.0, 2.0], vec![2400.0]).is_err());
        assert!(DeviceLayout::new(vec![DeviceKind::Cpu], vec![2400.0], vec![1000.0]).is_err());
    }
}
