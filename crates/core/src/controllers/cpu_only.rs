//! CPU-Only baseline (§6.1 baseline 3, after IBM server-level control).
//!
//! "CPU-Only retains the proportional control logic of GPU-Only but
//! actuates only the CPU DVFS knobs … The CPU-Only applies a single
//! frequency to all the CPU cores of the server." GPUs are left at their
//! maximum clock (the workload wants them fast; this controller simply
//! has no GPU authority — which is exactly why it cannot cap a GPU server,
//! Fig. 3).

use capgpu_control::pid::ProportionalController;

use crate::{CapGpuError, Result};

use super::{ControlInput, DeviceLayout, PowerController};

/// The CPU-Only proportional controller.
#[derive(Debug)]
pub struct CpuOnlyController {
    layout: DeviceLayout,
    cpu_indices: Vec<usize>,
    pid: ProportionalController,
    shared_clock: f64,
}

impl CpuOnlyController {
    /// Creates the controller from the summed CPU gain (W/MHz) and the
    /// desired closed-loop pole.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] without CPUs; pole-placement errors.
    pub fn new(layout: DeviceLayout, summed_cpu_gain: f64, pole: f64) -> Result<Self> {
        let cpu_indices = layout.cpu_indices();
        if cpu_indices.is_empty() {
            return Err(CapGpuError::BadConfig("CPU-Only needs >= 1 CPU".into()));
        }
        let f_min = cpu_indices
            .iter()
            .map(|&i| layout.f_min[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let f_max = cpu_indices
            .iter()
            .map(|&i| layout.f_max[i])
            .fold(f64::INFINITY, f64::min);
        let pid = ProportionalController::pole_placed(summed_cpu_gain, pole, f_min, f_max)?;
        Ok(CpuOnlyController {
            shared_clock: f_max,
            layout,
            cpu_indices,
            pid,
        })
    }
}

impl PowerController for CpuOnlyController {
    fn name(&self) -> &str {
        "CPU-Only"
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        self.shared_clock = self
            .pid
            .step(input.measured_power, input.setpoint, self.shared_clock);
        let mut targets = input.current_targets.to_vec();
        for &i in &self.cpu_indices {
            targets[i] = self.shared_clock;
        }
        for i in self.layout.gpu_indices() {
            targets[i] = self.layout.f_max[i];
        }
        Ok(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_sim::DeviceKind;

    fn layout() -> DeviceLayout {
        DeviceLayout::new(
            vec![
                DeviceKind::Cpu,
                DeviceKind::Gpu,
                DeviceKind::Gpu,
                DeviceKind::Gpu,
            ],
            vec![1000.0, 435.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0, 1350.0],
        )
        .unwrap()
    }

    fn input<'a>(p: f64, sp: f64, targets: &'a [f64]) -> ControlInput<'a> {
        ControlInput {
            measured_power: p,
            setpoint: sp,
            current_targets: targets,
            normalized_throughput: &[],
            device_power: &[],
            floors: &[],
            phase_mix: None,
        }
    }

    #[test]
    fn actuates_cpu_pins_gpus_at_max() {
        let mut c = CpuOnlyController::new(layout(), 0.05, 0.5).unwrap();
        let t = vec![1500.0, 700.0, 900.0, 1100.0];
        let out = c.control(&input(1000.0, 900.0, &t)).unwrap();
        assert_eq!(out[1], 1350.0);
        assert_eq!(out[2], 1350.0);
        assert_eq!(out[3], 1350.0);
        assert!(out[0] < 1500.0, "over budget → CPU must drop: {out:?}");
    }

    #[test]
    fn cannot_cap_below_gpu_floor() {
        // The central claim of Fig. 3: with GPUs pinned at max, the CPU's
        // range is far too small to reach a 900 W cap on a GPU server.
        let gain = 0.05;
        let mut c = CpuOnlyController::new(layout(), gain, 0.5).unwrap();
        // Plant: GPUs pinned at max draw ~3×250 W, platform 300 W.
        let fixed = 300.0 + 3.0 * 250.0;
        let mut t = vec![2400.0, 1350.0, 1350.0, 1350.0];
        let mut p = fixed + gain * t[0];
        for _ in 0..60 {
            t = c.control(&input(p, 900.0, &t)).unwrap();
            p = fixed + gain * t[0];
        }
        // CPU saturates at its minimum; power floor ≈ 1100 W >> 900 W.
        assert_eq!(t[0], 1000.0);
        assert!(p > 1000.0, "CPU-Only magically capped to {p} W");
    }

    #[test]
    fn needs_cpus() {
        let gpu_layout =
            DeviceLayout::new(vec![DeviceKind::Gpu], vec![435.0], vec![1350.0]).unwrap();
        assert!(CpuOnlyController::new(gpu_layout, 0.05, 0.5).is_err());
    }
}
