//! CPU+GPU split-budget baseline (§6.1 baseline 4, after PowerCoord).
//!
//! "CPU+GPU utilizes two separate power control loops to independently
//! control the CPU and GPU power by respectively adapting their
//! frequencies … Given a total power budget for the GPU server, CPU+GPU
//! simply divides the budget using fixed values."
//!
//! Each loop is a pole-placed proportional controller on its *subsystem*
//! power (read RAPL-style / `nvidia-smi`-style from `device_power`), so
//! the total server power only converges to the cap if the chosen split
//! happens to match the workload **and** the un-budgeted platform power —
//! the structural weakness Figs. 3 and 6 expose.

use capgpu_control::pid::ProportionalController;

use crate::{CapGpuError, Result};

use super::{ControlInput, DeviceLayout, PowerController};

/// The fixed-split two-loop controller.
#[derive(Debug)]
pub struct CpuGpuSplitController {
    layout: DeviceLayout,
    cpu_indices: Vec<usize>,
    gpu_indices: Vec<usize>,
    cpu_pid: ProportionalController,
    gpu_pid: ProportionalController,
    /// Fraction of the total budget assigned to the GPUs.
    gpu_share: f64,
    cpu_clock: f64,
    gpu_clock: f64,
    name: String,
}

impl CpuGpuSplitController {
    /// Creates the controller with a fixed GPU budget share (e.g. 0.5 or
    /// 0.6 as evaluated in the paper).
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] without both CPUs and GPUs or for a share
    /// outside `(0, 1)`; pole-placement errors.
    pub fn new(
        layout: DeviceLayout,
        summed_cpu_gain: f64,
        summed_gpu_gain: f64,
        gpu_share: f64,
        pole: f64,
    ) -> Result<Self> {
        if !(0.0..1.0).contains(&gpu_share) || gpu_share == 0.0 {
            return Err(CapGpuError::BadConfig("gpu_share must be in (0,1)".into()));
        }
        let cpu_indices = layout.cpu_indices();
        let gpu_indices = layout.gpu_indices();
        if cpu_indices.is_empty() || gpu_indices.is_empty() {
            return Err(CapGpuError::BadConfig(
                "split controller needs CPUs and GPUs".into(),
            ));
        }
        let cpu_min = cpu_indices
            .iter()
            .map(|&i| layout.f_min[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let cpu_max = cpu_indices
            .iter()
            .map(|&i| layout.f_max[i])
            .fold(f64::INFINITY, f64::min);
        let gpu_min = gpu_indices
            .iter()
            .map(|&i| layout.f_min[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let gpu_max = gpu_indices
            .iter()
            .map(|&i| layout.f_max[i])
            .fold(f64::INFINITY, f64::min);
        let cpu_pid = ProportionalController::pole_placed(summed_cpu_gain, pole, cpu_min, cpu_max)?;
        let gpu_pid = ProportionalController::pole_placed(summed_gpu_gain, pole, gpu_min, gpu_max)?;
        let name = format!("CPU+GPU ({:.0}% GPU)", gpu_share * 100.0);
        Ok(CpuGpuSplitController {
            cpu_clock: cpu_min,
            gpu_clock: gpu_min,
            layout,
            cpu_indices,
            gpu_indices,
            cpu_pid,
            gpu_pid,
            gpu_share,
            name,
        })
    }
}

impl PowerController for CpuGpuSplitController {
    fn name(&self) -> &str {
        &self.name
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        if input.device_power.len() != self.layout.len() {
            return Err(CapGpuError::BadConfig(
                "split controller needs per-device power readings".into(),
            ));
        }
        let cpu_power: f64 = self
            .cpu_indices
            .iter()
            .map(|&i| input.device_power[i])
            .sum();
        let gpu_power: f64 = self
            .gpu_indices
            .iter()
            .map(|&i| input.device_power[i])
            .sum();
        let gpu_budget = self.gpu_share * input.setpoint;
        let cpu_budget = (1.0 - self.gpu_share) * input.setpoint;
        self.cpu_clock = self.cpu_pid.step(cpu_power, cpu_budget, self.cpu_clock);
        self.gpu_clock = self.gpu_pid.step(gpu_power, gpu_budget, self.gpu_clock);
        let mut targets = input.current_targets.to_vec();
        for &i in &self.cpu_indices {
            targets[i] = self.cpu_clock;
        }
        for &i in &self.gpu_indices {
            targets[i] = self.gpu_clock;
        }
        Ok(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_sim::DeviceKind;

    fn layout() -> DeviceLayout {
        DeviceLayout::new(
            vec![
                DeviceKind::Cpu,
                DeviceKind::Gpu,
                DeviceKind::Gpu,
                DeviceKind::Gpu,
            ],
            vec![1000.0, 435.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0, 1350.0],
        )
        .unwrap()
    }

    fn make(share: f64) -> CpuGpuSplitController {
        CpuGpuSplitController::new(layout(), 0.05, 3.0 * 0.1475, share, 0.5).unwrap()
    }

    #[test]
    fn loops_track_their_own_budgets() {
        let mut c = make(0.6);
        // Simulated plant: cpu power = 50 + 0.05 f_c; each gpu 50 + 0.1475 f_g.
        let mut t = vec![1000.0, 435.0, 435.0, 435.0];
        let setpoint = 1000.0;
        let mut dev_power = vec![0.0; 4];
        for _ in 0..60 {
            dev_power[0] = 50.0 + 0.05 * t[0];
            for i in 1..4 {
                dev_power[i] = 50.0 + 0.1475 * t[i];
            }
            let input = ControlInput {
                measured_power: 300.0 + dev_power.iter().sum::<f64>(),
                setpoint,
                current_targets: &t,
                normalized_throughput: &[],
                device_power: &dev_power,
                floors: &[],
                phase_mix: None,
            };
            t = c.control(&input).unwrap();
        }
        let gpu_power: f64 = (1..4).map(|i| 50.0 + 0.1475 * t[i]).sum();
        // GPU budget = 600 W; 3 GPUs can reach it (max ~747 W).
        assert!((gpu_power - 600.0).abs() < 5.0, "gpu power {gpu_power}");
        // CPU budget = 400 W is unreachable (max ~170 W): clock pegged max.
        assert_eq!(t[0], 2400.0);
    }

    #[test]
    fn total_power_misses_cap_with_platform_power() {
        // The structural flaw: subsystem budgets ignore the 300 W platform
        // draw, so total power ≠ set point even when both loops "succeed".
        let mut c = make(0.6);
        let mut t = vec![1000.0, 435.0, 435.0, 435.0];
        let setpoint = 1000.0;
        let mut total = 0.0;
        let mut dev_power = vec![0.0; 4];
        for _ in 0..60 {
            dev_power[0] = 50.0 + 0.05 * t[0];
            for i in 1..4 {
                dev_power[i] = 50.0 + 0.1475 * t[i];
            }
            total = 300.0 + dev_power.iter().sum::<f64>();
            let input = ControlInput {
                measured_power: total,
                setpoint,
                current_targets: &t,
                normalized_throughput: &[],
                device_power: &dev_power,
                floors: &[],
                phase_mix: None,
            };
            t = c.control(&input).unwrap();
        }
        assert!(
            (total - setpoint).abs() > 30.0,
            "split control should miss the total cap, got {total}"
        );
    }

    #[test]
    fn validation() {
        assert!(CpuGpuSplitController::new(layout(), 0.05, 0.44, 0.0, 0.5).is_err());
        assert!(CpuGpuSplitController::new(layout(), 0.05, 0.44, 1.0, 0.5).is_err());
        let gpu_only = DeviceLayout::new(vec![DeviceKind::Gpu], vec![435.0], vec![1350.0]).unwrap();
        assert!(CpuGpuSplitController::new(gpu_only, 0.05, 0.44, 0.5, 0.5).is_err());
    }

    #[test]
    fn requires_device_power() {
        let mut c = make(0.5);
        let t = vec![1000.0, 435.0, 435.0, 435.0];
        let input = ControlInput {
            measured_power: 900.0,
            setpoint: 900.0,
            current_targets: &t,
            normalized_throughput: &[],
            device_power: &[],
            floors: &[],
            phase_mix: None,
        };
        assert!(c.control(&input).is_err());
    }
}
