//! GPU-Only baseline (§6.1 baseline 2, after OptimML).
//!
//! A pole-placed proportional controller that drives total server power by
//! moving a **single shared GPU clock** applied to every GPU; the CPU is
//! pinned at its maximum frequency ("the CPU frequency must be set to the
//! maximum level throughout the process"). Converges cleanly but cannot
//! differentiate GPUs — the source of its SLO violations in Fig. 8.

use capgpu_control::pid::ProportionalController;

use crate::{CapGpuError, Result};

use super::{ControlInput, DeviceLayout, PowerController};

/// The GPU-Only proportional controller.
#[derive(Debug)]
pub struct GpuOnlyController {
    layout: DeviceLayout,
    gpu_indices: Vec<usize>,
    pid: ProportionalController,
    /// The shared GPU clock currently commanded (MHz).
    shared_clock: f64,
}

impl GpuOnlyController {
    /// Creates the controller.
    ///
    /// `summed_gpu_gain` is the plant gain seen by the shared knob — the
    /// sum of all GPUs' W/MHz gains (from system identification);
    /// `pole ∈ [0, 1)` is placed per §6.1 ("chosen to minimize
    /// oscillations"; 0.5 is a good default).
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] if the layout has no GPUs; propagates
    /// pole-placement errors.
    pub fn new(layout: DeviceLayout, summed_gpu_gain: f64, pole: f64) -> Result<Self> {
        let gpu_indices = layout.gpu_indices();
        if gpu_indices.is_empty() {
            return Err(CapGpuError::BadConfig("GPU-Only needs >= 1 GPU".into()));
        }
        // All GPUs share one clock: use the tightest common range.
        let f_min = gpu_indices
            .iter()
            .map(|&i| layout.f_min[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let f_max = gpu_indices
            .iter()
            .map(|&i| layout.f_max[i])
            .fold(f64::INFINITY, f64::min);
        let pid = ProportionalController::pole_placed(summed_gpu_gain, pole, f_min, f_max)?;
        Ok(GpuOnlyController {
            shared_clock: f_min,
            layout,
            gpu_indices,
            pid,
        })
    }
}

impl PowerController for GpuOnlyController {
    fn name(&self) -> &str {
        "GPU-Only"
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        self.shared_clock = self
            .pid
            .step(input.measured_power, input.setpoint, self.shared_clock);
        let mut targets = input.current_targets.to_vec();
        for &i in &self.gpu_indices {
            targets[i] = self.shared_clock;
        }
        // CPU pinned at max.
        for i in self.layout.cpu_indices() {
            targets[i] = self.layout.f_max[i];
        }
        Ok(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_sim::DeviceKind;

    fn layout() -> DeviceLayout {
        DeviceLayout::new(
            vec![
                DeviceKind::Cpu,
                DeviceKind::Gpu,
                DeviceKind::Gpu,
                DeviceKind::Gpu,
            ],
            vec![1000.0, 435.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0, 1350.0],
        )
        .unwrap()
    }

    fn input<'a>(p: f64, sp: f64, targets: &'a [f64]) -> ControlInput<'a> {
        ControlInput {
            measured_power: p,
            setpoint: sp,
            current_targets: targets,
            normalized_throughput: &[],
            device_power: &[],
            floors: &[],
            phase_mix: None,
        }
    }

    #[test]
    fn all_gpus_share_one_clock_cpu_pinned() {
        let mut c = GpuOnlyController::new(layout(), 3.0 * 0.1475, 0.5).unwrap();
        let t = vec![1500.0, 700.0, 900.0, 1100.0];
        let out = c.control(&input(800.0, 900.0, &t)).unwrap();
        assert_eq!(out[0], 2400.0); // CPU pinned at max
        assert_eq!(out[1], out[2]);
        assert_eq!(out[2], out[3]);
    }

    #[test]
    fn converges_on_linear_plant() {
        let gain = 3.0 * 0.1475;
        let mut c = GpuOnlyController::new(layout(), gain, 0.5).unwrap();
        // Plant: p = 300 + cpu_power(max) + gain · shared_clock.
        let cpu_w = 170.0;
        let mut t = vec![2400.0, 435.0, 435.0, 435.0];
        let mut p = 300.0 + cpu_w + gain * 435.0;
        for _ in 0..40 {
            t = c.control(&input(p, 900.0, &t)).unwrap();
            p = 300.0 + cpu_w + gain * t[1];
        }
        assert!((p - 900.0).abs() < 1.0, "p = {p}");
    }

    #[test]
    fn needs_gpus() {
        let cpu_only_layout =
            DeviceLayout::new(vec![DeviceKind::Cpu], vec![1000.0], vec![2400.0]).unwrap();
        assert!(GpuOnlyController::new(cpu_only_layout, 0.4, 0.5).is_err());
    }
}
