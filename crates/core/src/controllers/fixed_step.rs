//! Fixed-step and Safe Fixed-step heuristic baselines (§6.1 baseline 1).
//!
//! "All CPUs and GPUs initially operate at their lowest frequency levels.
//! In each control period, if the total system power consumption is below
//! the target set point, the controller selects a CPU or GPU with the
//! highest normalized utilization and increases its frequency level by one
//! fixed step size. If the power exceeds the set point, it selects the
//! component with the lowest utilization and decreases its frequency by
//! one step size. When all components have identical utilization values,
//! the controller chooses among them in a round-robin fashion. … If either
//! the CPU or GPU frequency reaches its upper or lower bound, we alternate
//! adjustments between the two components."
//!
//! §6.2 defines the step *unit* as 100 MHz for CPUs and 90 MHz for GPUs;
//! `step_multiplier` scales both (the paper evaluates step sizes 1 and 5).
//!
//! [`SafeFixedStepController`] is the same logic driven toward
//! `setpoint − margin`, the paper's device for avoiding cap violations at
//! the cost of control accuracy (Fig. 5–6).

use capgpu_sim::DeviceKind;

use crate::Result;

use super::{ControlInput, DeviceLayout, PowerController};

/// CPU step unit in MHz (§6.2).
pub const CPU_STEP_UNIT_MHZ: f64 = 100.0;
/// GPU step unit in MHz (§6.2).
pub const GPU_STEP_UNIT_MHZ: f64 = 90.0;

/// The Fixed-step heuristic controller.
#[derive(Debug, Clone)]
pub struct FixedStepController {
    layout: DeviceLayout,
    /// Multiplier on the per-kind step units (paper: 1 or 5).
    step_multiplier: usize,
    /// Round-robin cursor for utilization ties.
    rr_cursor: usize,
    name: String,
}

impl FixedStepController {
    /// Creates the controller with the given step multiplier (≥ 1).
    pub fn new(layout: DeviceLayout, step_multiplier: usize) -> Self {
        let name = format!("Fixed-step (x{step_multiplier})");
        FixedStepController {
            layout,
            step_multiplier: step_multiplier.max(1),
            rr_cursor: 0,
            name,
        }
    }

    fn step_mhz(&self, kind: DeviceKind) -> f64 {
        let unit = match kind {
            DeviceKind::Cpu => CPU_STEP_UNIT_MHZ,
            DeviceKind::Gpu => GPU_STEP_UNIT_MHZ,
        };
        unit * self.step_multiplier as f64
    }

    /// Picks the device to adjust: extreme normalized utilization wins,
    /// ties (within 1e-9) resolved round-robin; devices pinned at the
    /// relevant bound are skipped.
    fn pick_device(&mut self, input: &ControlInput<'_>, raise: bool) -> Option<usize> {
        let n = self.layout.len();
        let eligible: Vec<usize> = (0..n)
            .filter(|&j| {
                let f = input.current_targets[j];
                if raise {
                    f < self.layout.f_max[j] - 1e-9
                } else {
                    f > input.floors[j].max(self.layout.f_min[j]) + 1e-9
                }
            })
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let key = |j: usize| input.normalized_throughput[j];
        let best_val = eligible.iter().map(|&j| key(j)).fold(
            if raise {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            },
            |acc, v| {
                if raise {
                    acc.max(v)
                } else {
                    acc.min(v)
                }
            },
        );
        let tied: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&j| (key(j) - best_val).abs() <= 1e-9)
            .collect();
        let pick = tied[self.rr_cursor % tied.len()];
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        Some(pick)
    }
}

impl PowerController for FixedStepController {
    fn name(&self) -> &str {
        &self.name
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        let mut targets = input.current_targets.to_vec();
        let raise = input.measured_power < input.setpoint;
        if let Some(j) = self.pick_device(input, raise) {
            let step = self.step_mhz(self.layout.kinds[j]);
            let delta = if raise { step } else { -step };
            let floor = input.floors[j].max(self.layout.f_min[j]);
            targets[j] = (targets[j] + delta).clamp(floor, self.layout.f_max[j]);
        }
        Ok(targets)
    }

    fn reset(&mut self) {
        self.rr_cursor = 0;
    }
}

/// Safe Fixed-step: identical stepping, but toward `setpoint − margin` so
/// the oscillation band sits below the cap.
#[derive(Debug, Clone)]
pub struct SafeFixedStepController {
    inner: FixedStepController,
    /// Safety margin in watts ("calculated based on steady-state errors").
    margin_watts: f64,
    name: String,
}

impl SafeFixedStepController {
    /// Creates the controller. A reasonable margin is the worst-case power
    /// impact of one step (step size × largest device gain), which is what
    /// the paper estimates from steady-state oscillation amplitude.
    pub fn new(layout: DeviceLayout, step_multiplier: usize, margin_watts: f64) -> Self {
        let name = format!("Safe Fixed-step (x{step_multiplier}, -{margin_watts:.0} W)");
        SafeFixedStepController {
            inner: FixedStepController::new(layout, step_multiplier),
            margin_watts: margin_watts.max(0.0),
            name,
        }
    }

    /// The configured margin in watts.
    pub fn margin_watts(&self) -> f64 {
        self.margin_watts
    }
}

impl PowerController for SafeFixedStepController {
    fn name(&self) -> &str {
        &self.name
    }

    fn control(&mut self, input: &ControlInput<'_>) -> Result<Vec<f64>> {
        let shifted = ControlInput {
            setpoint: input.setpoint - self.margin_watts,
            ..input.clone()
        };
        self.inner.control(&shifted)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_sim::DeviceKind;

    fn layout() -> DeviceLayout {
        DeviceLayout::new(
            vec![DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Gpu],
            vec![1000.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0],
        )
        .unwrap()
    }

    fn input<'a>(
        p: f64,
        sp: f64,
        targets: &'a [f64],
        thr: &'a [f64],
        floors: &'a [f64],
    ) -> ControlInput<'a> {
        ControlInput {
            measured_power: p,
            setpoint: sp,
            current_targets: targets,
            normalized_throughput: thr,
            device_power: &[],
            floors,
            phase_mix: None,
        }
    }

    #[test]
    fn raises_highest_utilization_device_when_under() {
        let mut c = FixedStepController::new(layout(), 1);
        let t = vec![1000.0, 435.0, 435.0];
        let out = c
            .control(&input(
                700.0,
                900.0,
                &t,
                &[0.2, 0.9, 0.5],
                &[1000.0, 435.0, 435.0],
            ))
            .unwrap();
        // GPU 1 (highest util) climbs by one 90 MHz step; others unchanged.
        assert_eq!(out, vec![1000.0, 525.0, 435.0]);
    }

    #[test]
    fn lowers_lowest_utilization_device_when_over() {
        let mut c = FixedStepController::new(layout(), 1);
        let t = vec![2000.0, 900.0, 900.0];
        let out = c
            .control(&input(
                950.0,
                900.0,
                &t,
                &[0.2, 0.9, 0.5],
                &[1000.0, 435.0, 435.0],
            ))
            .unwrap();
        // CPU (lowest util) drops by one 100 MHz step.
        assert_eq!(out, vec![1900.0, 900.0, 900.0]);
    }

    #[test]
    fn step_multiplier_scales() {
        let mut c = FixedStepController::new(layout(), 5);
        let t = vec![1000.0, 435.0, 435.0];
        let out = c
            .control(&input(
                700.0,
                900.0,
                &t,
                &[0.2, 0.9, 0.5],
                &[1000.0, 435.0, 435.0],
            ))
            .unwrap();
        assert_eq!(out[1], 435.0 + 450.0);
    }

    #[test]
    fn round_robin_on_ties() {
        let mut c = FixedStepController::new(layout(), 1);
        let floors = [1000.0, 435.0, 435.0];
        let mut t = vec![1000.0, 435.0, 435.0];
        let mut touched = std::collections::HashSet::new();
        for _ in 0..3 {
            let out = c
                .control(&input(700.0, 900.0, &t, &[0.5, 0.5, 0.5], &floors))
                .unwrap();
            for j in 0..3 {
                if (out[j] - t[j]).abs() > 1e-9 {
                    touched.insert(j);
                }
            }
            t = out;
        }
        assert_eq!(touched.len(), 3, "round-robin should touch every device");
    }

    #[test]
    fn saturated_devices_are_skipped() {
        let mut c = FixedStepController::new(layout(), 1);
        // GPU 1 already at max; highest util but ineligible for raising.
        let t = vec![1000.0, 1350.0, 435.0];
        let out = c
            .control(&input(
                700.0,
                900.0,
                &t,
                &[0.2, 0.9, 0.5],
                &[1000.0, 435.0, 435.0],
            ))
            .unwrap();
        assert_eq!(out[1], 1350.0);
        assert_eq!(out[2], 525.0); // next-highest util climbs instead
    }

    #[test]
    fn floors_limit_downsteps() {
        let mut c = FixedStepController::new(layout(), 5);
        let t = vec![1000.0, 500.0, 900.0];
        // GPU 1 has floor 480: a 450 MHz down-step clamps to the floor…
        let out = c
            .control(&input(
                950.0,
                900.0,
                &t,
                &[0.9, 0.1, 0.5],
                &[1000.0, 480.0, 435.0],
            ))
            .unwrap();
        assert_eq!(out[1], 480.0);
    }

    #[test]
    fn all_saturated_is_a_noop() {
        let mut c = FixedStepController::new(layout(), 1);
        let t = vec![2400.0, 1350.0, 1350.0];
        let out = c
            .control(&input(
                700.0,
                900.0,
                &t,
                &[0.5, 0.5, 0.5],
                &[1000.0, 435.0, 435.0],
            ))
            .unwrap();
        assert_eq!(out, t);
    }

    #[test]
    fn safe_variant_targets_shifted_setpoint() {
        let mut plain = FixedStepController::new(layout(), 1);
        let mut safe = SafeFixedStepController::new(layout(), 1, 30.0);
        assert_eq!(safe.margin_watts(), 30.0);
        // measured 880 W: plain (target 900) raises, safe (target 870) lowers.
        let t = vec![2000.0, 900.0, 900.0];
        let thr = [0.5, 0.9, 0.2];
        let floors = [1000.0, 435.0, 435.0];
        let up = plain
            .control(&input(880.0, 900.0, &t, &thr, &floors))
            .unwrap();
        let down = safe
            .control(&input(880.0, 900.0, &t, &thr, &floors))
            .unwrap();
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        assert!(sum(&up) > sum(&t));
        assert!(sum(&down) < sum(&t));
    }
}
