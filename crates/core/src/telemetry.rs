//! Run-level telemetry: the glue between the generic instruments in
//! `capgpu-telemetry` and the experiment runner's control loop.
//!
//! [`RunTelemetry`] owns one [`Registry`] (counters / gauges /
//! histograms, pre-registered at construction so the hot path never
//! allocates), one [`Journal`] of discrete control-plane events, and
//! one [`SpanStack`] of nested wall-clock scopes. The registry and the
//! journal are fed exclusively from the deterministic simulation clock
//! (period indices, sim seconds, watts, iteration counts), so their
//! contents are byte-identical across reruns and safe inside
//! `PartialEq`-compared artifacts. Wall-clock spans are inherently
//! non-deterministic and therefore double-gated: they record only when
//! [`TelemetryConfig::trace_spans`] is set, and reports render them in
//! a clearly separated section.

use capgpu_serve::ServeWindowStats;
use capgpu_sim::DeviceKind;
use capgpu_telemetry::journal::{Event, Journal};
use capgpu_telemetry::registry::{CounterId, GaugeId, HistogramId, Registry, Snapshot};
use capgpu_telemetry::spans::{SpanId, SpanStack, SpanSummary};
use capgpu_telemetry::TelemetryConfig;

use crate::controllers::ControlDiagnostics;

/// Control-loop phases timed by the span stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One whole control period (outermost scope).
    Period,
    /// Meter averaging and staleness resolution.
    Sense,
    /// Model identification / streaming RLS refit.
    Identify,
    /// Monitor aggregation, floors, supervisor, controller solve.
    Solve,
    /// The per-second modulate → set-frequencies → advance loop.
    Actuate,
    /// The request-level serving engines' drain (inside `Actuate`).
    ServeDrain,
}

/// Histogram bucket edges for absolute power tracking error (W).
const POWER_ERROR_EDGES: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
/// Histogram bucket edges for QP iteration counts.
const ITERATION_EDGES: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Histogram bucket edges for serving queue depth (requests).
const QUEUE_EDGES: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
/// Histogram bucket edges for served batch sizes (requests/batch).
const BATCH_EDGES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0];

/// Pre-registered metric handles (cheap `Copy` indices).
#[derive(Debug, Clone)]
struct Handles {
    periods_total: CounterId,
    seconds_total: CounterId,
    meter_samples_total: CounterId,
    meter_stale_periods_total: CounterId,
    cap_overshoot_periods_total: CounterId,
    tier_periods_total: [CounterId; 3],
    tier_changes_total: CounterId,
    quarantine_transitions_total: CounterId,
    refits_total: CounterId,
    slo_floor_binding_periods_total: CounterId,
    floor_clamped_periods_total: CounterId,
    mem_escape_transitions_total: CounterId,
    carry_wraps_total: Vec<CounterId>,
    power_watts: GaugeId,
    setpoint_watts: GaugeId,
    model_scale: GaugeId,
    target_mhz: Vec<GaugeId>,
    power_error_watts: HistogramId,
    qp_iterations: HistogramId,
    active_constraints: HistogramId,
    serve_admitted_total: Vec<CounterId>,
    serve_dropped_total: Vec<CounterId>,
    serve_completions_total: Vec<CounterId>,
    serve_queue_depth: Vec<HistogramId>,
    serve_batch_size: Vec<HistogramId>,
    serve_p99_latency_s: Vec<GaugeId>,
    /// LLM-layer handles; `None` unless the scenario enables the LLM
    /// serving plant, so non-LLM telemetry artifacts (including the
    /// committed goldens) carry no LLM metric rows.
    llm: Option<LlmHandles>,
}

/// Metric handles registered only when the LLM serving layer is on.
#[derive(Debug, Clone)]
struct LlmHandles {
    prefill_tokens_total: Vec<CounterId>,
    decode_tokens_total: Vec<CounterId>,
    preemptions_total: Vec<CounterId>,
    kv_used_frac: Vec<GaugeId>,
}

/// What the runner observed over one completed control period; handed
/// to [`RunTelemetry::on_period`] in one struct so the call site stays
/// readable.
#[derive(Debug)]
pub struct PeriodObservation<'a> {
    /// Period index (0-based).
    pub period: usize,
    /// Sim time at the period's end (s).
    pub t_s: f64,
    /// Seconds simulated this period.
    pub seconds: usize,
    /// Fresh meter samples the period produced.
    pub fresh_meter_samples: usize,
    /// Measured (or held-over) average power (W).
    pub avg_power: f64,
    /// Effective set point in force (W).
    pub setpoint: f64,
    /// Whether `avg_power` is a held-over stale reading.
    pub meter_stale: bool,
    /// Supervisory tier that acted (0 when unsupervised).
    pub tier: u8,
    /// Consecutive meter-silent periods at the supervisor's decision.
    pub stale_periods: usize,
    /// Per-device quarantine flags, when supervised.
    pub quarantined: Option<&'a [bool]>,
    /// Fractional frequency targets commanded at the period's end (MHz).
    pub targets: &'a [f64],
    /// Solver diagnostics, when the acting controller exposes them.
    pub diag: Option<ControlDiagnostics>,
    /// Whether the §4.4 memory-throttle escape is engaged.
    pub mem_escape_active: bool,
}

/// Per-run telemetry: registry + journal + spans, wired to the runner.
///
/// `Clone` snapshots the full telemetry state alongside the runner's
/// closed-loop state, so sweep cells cloned from a shared identified
/// runner carry the identification phase's metrics deterministically.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    cfg: TelemetryConfig,
    registry: Registry,
    journal: Journal,
    spans: SpanStack,
    sp_period: SpanId,
    sp_sense: SpanId,
    sp_identify: SpanId,
    sp_solve: SpanId,
    sp_actuate: SpanId,
    sp_serve: SpanId,
    h: Handles,
    /// Delta-sigma wraps accumulated within the current period.
    carry_pending: u64,
    prev_tier: Option<u8>,
    prev_quarantine: Vec<bool>,
    prev_stale: bool,
    prev_mem_escape: bool,
    slo_bound_active: bool,
    /// Per-task decode-dominant flags for edge-triggered
    /// `phase_transition` journal events (hysteresis: enter below a 0.3
    /// prefill share, leave above 0.5).
    llm_decode_dominant: Vec<bool>,
    /// Per-task KV-pressure flags for edge-triggered `kv_pressure`
    /// journal events (hysteresis: enter at ≥ 0.9 occupancy, leave at
    /// ≤ 0.7).
    llm_kv_pressured: Vec<bool>,
}

impl RunTelemetry {
    /// Builds the instrument set for a testbed with the given device
    /// kinds (in device order) and number of GPU serving tasks. All
    /// metrics are registered here — the record path never allocates.
    /// `llm` registers the LLM-layer instruments (token counters,
    /// preemptions, KV occupancy) in addition to the base set; leaving
    /// it off keeps non-LLM telemetry artifacts byte-identical to
    /// before the LLM layer existed.
    pub fn new(cfg: TelemetryConfig, kinds: &[DeviceKind], n_tasks: usize, llm: bool) -> Self {
        let mut registry = Registry::new();
        let dev_labels: Vec<String> = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| match k {
                DeviceKind::Cpu => format!("cpu{i}"),
                DeviceKind::Gpu => format!("gpu{i}"),
            })
            .collect();
        let task_labels: Vec<String> = (0..n_tasks).map(|t| t.to_string()).collect();
        let h = Handles {
            periods_total: registry.counter("capgpu_periods_total", &[]),
            seconds_total: registry.counter("capgpu_seconds_total", &[]),
            meter_samples_total: registry.counter("capgpu_meter_samples_total", &[]),
            meter_stale_periods_total: registry.counter("capgpu_meter_stale_periods_total", &[]),
            cap_overshoot_periods_total: registry
                .counter("capgpu_cap_overshoot_periods_total", &[]),
            tier_periods_total: [
                registry.counter("capgpu_tier_periods_total", &[("tier", "0")]),
                registry.counter("capgpu_tier_periods_total", &[("tier", "1")]),
                registry.counter("capgpu_tier_periods_total", &[("tier", "2")]),
            ],
            tier_changes_total: registry.counter("capgpu_tier_changes_total", &[]),
            quarantine_transitions_total: registry
                .counter("capgpu_quarantine_transitions_total", &[]),
            refits_total: registry.counter("capgpu_refits_total", &[]),
            slo_floor_binding_periods_total: registry
                .counter("capgpu_slo_floor_binding_periods_total", &[]),
            floor_clamped_periods_total: registry
                .counter("capgpu_floor_clamped_periods_total", &[]),
            mem_escape_transitions_total: registry
                .counter("capgpu_mem_escape_transitions_total", &[]),
            carry_wraps_total: dev_labels
                .iter()
                .map(|d| registry.counter("capgpu_carry_wraps_total", &[("device", d)]))
                .collect(),
            power_watts: registry.gauge("capgpu_power_watts", &[]),
            setpoint_watts: registry.gauge("capgpu_setpoint_watts", &[]),
            model_scale: registry.gauge("capgpu_model_scale", &[]),
            target_mhz: dev_labels
                .iter()
                .map(|d| registry.gauge("capgpu_target_mhz", &[("device", d)]))
                .collect(),
            power_error_watts: registry.histogram(
                "capgpu_power_error_watts",
                &[],
                POWER_ERROR_EDGES,
            ),
            qp_iterations: registry.histogram("capgpu_qp_iterations", &[], ITERATION_EDGES),
            active_constraints: registry.histogram(
                "capgpu_active_constraints",
                &[],
                ITERATION_EDGES,
            ),
            serve_admitted_total: task_labels
                .iter()
                .map(|t| registry.counter("capgpu_serve_admitted_total", &[("task", t)]))
                .collect(),
            serve_dropped_total: task_labels
                .iter()
                .map(|t| registry.counter("capgpu_serve_dropped_total", &[("task", t)]))
                .collect(),
            serve_completions_total: task_labels
                .iter()
                .map(|t| registry.counter("capgpu_serve_completions_total", &[("task", t)]))
                .collect(),
            serve_queue_depth: task_labels
                .iter()
                .map(|t| {
                    registry.histogram("capgpu_serve_queue_depth", &[("task", t)], QUEUE_EDGES)
                })
                .collect(),
            serve_batch_size: task_labels
                .iter()
                .map(|t| registry.histogram("capgpu_serve_batch_size", &[("task", t)], BATCH_EDGES))
                .collect(),
            serve_p99_latency_s: task_labels
                .iter()
                .map(|t| registry.gauge("capgpu_serve_p99_latency_s", &[("task", t)]))
                .collect(),
            llm: llm.then(|| LlmHandles {
                prefill_tokens_total: task_labels
                    .iter()
                    .map(|t| registry.counter("capgpu_llm_prefill_tokens_total", &[("task", t)]))
                    .collect(),
                decode_tokens_total: task_labels
                    .iter()
                    .map(|t| registry.counter("capgpu_llm_decode_tokens_total", &[("task", t)]))
                    .collect(),
                preemptions_total: task_labels
                    .iter()
                    .map(|t| registry.counter("capgpu_llm_preemptions_total", &[("task", t)]))
                    .collect(),
                kv_used_frac: task_labels
                    .iter()
                    .map(|t| registry.gauge("capgpu_llm_kv_used_frac", &[("task", t)]))
                    .collect(),
            }),
        };
        let mut spans = SpanStack::new();
        let sp_period = spans.span("period");
        let sp_sense = spans.span("sense");
        let sp_identify = spans.span("identify");
        let sp_solve = spans.span("solve");
        let sp_actuate = spans.span("actuate");
        let sp_serve = spans.span("serve-drain");
        RunTelemetry {
            cfg,
            registry,
            journal: Journal::new(),
            spans,
            sp_period,
            sp_sense,
            sp_identify,
            sp_solve,
            sp_actuate,
            sp_serve,
            h,
            carry_pending: 0,
            prev_tier: None,
            prev_quarantine: vec![false; kinds.len()],
            prev_stale: false,
            prev_mem_escape: false,
            slo_bound_active: false,
            llm_decode_dominant: vec![false; n_tasks],
            llm_kv_pressured: vec![false; n_tasks],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Open a wall-clock scope for `phase`. No-op unless
    /// [`TelemetryConfig::trace_spans`] is set — spans are the only
    /// non-deterministic instrument, and they stay off by default.
    #[inline]
    pub fn span_enter(&mut self, phase: Phase) {
        if !self.cfg.trace_spans {
            return;
        }
        let id = match phase {
            Phase::Period => self.sp_period,
            Phase::Sense => self.sp_sense,
            Phase::Identify => self.sp_identify,
            Phase::Solve => self.sp_solve,
            Phase::Actuate => self.sp_actuate,
            Phase::ServeDrain => self.sp_serve,
        };
        self.spans.enter(id);
    }

    /// Close the innermost open scope, returning its wall time (ns; 0
    /// when span tracing is off).
    #[inline]
    pub fn span_exit(&mut self) -> u64 {
        if !self.cfg.trace_spans {
            return 0;
        }
        self.spans.exit()
    }

    /// Journal the start of a closed-loop run.
    pub fn begin_run(&mut self, controller: &str, setpoint: f64, num_periods: usize) {
        let ev = Event::new(0, 0.0, "run_start")
            .str("controller", controller)
            .f64("setpoint_w", setpoint)
            .u64("periods", num_periods as u64);
        self.journal.push(ev);
    }

    /// Journal the end of a run and record end-of-run aggregates:
    /// per-task p99 latencies and — when RLS tracking ran — the
    /// tracker's sample/acceptance counters.
    pub fn end_run(
        &mut self,
        period: usize,
        t_s: f64,
        p99_latency_s: &[f64],
        tracker_stats: Option<(u64, u64, u64)>,
    ) {
        for (t, &p99) in p99_latency_s.iter().enumerate() {
            if let Some(id) = self.h.serve_p99_latency_s.get(t) {
                self.registry.set(*id, p99);
            }
        }
        let mut ev = Event::new(period as u64, t_s, "run_end");
        if let Some((samples, accepted, rejected)) = tracker_stats {
            ev = ev
                .u64("rls_samples", samples)
                .u64("rls_pairs_accepted", accepted)
                .u64("rls_pairs_rejected", rejected);
        }
        self.journal.push(ev);
    }

    /// Journal a fault-schedule transition (onset or clear).
    pub fn on_fault(
        &mut self,
        period: usize,
        t_s: f64,
        spec_index: usize,
        label: &str,
        device: Option<usize>,
        onset: bool,
    ) {
        let kind = if onset { "fault_onset" } else { "fault_clear" };
        let mut ev = Event::new(period as u64, t_s, kind)
            .u64("spec", spec_index as u64)
            .str("fault", label);
        if let Some(d) = device {
            ev = ev.u64("device", d as u64);
        }
        self.journal.push(ev);
    }

    /// Journal an operator set-point change taking effect.
    pub fn on_setpoint_change(&mut self, period: usize, t_s: f64, watts: f64) {
        self.journal
            .push(Event::new(period as u64, t_s, "setpoint_change").f64("watts", watts));
    }

    /// Record one delta-sigma carry wrap (the modulator emitted a level
    /// other than the nearest one to pay down accumulated error).
    #[inline]
    pub fn on_carry_wrap(&mut self, device: usize) {
        if let Some(id) = self.h.carry_wraps_total.get(device) {
            self.registry.inc(*id, 1);
        }
        self.carry_pending += 1;
    }

    /// Record one simulated second of one serving engine's activity.
    #[inline]
    pub fn on_serve_second(&mut self, task: usize, stats: &ServeWindowStats, queue_len: usize) {
        let admitted = stats.arrivals.saturating_sub(stats.dropped);
        self.registry
            .inc(self.h.serve_admitted_total[task], admitted as u64);
        self.registry
            .inc(self.h.serve_dropped_total[task], stats.dropped as u64);
        self.registry.inc(
            self.h.serve_completions_total[task],
            stats.completions as u64,
        );
        self.registry
            .observe(self.h.serve_queue_depth[task], queue_len as f64);
        for &b in &stats.batch_sizes {
            self.registry
                .observe(self.h.serve_batch_size[task], b as f64);
        }
    }

    /// Record one simulated second of one LLM engine's activity:
    /// per-phase token counters, preemptions, and the KV-occupancy
    /// gauge. No-op unless the LLM instruments were registered.
    #[inline]
    pub fn on_llm_second(&mut self, task: usize, stats: &ServeWindowStats) {
        let Some(llm) = &self.h.llm else {
            return;
        };
        self.registry
            .inc(llm.prefill_tokens_total[task], stats.prefill_tokens as u64);
        self.registry
            .inc(llm.decode_tokens_total[task], stats.decode_tokens as u64);
        self.registry
            .inc(llm.preemptions_total[task], stats.preemptions as u64);
        self.registry
            .set(llm.kv_used_frac[task], stats.kv_occupancy());
    }

    /// Fold one completed control period's phase mix for one LLM task
    /// into the journal: edge-triggered `phase_transition` events when
    /// a task's serving regime flips between prefill- and
    /// decode-dominant, and `kv_pressure` events when cache occupancy
    /// crosses into or out of the eviction-risk band. Both edges carry
    /// hysteresis so a task hovering at a threshold does not flood the
    /// journal.
    pub fn on_llm_period(
        &mut self,
        period: usize,
        t_s: f64,
        task: usize,
        prefill_share: f64,
        kv_occupancy: f64,
    ) {
        if self.h.llm.is_none() {
            return;
        }
        let decode_now = if self.llm_decode_dominant[task] {
            prefill_share < 0.5
        } else {
            prefill_share < 0.3
        };
        if decode_now != self.llm_decode_dominant[task] {
            self.journal.push(
                Event::new(period as u64, t_s, "phase_transition")
                    .u64("task", task as u64)
                    .str("to", if decode_now { "decode" } else { "prefill" })
                    .f64("prefill_share", prefill_share),
            );
            self.llm_decode_dominant[task] = decode_now;
        }
        let pressured_now = if self.llm_kv_pressured[task] {
            kv_occupancy > 0.7
        } else {
            kv_occupancy >= 0.9
        };
        if pressured_now != self.llm_kv_pressured[task] {
            self.journal.push(
                Event::new(period as u64, t_s, "kv_pressure")
                    .u64("task", task as u64)
                    .bool("on", pressured_now)
                    .f64("kv_occupancy", kv_occupancy),
            );
            self.llm_kv_pressured[task] = pressured_now;
        }
    }

    /// Record a streaming-RLS refit pushed to the controller.
    pub fn on_refit(&mut self, period: usize, t_s: f64, scale: f64, r_squared: f64) {
        self.registry.inc(self.h.refits_total, 1);
        self.registry.set(self.h.model_scale, scale);
        self.journal.push(
            Event::new(period as u64, t_s, "rls_refit")
                .f64("scale", scale)
                .f64("r_squared", r_squared),
        );
    }

    /// Fold one completed control period into the registry and journal.
    /// Edge-triggered events (tier changes, quarantine transitions,
    /// SLO-bound activations, meter staleness, memory-escape flips,
    /// aggregated carry wraps) are derived here by diffing against the
    /// previous period's state.
    pub fn on_period(&mut self, obs: &PeriodObservation<'_>) {
        let (period, t_s) = (obs.period as u64, obs.t_s);
        self.registry.inc(self.h.periods_total, 1);
        self.registry.inc(self.h.seconds_total, obs.seconds as u64);
        self.registry
            .inc(self.h.meter_samples_total, obs.fresh_meter_samples as u64);
        self.registry.set(self.h.power_watts, obs.avg_power);
        self.registry.set(self.h.setpoint_watts, obs.setpoint);
        self.registry.observe(
            self.h.power_error_watts,
            (obs.avg_power - obs.setpoint).abs(),
        );
        if obs.avg_power > obs.setpoint {
            self.registry.inc(self.h.cap_overshoot_periods_total, 1);
        }
        if obs.meter_stale {
            self.registry.inc(self.h.meter_stale_periods_total, 1);
        }
        if obs.meter_stale != self.prev_stale {
            self.journal.push(
                Event::new(period, t_s, "meter_stale")
                    .bool("stale", obs.meter_stale)
                    .u64("stale_periods", obs.stale_periods as u64),
            );
            self.prev_stale = obs.meter_stale;
        }
        if let Some(id) = self.h.tier_periods_total.get(obs.tier as usize) {
            self.registry.inc(*id, 1);
        }
        if let Some(prev) = self.prev_tier {
            if prev != obs.tier {
                self.registry.inc(self.h.tier_changes_total, 1);
                let reason = if obs.tier > prev {
                    if obs.stale_periods > 0 {
                        "stale_meter"
                    } else {
                        "health"
                    }
                } else {
                    "recovered"
                };
                self.journal.push(
                    Event::new(period, t_s, "tier_change")
                        .u64("from", prev as u64)
                        .u64("to", obs.tier as u64)
                        .u64("stale_periods", obs.stale_periods as u64)
                        .str("reason", reason),
                );
            }
        }
        self.prev_tier = Some(obs.tier);
        if let Some(quarantined) = obs.quarantined {
            for (d, &q) in quarantined.iter().enumerate() {
                if q != self.prev_quarantine[d] {
                    self.registry.inc(self.h.quarantine_transitions_total, 1);
                    self.journal.push(
                        Event::new(period, t_s, "quarantine")
                            .u64("device", d as u64)
                            .bool("on", q),
                    );
                    self.prev_quarantine[d] = q;
                }
            }
        }
        for (d, &f) in obs.targets.iter().enumerate() {
            if let Some(id) = self.h.target_mhz.get(d) {
                self.registry.set(*id, f);
            }
        }
        if let Some(diag) = obs.diag {
            self.registry
                .observe(self.h.qp_iterations, diag.solver_iterations as f64);
            self.registry
                .observe(self.h.active_constraints, diag.active_constraints as f64);
            if diag.slo_floor_binding {
                self.registry.inc(self.h.slo_floor_binding_periods_total, 1);
            }
            if diag.floor_clamped {
                self.registry.inc(self.h.floor_clamped_periods_total, 1);
            }
            if diag.slo_floor_binding != self.slo_bound_active {
                self.journal.push(
                    Event::new(period, t_s, "slo_floor_binding")
                        .bool("active", diag.slo_floor_binding),
                );
                self.slo_bound_active = diag.slo_floor_binding;
            }
        }
        if obs.mem_escape_active != self.prev_mem_escape {
            self.registry.inc(self.h.mem_escape_transitions_total, 1);
            self.journal
                .push(Event::new(period, t_s, "mem_escape").bool("engaged", obs.mem_escape_active));
            self.prev_mem_escape = obs.mem_escape_active;
        }
        if self.carry_pending > 0 {
            self.journal
                .push(Event::new(period, t_s, "ds_carry_wraps").u64("wraps", self.carry_pending));
            self.carry_pending = 0;
        }
    }

    /// Freeze the registry into a mergeable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The structured event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Frozen wall-clock span statistics (empty unless
    /// [`TelemetryConfig::trace_spans`] was set).
    pub fn span_summary(&self) -> SpanSummary {
        self.spans.summary()
    }

    /// Bundle the current state into a [`TelemetryReport`].
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport {
            snapshot: self.snapshot(),
            journal: self.journal.clone(),
            spans: self.span_summary(),
        }
    }
}

/// A frozen, renderable bundle of one run's telemetry.
///
/// The snapshot and journal are deterministic (sim-clock-derived) and
/// safe to commit as goldens; the span summary is wall-clock data and
/// is rendered only by [`TelemetryReport::wall_clock_text`], which
/// callers must keep out of deterministic artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Frozen metric registry.
    pub snapshot: Snapshot,
    /// Structured event journal.
    pub journal: Journal,
    /// Wall-clock span statistics (empty when span tracing was off).
    pub spans: SpanSummary,
}

impl TelemetryReport {
    /// Human-readable deterministic sections: the metric table followed
    /// by the journal as JSON Lines. Byte-identical across reruns of a
    /// seeded scenario.
    pub fn deterministic_text(&self) -> String {
        let mut out = self.snapshot.to_report();
        if !self.journal.is_empty() {
            out.push_str("journal\n");
            for line in self.journal.to_jsonl().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// The snapshot in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        self.snapshot.to_prometheus_text()
    }

    /// The wall-clock span table, when spans were traced. Callers must
    /// keep this out of byte-compared artifacts.
    pub fn wall_clock_text(&self) -> Option<String> {
        if self.spans.phases.is_empty() {
            None
        } else {
            Some(self.spans.to_report())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry() -> RunTelemetry {
        RunTelemetry::new(
            TelemetryConfig::deterministic(),
            &[DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Gpu],
            2,
            false,
        )
    }

    fn obs<'a>(period: usize, targets: &'a [f64], tier: u8) -> PeriodObservation<'a> {
        PeriodObservation {
            period,
            t_s: 4.0 * (period + 1) as f64,
            seconds: 4,
            fresh_meter_samples: 4,
            avg_power: 905.0,
            setpoint: 900.0,
            meter_stale: false,
            tier,
            stale_periods: 0,
            quarantined: None,
            targets,
            diag: None,
            mem_escape_active: false,
        }
    }

    #[test]
    fn period_recording_accumulates() {
        let mut tm = telemetry();
        tm.begin_run("CapGPU", 900.0, 2);
        let targets = [2000.0, 1000.0, 1000.0];
        tm.on_period(&obs(0, &targets, 0));
        tm.on_period(&obs(1, &targets, 0));
        tm.end_run(2, 8.0, &[0.1, 0.2], None);
        let snap = tm.snapshot();
        assert_eq!(snap.counter_value("capgpu_periods_total", &[]), Some(2));
        assert_eq!(snap.counter_value("capgpu_seconds_total", &[]), Some(8));
        assert_eq!(
            snap.counter_value("capgpu_cap_overshoot_periods_total", &[]),
            Some(2)
        );
        assert_eq!(
            snap.gauge_value("capgpu_target_mhz", &[("device", "gpu1")]),
            Some(1000.0)
        );
        assert_eq!(
            snap.gauge_value("capgpu_serve_p99_latency_s", &[("task", "1")]),
            Some(0.2)
        );
        assert_eq!(tm.journal().of_kind("run_start").count(), 1);
        assert_eq!(tm.journal().of_kind("run_end").count(), 1);
    }

    #[test]
    fn tier_changes_are_edge_triggered() {
        let mut tm = telemetry();
        let targets = [2000.0, 1000.0, 1000.0];
        for (p, tier) in [(0, 0u8), (1, 1), (2, 1), (3, 0)] {
            tm.on_period(&obs(p, &targets, tier));
        }
        let snap = tm.snapshot();
        assert_eq!(
            snap.counter_value("capgpu_tier_changes_total", &[]),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("capgpu_tier_periods_total", &[("tier", "1")]),
            Some(2)
        );
        let changes: Vec<String> = tm
            .journal()
            .of_kind("tier_change")
            .map(Event::to_json)
            .collect();
        assert_eq!(changes.len(), 2);
        assert!(changes[0].contains("\"from\":0,\"to\":1"));
        assert!(changes[1].contains("\"reason\":\"recovered\""));
    }

    #[test]
    fn spans_stay_off_unless_traced() {
        let mut tm = telemetry();
        tm.span_enter(Phase::Period);
        assert_eq!(tm.span_exit(), 0);
        assert!(tm.report().wall_clock_text().is_none());

        let mut traced = RunTelemetry::new(
            TelemetryConfig::with_spans(),
            &[DeviceKind::Cpu, DeviceKind::Gpu],
            1,
            false,
        );
        traced.span_enter(Phase::Period);
        traced.span_enter(Phase::Solve);
        traced.span_exit();
        traced.span_exit();
        let wall = traced.report().wall_clock_text().expect("span section");
        assert!(wall.contains("solve"));
    }

    #[test]
    fn carry_wraps_aggregate_per_period() {
        let mut tm = telemetry();
        tm.on_carry_wrap(1);
        tm.on_carry_wrap(1);
        tm.on_carry_wrap(2);
        let targets = [2000.0, 1000.0, 1000.0];
        tm.on_period(&obs(0, &targets, 0));
        tm.on_period(&obs(1, &targets, 0));
        let snap = tm.snapshot();
        assert_eq!(
            snap.counter_value("capgpu_carry_wraps_total", &[("device", "gpu1")]),
            Some(2)
        );
        let wraps: Vec<&Event> = tm.journal().of_kind("ds_carry_wraps").collect();
        assert_eq!(wraps.len(), 1, "aggregated once, only when wraps occurred");
        assert!(wraps[0].to_json().contains("\"wraps\":3"));
    }

    #[test]
    fn llm_instruments_are_gated_and_edge_triggered() {
        // Without the flag, LLM calls are no-ops and no LLM metric rows
        // exist — this is what keeps pre-LLM goldens byte-identical.
        let mut off = telemetry();
        let stats = ServeWindowStats {
            prefill_tokens: 100,
            decode_tokens: 40,
            preemptions: 1,
            kv_budget_tokens: 1000,
            kv_used_tokens_end: 950,
            ..ServeWindowStats::default()
        };
        off.on_llm_second(0, &stats);
        off.on_llm_period(0, 4.0, 0, 0.1, 0.95);
        assert!(!off
            .report()
            .deterministic_text()
            .contains("capgpu_llm_prefill_tokens_total"));
        assert!(off.journal().of_kind("phase_transition").next().is_none());

        let mut tm = RunTelemetry::new(
            TelemetryConfig::deterministic(),
            &[DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Gpu],
            2,
            true,
        );
        tm.on_llm_second(1, &stats);
        tm.on_llm_second(1, &stats);
        let snap = tm.snapshot();
        assert_eq!(
            snap.counter_value("capgpu_llm_prefill_tokens_total", &[("task", "1")]),
            Some(200)
        );
        assert_eq!(
            snap.gauge_value("capgpu_llm_kv_used_frac", &[("task", "1")]),
            Some(0.95)
        );
        // Phase and KV edges fire once per crossing, with hysteresis:
        // share 0.4 does not re-enter prefill, 0.6 does; occupancy 0.8
        // does not release pressure, 0.6 does.
        for (p, share, kv) in [(0, 0.9, 0.2), (1, 0.1, 0.95), (2, 0.4, 0.8), (3, 0.6, 0.6)] {
            tm.on_llm_period(p, 4.0 * (p + 1) as f64, 0, share, kv);
        }
        assert_eq!(tm.journal().of_kind("phase_transition").count(), 2);
        assert_eq!(tm.journal().of_kind("kv_pressure").count(), 2);
    }

    #[test]
    fn report_texts_are_deterministic_and_separated() {
        let mut tm = telemetry();
        let targets = [2000.0, 1000.0, 1000.0];
        tm.on_period(&obs(0, &targets, 0));
        let report = tm.report();
        let text = report.deterministic_text();
        assert!(text.contains("capgpu_periods_total"));
        assert_eq!(text, tm.report().deterministic_text());
        assert!(report
            .prometheus_text()
            .contains("# TYPE capgpu_periods_total counter"));
        assert!(report.wall_clock_text().is_none());
    }
}
