//! The throughput-driven weight assignment algorithm (paper §1, §4.3).
//!
//! "We propose a novel weight assignment algorithm that monitors the
//! inference throughput of each GPU and the CPU in real time and gives
//! higher weights to CPU/GPU with higher throughput, so that they can run
//! at higher frequencies. … the controller can assign larger weights to
//! busier components by normalizing and inverting their throughput."
//!
//! Semantics in this implementation: a device's *importance* `w_j` is its
//! normalized throughput (∈ [0, 1]); the MPC control-penalty weight passed
//! to [`capgpu_control::mpc::MpcController::step`] is the **inverted**
//! importance `R_j ∝ ε + 1 − w_j`. Devices carrying more work are
//! penalized less for running above the reference (minimum) frequency and
//! therefore settle higher — at an interior optimum device `j`'s excess
//! frequency is proportional to `A_j / R_j` (see the MPC module docs).
//!
//! ## Phase-aware extension (LLM serving)
//!
//! Throughput alone is phase-blind: a decode-bound LLM device completes
//! requests lumpily (every resident request drains over hundreds of
//! decode steps), so its normalized completion throughput reads low and
//! the assigner parks it near the floor — yet the decode regime is
//! memory-bound, so the frequency cut recovers almost no power while
//! inflating inter-token latency and stalling co-resident prefills
//! ("The Illusion of Power Capping in LLM Decode", PAPERS.md). When the
//! serving layer reports a per-device [`PhaseMix`], the assigner scales
//! the inverted importance by a *cap-elasticity* factor
//! `e_j = (floor + (1 − floor) · prefill_share_j) · (1 − kv_guard · kv_j)`:
//! decode-dominated devices (low prefill share) and devices under KV-cache
//! pressure get penalties pulled toward `ε`, keeping them fast, while the
//! MPC sheds the cap's burden on prefill-elastic devices where a MHz
//! actually buys watts. A neutral mix (`prefill_share = 1`, `kv = 0`)
//! leaves `e_j = 1`, recovering the phase-blind weights exactly.

/// Per-device serving-phase mix for one control period — the signal the
/// LLM layer feeds into weight assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseMix {
    /// Fraction of the device's busy time spent in compute-bound
    /// prefill (∈ [0, 1]); the rest is memory-bound decode.
    pub prefill_share: f64,
    /// KV-cache occupancy as a fraction of the budget (∈ [0, 1]).
    pub kv_occupancy: f64,
    /// Tokens processed per second (prefill + decode) — recorded for
    /// telemetry/diagnostics, not used in the penalty itself.
    pub tokens_per_s: f64,
}

impl PhaseMix {
    /// The neutral mix: fully prefill (cap-elastic), empty cache. With
    /// this value the phase-aware penalty equals the phase-blind one,
    /// so non-LLM devices (the CPU, idle GPUs) pass through unchanged.
    pub fn neutral() -> Self {
        PhaseMix {
            prefill_share: 1.0,
            kv_occupancy: 0.0,
            tokens_per_s: 0.0,
        }
    }
}

/// Weight assigner configuration.
#[derive(Debug, Clone)]
pub struct WeightAssigner {
    /// Floor added to the inverted weight so a fully-busy device
    /// (normalized throughput = 1) still carries a positive penalty —
    /// keeps the MPC Hessian strictly positive definite.
    pub epsilon: f64,
    /// When `false`, all devices get weight 1 (ablation switch).
    pub enabled: bool,
    /// When `false`, [`WeightAssigner::control_penalties_with_phase`]
    /// ignores the phase mix — the phase-blind ablation arm.
    pub phase_aware: bool,
    /// Cap-elasticity floor: a pure-decode device keeps this fraction
    /// of its phase-blind penalty (never fully immune to the cap).
    pub phase_floor: f64,
    /// How strongly KV-cache pressure shrinks the penalty: at full
    /// occupancy the elasticity is scaled by `1 − kv_guard`.
    pub kv_guard: f64,
}

impl Default for WeightAssigner {
    fn default() -> Self {
        WeightAssigner {
            epsilon: 0.1,
            enabled: true,
            phase_aware: true,
            phase_floor: 0.15,
            kv_guard: 0.5,
        }
    }
}

impl WeightAssigner {
    /// Creates a disabled (uniform-weight) assigner for ablations.
    pub fn disabled() -> Self {
        WeightAssigner {
            enabled: false,
            ..WeightAssigner::default()
        }
    }

    /// Creates a phase-blind assigner: throughput inversion only, the
    /// ablation arm that shows why the phase signal matters.
    pub fn phase_blind() -> Self {
        WeightAssigner {
            phase_aware: false,
            ..WeightAssigner::default()
        }
    }

    /// Maps normalized throughputs (∈ [0, 1] per device) to per-device MPC
    /// control-penalty weights `R_j = ε + 1 − w_j`.
    ///
    /// Devices that have not yet reported any throughput (0) get the
    /// maximum penalty `ε + 1` — they are parked near the reference
    /// frequency until they prove busy, which is the conservative choice
    /// under a power cap.
    pub fn control_penalties(&self, normalized_throughput: &[f64]) -> Vec<f64> {
        if !self.enabled {
            return vec![1.0; normalized_throughput.len()];
        }
        normalized_throughput
            .iter()
            .map(|w| self.epsilon + 1.0 - w.clamp(0.0, 1.0))
            .collect()
    }

    /// Cap-elasticity factor for one device's phase mix:
    /// `(floor + (1 − floor) · prefill_share) · (1 − kv_guard · kv)`,
    /// clamped into `(0, 1]`. The neutral mix maps to exactly 1.
    fn elasticity(&self, mix: &PhaseMix) -> f64 {
        let share = mix.prefill_share.clamp(0.0, 1.0);
        let kv = mix.kv_occupancy.clamp(0.0, 1.0);
        let e = (self.phase_floor + (1.0 - self.phase_floor) * share) * (1.0 - self.kv_guard * kv);
        e.clamp(f64::EPSILON, 1.0)
    }

    /// Phase-aware penalties: the inverted importance `1 − w_j` is
    /// scaled by the device's cap-elasticity before the `ε` floor is
    /// added, `R_j = ε + (1 − w_j) · e_j`.
    ///
    /// `phase_mix` is `None` (or the assigner is phase-blind) → falls
    /// back to [`WeightAssigner::control_penalties`] exactly, so the
    /// one-shot serving and pipeline plants are untouched. A `Some` mix
    /// must be device-indexed and the same length as the throughputs.
    pub fn control_penalties_with_phase(
        &self,
        normalized_throughput: &[f64],
        phase_mix: Option<&[PhaseMix]>,
    ) -> Vec<f64> {
        let Some(mix) = phase_mix else {
            return self.control_penalties(normalized_throughput);
        };
        if !self.enabled || !self.phase_aware {
            return self.control_penalties(normalized_throughput);
        }
        debug_assert_eq!(mix.len(), normalized_throughput.len());
        normalized_throughput
            .iter()
            .zip(mix.iter())
            .map(|(w, m)| {
                let e = self.elasticity(m);
                let w = w.clamp(0.0, 1.0);
                if e == 1.0 {
                    // Bit-exact phase-blind recovery on the neutral mix
                    // (`ε + (1 − w) · 1` rounds differently).
                    self.epsilon + 1.0 - w
                } else {
                    self.epsilon + (1.0 - w) * e
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busier_devices_get_smaller_penalties() {
        let wa = WeightAssigner::default();
        let r = wa.control_penalties(&[1.0, 0.5, 0.0]);
        assert!(r[0] < r[1] && r[1] < r[2], "{r:?}");
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[2] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn penalties_always_positive() {
        let wa = WeightAssigner::default();
        for w in [0.0, 0.5, 1.0, 2.0, -1.0] {
            let r = wa.control_penalties(&[w]);
            assert!(r[0] > 0.0, "weight {w} gave penalty {}", r[0]);
        }
    }

    #[test]
    fn out_of_range_throughput_clamped() {
        let wa = WeightAssigner::default();
        let r = wa.control_penalties(&[5.0, -3.0]);
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[1] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn disabled_gives_uniform() {
        let wa = WeightAssigner::disabled();
        assert_eq!(wa.control_penalties(&[0.1, 0.9, 0.5]), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_input() {
        let wa = WeightAssigner::default();
        assert!(wa.control_penalties(&[]).is_empty());
    }

    #[test]
    fn neutral_phase_mix_recovers_phase_blind_penalties() {
        let wa = WeightAssigner::default();
        let thr = [0.9, 0.4, 0.0];
        let neutral = vec![PhaseMix::neutral(); 3];
        assert_eq!(
            wa.control_penalties_with_phase(&thr, Some(&neutral)),
            wa.control_penalties(&thr)
        );
        assert_eq!(
            wa.control_penalties_with_phase(&thr, None),
            wa.control_penalties(&thr)
        );
    }

    #[test]
    fn decode_bound_devices_get_smaller_penalties_at_equal_throughput() {
        let wa = WeightAssigner::default();
        let thr = [0.5, 0.5];
        let mix = [
            PhaseMix {
                prefill_share: 0.9,
                kv_occupancy: 0.0,
                tokens_per_s: 1000.0,
            },
            PhaseMix {
                prefill_share: 0.1,
                kv_occupancy: 0.0,
                tokens_per_s: 1000.0,
            },
        ];
        let r = wa.control_penalties_with_phase(&thr, Some(&mix));
        // The decode-bound device is kept fast: smaller penalty.
        assert!(r[1] < r[0], "{r:?}");
        // But never below the epsilon floor.
        assert!(r[1] > wa.epsilon, "{r:?}");
    }

    #[test]
    fn kv_pressure_shrinks_the_penalty_further() {
        let wa = WeightAssigner::default();
        let thr = [0.5, 0.5];
        let mk = |kv| PhaseMix {
            prefill_share: 0.5,
            kv_occupancy: kv,
            tokens_per_s: 500.0,
        };
        let relaxed = wa.control_penalties_with_phase(&thr, Some(&[mk(0.0), mk(0.0)]));
        let pressured = wa.control_penalties_with_phase(&thr, Some(&[mk(0.0), mk(0.95)]));
        assert!(pressured[1] < relaxed[1], "{pressured:?} vs {relaxed:?}");
        assert!(pressured[1] > 0.0);
    }

    #[test]
    fn phase_blind_assigner_ignores_the_mix() {
        let wa = WeightAssigner::phase_blind();
        let thr = [0.5, 0.5];
        let mix = [
            PhaseMix {
                prefill_share: 1.0,
                kv_occupancy: 0.0,
                tokens_per_s: 0.0,
            },
            PhaseMix {
                prefill_share: 0.0,
                kv_occupancy: 1.0,
                tokens_per_s: 0.0,
            },
        ];
        assert_eq!(
            wa.control_penalties_with_phase(&thr, Some(&mix)),
            wa.control_penalties(&thr)
        );
    }

    #[test]
    fn phase_penalties_clamp_out_of_range_mixes() {
        let wa = WeightAssigner::default();
        let thr = [0.0];
        let wild = [PhaseMix {
            prefill_share: 7.0,
            kv_occupancy: -2.0,
            tokens_per_s: f64::NAN,
        }];
        let r = wa.control_penalties_with_phase(&thr, Some(&wild));
        // Clamps to the neutral mix: identical to phase-blind.
        assert_eq!(r, wa.control_penalties(&thr));
    }
}
