//! The throughput-driven weight assignment algorithm (paper §1, §4.3).
//!
//! "We propose a novel weight assignment algorithm that monitors the
//! inference throughput of each GPU and the CPU in real time and gives
//! higher weights to CPU/GPU with higher throughput, so that they can run
//! at higher frequencies. … the controller can assign larger weights to
//! busier components by normalizing and inverting their throughput."
//!
//! Semantics in this implementation: a device's *importance* `w_j` is its
//! normalized throughput (∈ [0, 1]); the MPC control-penalty weight passed
//! to [`capgpu_control::mpc::MpcController::step`] is the **inverted**
//! importance `R_j ∝ ε + 1 − w_j`. Devices carrying more work are
//! penalized less for running above the reference (minimum) frequency and
//! therefore settle higher — at an interior optimum device `j`'s excess
//! frequency is proportional to `A_j / R_j` (see the MPC module docs).

/// Weight assigner configuration.
#[derive(Debug, Clone)]
pub struct WeightAssigner {
    /// Floor added to the inverted weight so a fully-busy device
    /// (normalized throughput = 1) still carries a positive penalty —
    /// keeps the MPC Hessian strictly positive definite.
    pub epsilon: f64,
    /// When `false`, all devices get weight 1 (ablation switch).
    pub enabled: bool,
}

impl Default for WeightAssigner {
    fn default() -> Self {
        WeightAssigner {
            epsilon: 0.1,
            enabled: true,
        }
    }
}

impl WeightAssigner {
    /// Creates a disabled (uniform-weight) assigner for ablations.
    pub fn disabled() -> Self {
        WeightAssigner {
            epsilon: 0.1,
            enabled: false,
        }
    }

    /// Maps normalized throughputs (∈ [0, 1] per device) to per-device MPC
    /// control-penalty weights `R_j = ε + 1 − w_j`.
    ///
    /// Devices that have not yet reported any throughput (0) get the
    /// maximum penalty `ε + 1` — they are parked near the reference
    /// frequency until they prove busy, which is the conservative choice
    /// under a power cap.
    pub fn control_penalties(&self, normalized_throughput: &[f64]) -> Vec<f64> {
        if !self.enabled {
            return vec![1.0; normalized_throughput.len()];
        }
        normalized_throughput
            .iter()
            .map(|w| self.epsilon + 1.0 - w.clamp(0.0, 1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busier_devices_get_smaller_penalties() {
        let wa = WeightAssigner::default();
        let r = wa.control_penalties(&[1.0, 0.5, 0.0]);
        assert!(r[0] < r[1] && r[1] < r[2], "{r:?}");
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[2] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn penalties_always_positive() {
        let wa = WeightAssigner::default();
        for w in [0.0, 0.5, 1.0, 2.0, -1.0] {
            let r = wa.control_penalties(&[w]);
            assert!(r[0] > 0.0, "weight {w} gave penalty {}", r[0]);
        }
    }

    #[test]
    fn out_of_range_throughput_clamped() {
        let wa = WeightAssigner::default();
        let r = wa.control_penalties(&[5.0, -3.0]);
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[1] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn disabled_gives_uniform() {
        let wa = WeightAssigner::disabled();
        assert_eq!(wa.control_penalties(&[0.1, 0.9, 0.5]), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_input() {
        let wa = WeightAssigner::default();
        assert!(wa.control_penalties(&[]).is_empty());
    }
}
