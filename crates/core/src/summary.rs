//! End-of-run summaries — the aggregates the paper's figures report.

use crate::runner::RunTrace;

/// Aggregate summary of one run (the quantities behind Figs. 6–9).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Controller name.
    pub controller: String,
    /// Final set point (W).
    pub setpoint: f64,
    /// Steady-state mean power over the trailing 80% of periods (W).
    pub power_mean: f64,
    /// Steady-state power standard deviation (W).
    pub power_std: f64,
    /// |steady-state mean − set point| (W) — the Fig. 6 accuracy metric.
    pub tracking_error: f64,
    /// Periods with power above the set point (+2 W tolerance).
    pub violations: usize,
    /// First period after which power stays within ±2% of the set point.
    pub settling_period: Option<usize>,
    /// Steady-state per-task GPU throughput (img/s).
    pub gpu_throughput: Vec<f64>,
    /// Steady-state CPU throughput (subsets/s).
    pub cpu_throughput: f64,
    /// Steady-state per-task mean batch latency (s).
    pub gpu_latency: Vec<f64>,
    /// Final per-task deadline miss rates.
    pub miss_rates: Vec<f64>,
}

impl RunSummary {
    /// Builds the summary from a trace using the paper's conventions
    /// (steady state = last 80% of periods; violation tolerance 2 W;
    /// settling band ±2% of the set point).
    pub fn from_trace(trace: &RunTrace) -> Self {
        let setpoint = trace.records.last().map(|r| r.setpoint).unwrap_or(0.0);
        let (power_mean, power_std) = trace.steady_state_power(0.8);
        let series = trace.power_series();
        RunSummary {
            controller: trace.controller.clone(),
            setpoint,
            power_mean,
            power_std,
            tracking_error: (power_mean - setpoint).abs(),
            violations: trace.violations(2.0),
            settling_period: capgpu_control::metrics::settling_time(
                &series,
                setpoint,
                0.02 * setpoint,
            ),
            gpu_throughput: trace.steady_gpu_throughput(0.8),
            cpu_throughput: trace.steady_cpu_throughput(0.8),
            gpu_latency: trace.steady_gpu_latency(0.8),
            miss_rates: trace.miss_rates.clone(),
        }
    }

    /// One-line report row: name, mean ± std, error, violations.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>8.1} ± {:>5.1} W  err {:>6.2} W  viol {:>3}  settle {}",
            self.controller,
            self.power_mean,
            self.power_std,
            self.tracking_error,
            self.violations,
            self.settling_period
                .map(|p| p.to_string())
                .unwrap_or_else(|| "never".to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PeriodRecord;

    fn record(period: usize, power: f64, setpoint: f64) -> PeriodRecord {
        PeriodRecord {
            period,
            setpoint,
            avg_power: power,
            targets: vec![],
            applied_mean: vec![],
            gpu_throughput: vec![10.0],
            cpu_throughput: 100.0,
            gpu_mean_latency: vec![0.1],
            slo: vec![None],
            slo_misses: vec![0],
            batches: vec![5],
            floors: vec![435.0],
            memory_escape_active: false,
            supervisor_tier: 0,
            meter_stale: false,
            solve_ns: 0,
            actuate_ns: 0,
        }
    }

    fn trace(powers: &[f64], setpoint: f64) -> RunTrace {
        RunTrace {
            controller: "test".into(),
            records: powers
                .iter()
                .enumerate()
                .map(|(i, &p)| record(i, p, setpoint))
                .collect(),
            miss_rates: vec![0.0],
            p99_latency_s: vec![0.0],
            ttft_p99_s: vec![],
            itl_p99_s: vec![],
            ttft_miss_rates: vec![],
            itl_miss_rates: vec![],
        }
    }

    #[test]
    fn summary_math() {
        let mut powers = vec![700.0, 800.0];
        powers.extend(std::iter::repeat_n(900.0, 8));
        let t = trace(&powers, 900.0);
        let s = RunSummary::from_trace(&t);
        assert_eq!(s.power_mean, 900.0);
        assert_eq!(s.power_std, 0.0);
        assert_eq!(s.tracking_error, 0.0);
        assert_eq!(s.violations, 0);
        assert_eq!(s.settling_period, Some(2));
        assert!(s.row().contains("test"));
    }

    #[test]
    fn violations_counted() {
        let t = trace(&[905.0, 899.0, 910.0], 900.0);
        let s = RunSummary::from_trace(&t);
        assert_eq!(s.violations, 2);
    }

    #[test]
    fn empty_trace() {
        let t = trace(&[], 0.0);
        let s = RunSummary::from_trace(&t);
        assert_eq!(s.power_mean, 0.0);
        assert_eq!(s.settling_period, None);
    }
}
