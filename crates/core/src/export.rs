//! Trace export: CSV serialization of [`RunTrace`] for re-plotting the
//! paper's figures with external tooling.
//!
//! Layout: one row per control period with flattened per-device and
//! per-task columns, so the file loads directly into pandas/gnuplot.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::runner::RunTrace;

/// Renders a trace as CSV (header + one row per period).
pub fn trace_to_csv(trace: &RunTrace) -> String {
    let mut out = String::new();
    let (n_dev, n_task) = trace
        .records
        .first()
        .map(|r| (r.targets.len(), r.gpu_throughput.len()))
        .unwrap_or((0, 0));

    // Supervisor/fault columns only appear when the trace carries fault
    // evidence — an all-healthy trace (every published figure) keeps the
    // exact pre-fault column set, byte for byte.
    let fault_cols = trace
        .records
        .iter()
        .any(|r| r.supervisor_tier != 0 || r.meter_stale);

    // Span-timing columns appear only when telemetry span tracing was on
    // (any nonzero wall time) — the default trace keeps the published
    // column set byte for byte, same gating idea as the fault columns.
    let span_cols = trace
        .records
        .iter()
        .any(|r| r.solve_ns != 0 || r.actuate_ns != 0);

    // Header.
    out.push_str("period,setpoint_w,power_w,cpu_throughput,mem_escape");
    for d in 0..n_dev {
        let _ = write!(out, ",target_mhz_{d},applied_mhz_{d}");
    }
    for t in 0..n_task {
        let _ = write!(
            out,
            ",thr_img_s_t{t},lat_s_t{t},slo_s_t{t},misses_t{t},batches_t{t},floor_mhz_t{t}"
        );
    }
    if fault_cols {
        out.push_str(",supervisor_tier,meter_stale");
    }
    if span_cols {
        out.push_str(",solve_ns,actuate_ns");
    }
    out.push('\n');

    for r in &trace.records {
        let _ = write!(
            out,
            "{},{:.3},{:.3},{:.3},{}",
            r.period, r.setpoint, r.avg_power, r.cpu_throughput, r.memory_escape_active as u8
        );
        for d in 0..n_dev {
            let _ = write!(out, ",{:.3},{:.3}", r.targets[d], r.applied_mean[d]);
        }
        for t in 0..n_task {
            let _ = write!(
                out,
                ",{:.4},{:.6},{},{},{},{:.1}",
                r.gpu_throughput[t],
                r.gpu_mean_latency[t],
                r.slo[t].map(|s| format!("{s:.6}")).unwrap_or_default(),
                r.slo_misses[t],
                r.batches[t],
                // Floors are per *device*; task t maps to GPU device — the
                // trace stores the full device vector, find the GPU slice
                // offset (devices = CPUs then GPUs by convention).
                r.floors[r.floors.len() - n_task + t],
            );
        }
        if fault_cols {
            let _ = write!(out, ",{},{}", r.supervisor_tier, r.meter_stale as u8);
        }
        if span_cols {
            let _ = write!(out, ",{},{}", r.solve_ns, r.actuate_ns);
        }
        out.push('\n');
    }
    out
}

/// Writes the trace CSV to a file.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_trace_csv(trace: &RunTrace, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, trace_to_csv(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scenario;
    use crate::runner::ExperimentRunner;

    #[test]
    fn csv_roundtrip_shape() {
        let mut runner = ExperimentRunner::new(Scenario::paper_testbed(3), 900.0).unwrap();
        let controller = runner.build_capgpu_controller().unwrap();
        let trace = runner.run(controller, 10).unwrap();
        let csv = trace_to_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11, "header + 10 periods");
        let header_cols = lines[0].split(',').count();
        for (i, line) in lines.iter().enumerate().skip(1) {
            assert_eq!(line.split(',').count(), header_cols, "row {i} column count");
        }
        assert!(lines[0].starts_with("period,setpoint_w,power_w"));
        assert!(lines[0].contains("floor_mhz_t2"));
        // First data row starts with period 0 and the 900 W set point.
        assert!(lines[1].starts_with("0,900.000"));
    }

    #[test]
    fn fault_columns_are_gated() {
        // Healthy trace: no supervisor columns (published CSVs are
        // byte-stable across the faults feature).
        let mut runner = ExperimentRunner::new(Scenario::paper_testbed(3), 900.0).unwrap();
        let controller = runner.build_capgpu_controller().unwrap();
        let healthy = runner.run(controller, 5).unwrap();
        assert!(!trace_to_csv(&healthy).contains("supervisor_tier"));

        // Storm trace: tier/stale columns appear on every row.
        let scenario = Scenario::fault_testbed(7)
            .with_supervisor(crate::supervisor::SupervisorConfig::default());
        let mut runner = ExperimentRunner::new(scenario, 1000.0).unwrap();
        let controller = runner.build_capgpu_controller().unwrap();
        let stormy = runner.run(controller, 30).unwrap();
        let csv = trace_to_csv(&stormy);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with(",supervisor_tier,meter_stale"));
        let header_cols = lines[0].split(',').count();
        assert!(lines[1..]
            .iter()
            .all(|l| l.split(',').count() == header_cols));
    }

    #[test]
    fn telemetry_keeps_csv_byte_identical_until_spans_opt_in() {
        use capgpu_telemetry::TelemetryConfig;

        // Telemetry on (deterministic config): published CSV bytes are
        // unchanged — recording must never perturb the simulation, and
        // the solve/actuate columns stay gated off while every span
        // timing is zero.
        let mut plain = ExperimentRunner::new(Scenario::paper_testbed(3), 900.0).unwrap();
        let controller = plain.build_capgpu_controller().unwrap();
        let off = plain.run(controller, 8).unwrap();

        let scenario = Scenario::paper_testbed(3).with_telemetry(TelemetryConfig::deterministic());
        let mut runner = ExperimentRunner::new(scenario, 900.0).unwrap();
        let controller = runner.build_capgpu_controller().unwrap();
        let on = runner.run(controller, 8).unwrap();
        assert_eq!(trace_to_csv(&off), trace_to_csv(&on));
        assert!(!trace_to_csv(&on).contains("solve_ns"));

        // Span tracing opted in: the gated columns appear on every row.
        let scenario = Scenario::paper_testbed(3).with_telemetry(TelemetryConfig::with_spans());
        let mut runner = ExperimentRunner::new(scenario, 900.0).unwrap();
        let controller = runner.build_capgpu_controller().unwrap();
        let traced = runner.run(controller, 8).unwrap();
        let csv = trace_to_csv(&traced);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with(",solve_ns,actuate_ns"));
        let header_cols = lines[0].split(',').count();
        assert!(lines[1..]
            .iter()
            .all(|l| l.split(',').count() == header_cols));
    }

    #[test]
    fn csv_file_write() {
        let mut runner = ExperimentRunner::new(Scenario::paper_testbed(4), 900.0).unwrap();
        let controller = runner.build_capgpu_controller().unwrap();
        let trace = runner.run(controller, 5).unwrap();
        let path = std::env::temp_dir().join("capgpu_trace_test.csv");
        write_trace_csv(&trace, &path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, trace_to_csv(&trace));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_trace() {
        let trace = RunTrace {
            controller: "x".into(),
            records: vec![],
            miss_rates: vec![],
            p99_latency_s: vec![],
            ttft_p99_s: vec![],
            itl_p99_s: vec![],
            ttft_miss_rates: vec![],
            itl_miss_rates: vec![],
        };
        let csv = trace_to_csv(&trace);
        assert_eq!(csv.lines().count(), 1); // header only
    }
}
