//! `capgpud` — the live-serving power-capping control daemon.
//!
//! This module lifts the experiment runner's control loop out of the
//! experiment harness and onto the [`PowerBackend`] seam, so the same
//! identify → MPC → supervisor ladder that reproduces the paper's
//! figures can regulate a *live* server: the daemon senses and actuates
//! exclusively through a boxed backend, never through the simulator
//! directly. Against [`SimBackend`] every run is byte-deterministic
//! (the dry-run golden in `results/capgpud.txt` pins this); against
//! [`NvmlBackend`](capgpu_backend::NvmlBackend) /
//! [`CpufreqBackend`](capgpu_backend::CpufreqBackend) the identical
//! loop drives real clocks.
//!
//! Pieces:
//!
//! * [`DaemonConfig`] — operator-facing TOML configuration (parsed by a
//!   dependency-free subset parser), hot-reloadable set-point.
//! * [`Daemon`] — the control loop: excitation-plan identification,
//!   per-period MPC with throughput weights, streaming RLS warm-start
//!   refits, and the supervisor failover ladder
//!   (primary → safe fixed-step → park-at-floors).
//! * [`MetricsServer`] — a dependency-free HTTP listener exposing
//!   Prometheus text over `GET /metrics`.
//! * [`ReloadSignal`] / [`ConfigWatcher`] — SIGHUP and config-mtime
//!   triggers for set-point hot reload.
//!
//! Every journal event is stamped with the backend's wall clock when it
//! offers one ([`PowerBackend::wall_clock_unix_ms`]); deterministic
//! backends return `None`, which keeps sim-mode JSONL byte-identical
//! across reruns and safe to golden-check in CI.

use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use capgpu_backend::{MockBackend, PowerBackend, SimBackend};
use capgpu_control::model::LinearPowerModel;
use capgpu_control::sysid::{ExcitationPlan, ScaledModelTracker, SystemIdentifier};
use capgpu_obs::analyzer::{AnalyzerConfig, HealthAnalyzer, PeriodSample, DETECTORS};
use capgpu_obs::replay::{format_targets, ReplayState};
use capgpu_obs::rotate::{JournalWriter, RotationConfig};
use capgpu_sim::{presets, ServerBuilder};
use capgpu_telemetry::journal::{Event, Journal};
use capgpu_telemetry::registry::{CounterId, GaugeId, Registry, Snapshot};
use capgpu_workload::monitor::{normalized_throughputs, ThroughputMonitor};

use crate::controllers::{
    CapGpuController, ControlInput, DeviceLayout, PowerController, SafeFixedStepController,
};
use crate::supervisor::{HealthSample, Supervisor, SupervisorConfig, SupervisorTier};
use crate::weights::WeightAssigner;
use crate::{CapGpuError, Result};

/// Relative deadband on the tracked gain scale below which a refit is
/// not pushed to the controller (mirrors the runner's deadband — see
/// DESIGN.md §10).
const SCALE_PUSH_DEADBAND: f64 = 0.05;

// ---------------------------------------------------------------------
// Minimal TOML subset parser
// ---------------------------------------------------------------------

/// A parsed TOML value (subset: strings, integers, floats, booleans).
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
        }
    }
}

/// A flat `section.key → value` document. Supports `[section]` headers,
/// `key = value` pairs, `#` comments, quoted strings with `\"`/`\\`/`\n`
/// escapes, integers, floats, and booleans — the subset a daemon config
/// needs, with no external dependency. Later duplicates win, so a
/// snippet appended to a config overrides it.
#[derive(Debug, Default)]
struct TomlDoc {
    entries: Vec<(String, TomlValue)>,
}

impl TomlDoc {
    fn parse(src: &str) -> std::result::Result<Self, String> {
        let mut doc = TomlDoc::default();
        let mut section = String::new();
        for (lineno, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let n = lineno + 1;
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {n}: unterminated section header"))?
                    .trim();
                if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Err(format!("line {n}: bad section name `{name}`"));
                }
                section = name.to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {n}: expected `key = value`"))?;
            let key = key.trim();
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("line {n}: bad key `{key}`"));
            }
            let full = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            let value = parse_value(value.trim()).map_err(|e| format!("line {n}: {e}"))?;
            doc.entries.push((full, value));
        }
        Ok(doc)
    }

    /// Last-wins lookup.
    fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    fn str_opt(&self, key: &str) -> std::result::Result<Option<String>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(TomlValue::Str(s)) => Ok(Some(s.clone())),
            Some(v) => Err(format!("{key}: expected string, got {}", v.type_name())),
        }
    }

    fn f64_opt(&self, key: &str) -> std::result::Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(TomlValue::Float(v)) => Ok(Some(*v)),
            Some(TomlValue::Int(v)) => Ok(Some(*v as f64)),
            Some(v) => Err(format!("{key}: expected number, got {}", v.type_name())),
        }
    }

    fn u64_opt(&self, key: &str) -> std::result::Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(TomlValue::Int(v)) if *v >= 0 => Ok(Some(*v as u64)),
            Some(TomlValue::Int(v)) => Err(format!("{key}: must be >= 0, got {v}")),
            Some(v) => Err(format!("{key}: expected integer, got {}", v.type_name())),
        }
    }

    fn bool_opt(&self, key: &str) -> std::result::Result<Option<bool>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(TomlValue::Bool(v)) => Ok(Some(*v)),
            Some(v) => Err(format!("{key}: expected boolean, got {}", v.type_name())),
        }
    }
}

/// Strips a `#` comment, honoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> std::result::Result<TomlValue, String> {
    if v.is_empty() {
        return Err("missing value".to_string());
    }
    if let Some(rest) = v.strip_prefix('"') {
        let body = rest
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '"' {
                return Err("unescaped quote inside string".to_string());
            }
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("bad string escape `\\{}`", other.unwrap_or(' '))),
            }
        }
        return Ok(TomlValue::Str(out));
    }
    match v {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let plain = v.replace('_', "");
    if !v.contains('.') && !v.contains('e') && !v.contains('E') {
        if let Ok(i) = plain.parse::<i64>() {
            return Ok(TomlValue::Int(i));
        }
    }
    if let Ok(f) = plain.parse::<f64>() {
        if f.is_finite() {
            return Ok(TomlValue::Float(f));
        }
    }
    Err(format!("unparseable value `{v}`"))
}

// ---------------------------------------------------------------------
// DaemonConfig
// ---------------------------------------------------------------------

/// Operator-facing daemon configuration.
///
/// Parsed from a TOML subset (see [`DaemonConfig::from_toml_str`]);
/// every field has a sensible default, so an empty config is valid.
/// Only `setpoint_watts` is hot-reloadable at runtime (via
/// [`Daemon::apply_reload`]) — everything else requires a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Which backend to drive: `"sim"` or `"mock"` (live backends are
    /// constructed by the operator and passed to [`Daemon::new`]).
    pub backend: String,
    /// Server power set-point (W).
    pub setpoint_watts: f64,
    /// Control period (s) — sense/actuate cadence, the paper's `T`.
    pub control_period_s: u64,
    /// TCP port for the Prometheus listener (`0` = ephemeral); `None`
    /// disables the listener.
    pub metrics_port: Option<u16>,
    /// Where to write the JSONL journal on exit; `None` = stdout only.
    pub journal_path: Option<PathBuf>,
    /// Directory for the rotating durable journal (crash-recovery
    /// replay source); `None` disables durable journaling.
    pub journal_dir: Option<PathBuf>,
    /// Rotating-journal segment size bound (KiB).
    pub journal_max_segment_kib: u64,
    /// Rotating-journal segment age bound on the record clock (s).
    pub journal_max_segment_age_s: f64,
    /// Rotating-journal retention bound (segments).
    pub journal_retain_segments: usize,
    /// Excitation steps per device during identification.
    pub sysid_steps_per_device: usize,
    /// Hold point for non-excited devices, as a fraction of each
    /// device's frequency range.
    pub sysid_hold_fraction: f64,
    /// RLS forgetting factor for streaming refits; `None` disables
    /// continuous tracking.
    pub rls_forgetting: Option<f64>,
    /// Simulated-testbed seed (sim backend only).
    pub sim_seed: u64,
    /// GPU count for the built-in sim/mock testbeds.
    pub sim_gpus: usize,
    /// Constant per-device utilization staged into the sim plant.
    pub sim_utilization: f64,
    /// Supervisor failover thresholds.
    pub supervisor: SupervisorConfig,
}

/// Every key the config parser accepts; anything else is a typo and is
/// rejected loudly rather than silently ignored.
const KNOWN_KEYS: &[&str] = &[
    "daemon.backend",
    "daemon.setpoint_watts",
    "daemon.control_period_s",
    "daemon.metrics_port",
    "daemon.journal_path",
    "journal.dir",
    "journal.max_segment_kib",
    "journal.max_segment_age_s",
    "journal.retain_segments",
    "identify.steps_per_device",
    "identify.hold_fraction",
    "identify.rls",
    "identify.rls_forgetting",
    "sim.seed",
    "sim.gpus",
    "sim.utilization",
    "supervisor.stale_fallback_periods",
    "supervisor.stale_park_periods",
    "supervisor.authority_window",
    "supervisor.authority_min_ratio",
    "supervisor.authority_min_excitation_w",
    "supervisor.recovery_periods",
    "supervisor.psu_margin_watts",
];

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig::default_sim()
    }
}

impl DaemonConfig {
    /// Defaults matching the paper's testbed: a 2-GPU sim server at a
    /// 900 W set-point with a 4 s control period and RLS tracking on.
    pub fn default_sim() -> Self {
        DaemonConfig {
            backend: "sim".to_string(),
            setpoint_watts: 900.0,
            control_period_s: 4,
            metrics_port: None,
            journal_path: None,
            journal_dir: None,
            journal_max_segment_kib: 64,
            journal_max_segment_age_s: 3600.0,
            journal_retain_segments: 8,
            sysid_steps_per_device: 6,
            sysid_hold_fraction: 0.5,
            rls_forgetting: Some(0.98),
            sim_seed: 42,
            sim_gpus: 2,
            sim_utilization: 0.85,
            supervisor: SupervisorConfig::default(),
        }
    }

    /// Parses a config from TOML text, starting from
    /// [`DaemonConfig::default_sim`] and overriding per key.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on syntax errors, unknown keys, type
    /// mismatches, or out-of-range values.
    pub fn from_toml_str(src: &str) -> Result<Self> {
        let doc = TomlDoc::parse(src).map_err(|e| bad(format!("config: {e}")))?;
        for key in doc.keys() {
            if !KNOWN_KEYS.contains(&key) {
                return Err(bad(format!("config: unknown key `{key}`")));
            }
        }
        let mut cfg = DaemonConfig::default_sim();
        let e = |m: String| bad(format!("config: {m}"));
        if let Some(v) = doc.str_opt("daemon.backend").map_err(e)? {
            cfg.backend = v;
        }
        if let Some(v) = doc.f64_opt("daemon.setpoint_watts").map_err(e)? {
            cfg.setpoint_watts = v;
        }
        if let Some(v) = doc.u64_opt("daemon.control_period_s").map_err(e)? {
            cfg.control_period_s = v;
        }
        if let Some(v) = doc.u64_opt("daemon.metrics_port").map_err(e)? {
            if v > u16::MAX as u64 {
                return Err(bad(format!("config: daemon.metrics_port {v} out of range")));
            }
            cfg.metrics_port = Some(v as u16);
        }
        if let Some(v) = doc.str_opt("daemon.journal_path").map_err(e)? {
            cfg.journal_path = Some(PathBuf::from(v));
        }
        if let Some(v) = doc.str_opt("journal.dir").map_err(e)? {
            cfg.journal_dir = Some(PathBuf::from(v));
        }
        if let Some(v) = doc.u64_opt("journal.max_segment_kib").map_err(e)? {
            cfg.journal_max_segment_kib = v;
        }
        if let Some(v) = doc.f64_opt("journal.max_segment_age_s").map_err(e)? {
            cfg.journal_max_segment_age_s = v;
        }
        if let Some(v) = doc.u64_opt("journal.retain_segments").map_err(e)? {
            cfg.journal_retain_segments = v as usize;
        }
        if let Some(v) = doc.u64_opt("identify.steps_per_device").map_err(e)? {
            cfg.sysid_steps_per_device = v as usize;
        }
        if let Some(v) = doc.f64_opt("identify.hold_fraction").map_err(e)? {
            cfg.sysid_hold_fraction = v;
        }
        if let Some(v) = doc.f64_opt("identify.rls_forgetting").map_err(e)? {
            cfg.rls_forgetting = Some(v);
        }
        if let Some(false) = doc.bool_opt("identify.rls").map_err(e)? {
            cfg.rls_forgetting = None;
        }
        if let Some(v) = doc.u64_opt("sim.seed").map_err(e)? {
            cfg.sim_seed = v;
        }
        if let Some(v) = doc.u64_opt("sim.gpus").map_err(e)? {
            cfg.sim_gpus = v as usize;
        }
        if let Some(v) = doc.f64_opt("sim.utilization").map_err(e)? {
            cfg.sim_utilization = v;
        }
        let sup = &mut cfg.supervisor;
        if let Some(v) = doc
            .u64_opt("supervisor.stale_fallback_periods")
            .map_err(e)?
        {
            sup.stale_fallback_periods = v as usize;
        }
        if let Some(v) = doc.u64_opt("supervisor.stale_park_periods").map_err(e)? {
            sup.stale_park_periods = v as usize;
        }
        if let Some(v) = doc.u64_opt("supervisor.authority_window").map_err(e)? {
            sup.authority_window = v as usize;
        }
        if let Some(v) = doc.f64_opt("supervisor.authority_min_ratio").map_err(e)? {
            sup.authority_min_ratio = v;
        }
        if let Some(v) = doc
            .f64_opt("supervisor.authority_min_excitation_w")
            .map_err(e)?
        {
            sup.authority_min_excitation_w = v;
        }
        if let Some(v) = doc.u64_opt("supervisor.recovery_periods").map_err(e)? {
            sup.recovery_periods = v as usize;
        }
        if let Some(v) = doc.f64_opt("supervisor.psu_margin_watts").map_err(e)? {
            sup.psu_margin_watts = v;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Reads and parses a config file.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| bad(format!("config {}: {e}", path.display())))?;
        Self::from_toml_str(&src)
    }

    /// Validates field ranges.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] with a description.
    pub fn validate(&self) -> Result<()> {
        if !matches!(self.backend.as_str(), "sim" | "mock") {
            return Err(bad(format!(
                "daemon.backend must be \"sim\" or \"mock\", got \"{}\"",
                self.backend
            )));
        }
        if !(self.setpoint_watts.is_finite() && self.setpoint_watts > 0.0) {
            return Err(bad("daemon.setpoint_watts must be finite and > 0".into()));
        }
        if self.control_period_s == 0 {
            return Err(bad("daemon.control_period_s must be >= 1".into()));
        }
        if self.sysid_steps_per_device < 2 {
            return Err(bad("identify.steps_per_device must be >= 2".into()));
        }
        if !(self.sysid_hold_fraction > 0.0 && self.sysid_hold_fraction < 1.0) {
            return Err(bad("identify.hold_fraction must be in (0, 1)".into()));
        }
        if let Some(f) = self.rls_forgetting {
            if !(f > 0.0 && f <= 1.0) {
                return Err(bad("identify.rls_forgetting must be in (0, 1]".into()));
            }
        }
        if self.sim_gpus == 0 {
            return Err(bad("sim.gpus must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.sim_utilization) {
            return Err(bad("sim.utilization must be in [0, 1]".into()));
        }
        self.rotation_config()
            .validate()
            .map_err(|e| bad(format!("config: {e}")))?;
        self.supervisor.validate()
    }

    /// The rotating-journal policy these settings describe.
    pub fn rotation_config(&self) -> RotationConfig {
        RotationConfig {
            max_segment_bytes: self.journal_max_segment_kib.saturating_mul(1024),
            max_segment_age_s: self.journal_max_segment_age_s,
            retain_segments: self.journal_retain_segments,
        }
    }

    /// Builds the configured built-in backend (`"sim"` or `"mock"`).
    /// Live backends (NVML, cpufreq) are probed by the operator and
    /// passed to [`Daemon::new`] directly.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on an unknown backend name; backend
    /// construction errors otherwise.
    pub fn build_backend(&self) -> Result<Box<dyn PowerBackend>> {
        match self.backend.as_str() {
            "sim" => {
                let mut builder =
                    ServerBuilder::new(self.sim_seed).add_device(presets::xeon_gold_5215());
                for _ in 0..self.sim_gpus {
                    builder = builder.add_device(presets::tesla_v100());
                }
                let server = builder.build()?;
                let mut backend = SimBackend::new(server);
                // The simulated plant needs a load; a live plant brings
                // its own. Staged once — utilizations persist across
                // `advance` calls.
                let utils = vec![self.sim_utilization; backend.num_devices()];
                backend.stage_utilizations(&utils)?;
                Ok(Box::new(backend))
            }
            "mock" => Ok(Box::new(MockBackend::testbed(self.sim_gpus)?)),
            other => Err(bad(format!("no built-in backend named \"{other}\""))),
        }
    }
}

fn bad(m: String) -> CapGpuError {
    CapGpuError::BadConfig(m)
}

// ---------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------

/// One control period's outcome, for logs and the dry-run transcript.
#[derive(Debug, Clone)]
pub struct PeriodReport {
    /// Period index (0-based, counted from the end of identification).
    pub period: u64,
    /// Supervisor ladder tier that acted.
    pub tier: SupervisorTier,
    /// Average server power the controller acted on (W).
    pub avg_power_watts: f64,
    /// Set-point after any PSU-derate clamp (W).
    pub effective_setpoint: f64,
    /// Consecutive meter-silent periods at this decision.
    pub stale_periods: usize,
    /// Commanded per-device targets (MHz).
    pub targets_mhz: Vec<f64>,
}

/// Metric handles registered once at construction.
#[derive(Debug)]
struct Metrics {
    power: GaugeId,
    setpoint: GaugeId,
    tier: GaugeId,
    stale: GaugeId,
    periods: CounterId,
    refits: CounterId,
    tier_changes: CounterId,
    journal_errors: CounterId,
    /// Per-detector analyzer verdicts, in `DETECTORS` order.
    health: Vec<GaugeId>,
    health_overall: GaugeId,
}

/// The live-serving control daemon: the paper's control loop over a
/// boxed [`PowerBackend`].
///
/// Lifecycle: [`Daemon::new`] → [`Daemon::identify`] →
/// [`Daemon::step_period`] (or [`Daemon::run_periods`]) in a timer
/// loop, with [`Daemon::apply_reload`] on SIGHUP/config change and
/// [`Daemon::prometheus_text`] published to the metrics listener.
pub struct Daemon {
    cfg: DaemonConfig,
    backend: Box<dyn PowerBackend>,
    layout: DeviceLayout,
    primary: Option<CapGpuController>,
    fallback: Option<SafeFixedStepController>,
    supervisor: Option<Supervisor>,
    tracker: Option<ScaledModelTracker>,
    /// Gain scale last pushed to the primary controller.
    pushed_scale: f64,
    monitors: Vec<ThroughputMonitor>,
    journal: Journal,
    /// Rotating durable journal (crash-recovery replay source), when
    /// `journal_dir` is configured.
    writer: Option<JournalWriter>,
    /// Streaming control-loop health detectors.
    analyzer: HealthAnalyzer,
    /// Last published quarantine flags (for edge-triggered journaling).
    prev_quarantined: Vec<bool>,
    registry: Registry,
    metrics: Metrics,
    period: u64,
    sim_time_s: f64,
    /// Targets currently in force (MHz).
    targets: Vec<f64>,
    /// Effective frequencies after the last actuation (MHz).
    applied: Vec<f64>,
    last_avg_watts: f64,
    last_tier: SupervisorTier,
    setpoint_watts: f64,
    // Scratch buffers (the period loop is allocation-light).
    throughput_buf: Vec<f64>,
    device_power_buf: Vec<f64>,
    ejected_buf: Vec<bool>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("backend", &self.backend.name())
            .field("period", &self.period)
            .field("setpoint_watts", &self.setpoint_watts)
            .field("tier", &self.last_tier)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Wraps a backend with the configured control stack. The backend
    /// must be able to actuate frequencies and sense server power.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] on a capability or layout mismatch.
    pub fn new(cfg: DaemonConfig, backend: Box<dyn PowerBackend>) -> Result<Self> {
        cfg.validate()?;
        let caps = backend.capabilities();
        if !caps.set_frequency || !caps.server_power {
            return Err(bad(format!(
                "backend \"{}\" cannot close the loop: needs set_frequency + server_power",
                backend.name()
            )));
        }
        let devices = backend.devices();
        if devices.is_empty() {
            return Err(bad(format!(
                "backend \"{}\" has no devices",
                backend.name()
            )));
        }
        let kinds = devices.iter().map(|d| d.kind).collect();
        let f_min = devices.iter().map(|d| d.f_min_mhz).collect();
        let f_max: Vec<f64> = devices.iter().map(|d| d.f_max_mhz).collect();
        let layout = DeviceLayout::new(kinds, f_min, f_max)?;
        let n = layout.len();
        let mut registry = Registry::new();
        let labels: &[(&str, &str)] = &[("backend", backend.name())];
        let metrics = Metrics {
            power: registry.gauge("capgpud_power_watts", labels),
            setpoint: registry.gauge("capgpud_setpoint_watts", labels),
            tier: registry.gauge("capgpud_tier", labels),
            stale: registry.gauge("capgpud_stale_periods", labels),
            periods: registry.counter("capgpud_periods_total", labels),
            refits: registry.counter("capgpud_refits_total", labels),
            tier_changes: registry.counter("capgpud_tier_changes_total", labels),
            journal_errors: registry.counter("capgpud_journal_errors_total", labels),
            health: DETECTORS
                .iter()
                .map(|det| {
                    registry.gauge(
                        "capgpud_health",
                        &[("backend", backend.name()), ("detector", det)],
                    )
                })
                .collect(),
            health_overall: registry.gauge("capgpud_health_overall", labels),
        };
        registry.set_help(
            "capgpud_power_watts",
            "Average server power over the last control period.",
        );
        registry.set_help("capgpud_setpoint_watts", "Effective power set-point.");
        registry.set_help(
            "capgpud_tier",
            "Supervisor ladder tier (0 primary, 1 safe fallback, 2 park).",
        );
        registry.set_help(
            "capgpud_stale_periods",
            "Consecutive control periods with a silent power meter.",
        );
        registry.set_help("capgpud_periods_total", "Control periods executed.");
        registry.set_help(
            "capgpud_refits_total",
            "RLS model refits pushed to the primary controller.",
        );
        registry.set_help(
            "capgpud_tier_changes_total",
            "Supervisor failover-ladder transitions.",
        );
        registry.set_help(
            "capgpud_journal_errors_total",
            "Durable-journal append failures (journaling is non-fatal).",
        );
        registry.set_help(
            "capgpud_health",
            "Analyzer verdict per detector (0 ok, 1 warn, 2 critical).",
        );
        registry.set_help(
            "capgpud_health_overall",
            "Worst analyzer verdict across detectors (0 ok, 1 warn, 2 critical).",
        );
        let targets = layout.f_max.clone();
        let setpoint_watts = cfg.setpoint_watts;
        let writer = match &cfg.journal_dir {
            Some(dir) => Some(
                JournalWriter::create(dir.clone(), cfg.rotation_config())
                    .map_err(|e| bad(format!("journal: {e}")))?,
            ),
            None => None,
        };
        let analyzer = HealthAnalyzer::new(AnalyzerConfig::default())
            .map_err(|e| bad(format!("analyzer: {e}")))?;
        Ok(Daemon {
            cfg,
            backend,
            layout,
            primary: None,
            fallback: None,
            supervisor: None,
            tracker: None,
            pushed_scale: 1.0,
            monitors: (0..n).map(|_| ThroughputMonitor::new(0.5)).collect(),
            journal: Journal::new(),
            writer,
            analyzer,
            prev_quarantined: vec![false; n],
            registry,
            metrics,
            period: 0,
            sim_time_s: 0.0,
            targets,
            applied: Vec::with_capacity(n),
            last_avg_watts: 0.0,
            last_tier: SupervisorTier::Primary,
            setpoint_watts,
            throughput_buf: Vec::with_capacity(n),
            device_power_buf: vec![0.0; n],
            ejected_buf: vec![false; n],
        })
    }

    /// Journals an event: always in memory, and appended (flushed) to
    /// the rotating durable journal when one is configured. Disk
    /// failures are counted, not fatal — losing a journal line must
    /// never stop actuation.
    fn record(&mut self, event: Event) {
        if let Some(w) = self.writer.as_mut() {
            if w.append(&event.to_json(), event.sim_time_s).is_err() {
                self.registry.inc(self.metrics.journal_errors, 1);
            }
        }
        self.journal.push(event);
    }

    /// Runs the excitation-plan identification sweep through the
    /// backend, fits the linear power model, and builds the control
    /// stack (MPC primary, safe fixed-step fallback, supervisor, and —
    /// when configured — the streaming RLS tracker warm-started with
    /// the sweep's samples).
    ///
    /// # Errors
    /// Propagates excitation, backend, and fitting errors.
    pub fn identify(&mut self) -> Result<()> {
        let frac = self.cfg.sysid_hold_fraction;
        let hold: Vec<f64> = self
            .layout
            .f_min
            .iter()
            .zip(self.layout.f_max.iter())
            .map(|(lo, hi)| lo + frac * (hi - lo))
            .collect();
        let plan = ExcitationPlan::new(
            self.layout.f_min.clone(),
            self.layout.f_max.clone(),
            hold,
            self.cfg.sysid_steps_per_device,
        )
        .map_err(CapGpuError::Control)?;
        let mut ident = SystemIdentifier::new(self.layout.len());
        let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
        for point in plan.points() {
            self.backend.set_frequencies(&point)?;
            self.backend.effective_frequencies_into(&mut self.applied)?;
            let mut power_sum = 0.0;
            let mut samples = 0u32;
            for _ in 0..self.cfg.control_period_s {
                self.sim_time_s += 1.0;
                if let Some(p) = self.backend.advance(1.0)? {
                    power_sum += p;
                    samples += 1;
                }
            }
            if samples > 0 {
                let p_mean = power_sum / f64::from(samples);
                ident.record(&self.applied, p_mean);
                rows.push((self.applied.clone(), p_mean));
            }
        }
        let fitted = ident.fit().map_err(CapGpuError::Control)?;
        let model = fitted.model;
        let gains = model.gains().to_vec();
        self.primary = Some(CapGpuController::new(
            &self.layout,
            model.clone(),
            WeightAssigner::default(),
        )?);
        self.fallback = Some(self.build_fallback(&model));
        self.supervisor = Some(Supervisor::new(
            self.cfg.supervisor,
            gains,
            self.layout.len(),
        )?);
        if let Some(forgetting) = self.cfg.rls_forgetting {
            let mut tracker =
                ScaledModelTracker::new(model.clone(), forgetting).map_err(CapGpuError::Control)?;
            for (row, p_mean) in &rows {
                tracker.record(row, *p_mean);
            }
            self.tracker = Some(tracker);
        }
        self.pushed_scale = 1.0;
        self.targets = self.applied.clone();
        // Per-device base gains, journaled individually so
        // crash-recovery replay can rebuild the exact model (field keys
        // are static; per-device data gets per-device events).
        for d in 0..self.layout.len() {
            self.record(
                Event::new(self.period, self.sim_time_s, "model_gain")
                    .wall_ms(self.backend.wall_clock_unix_ms())
                    .u64("device", d as u64)
                    .f64("w_per_mhz", model.gains()[d]),
            );
        }
        self.record(
            Event::new(self.period, self.sim_time_s, "identified")
                .wall_ms(self.backend.wall_clock_unix_ms())
                .u64("points", plan.len() as u64)
                .f64("offset_w", model.offset())
                .f64("r_squared", fitted.r_squared),
        );
        Ok(())
    }

    /// Safe fixed-step fallback sized like the runner's: margin = one
    /// worst-case step plus meter-noise headroom.
    fn build_fallback(&self, model: &LinearPowerModel) -> SafeFixedStepController {
        let worst = self
            .layout
            .kinds
            .iter()
            .zip(model.gains().iter())
            .map(|(k, g)| {
                let unit = match k {
                    capgpu_sim::DeviceKind::Cpu => {
                        crate::controllers::fixed_step::CPU_STEP_UNIT_MHZ
                    }
                    capgpu_sim::DeviceKind::Gpu => {
                        crate::controllers::fixed_step::GPU_STEP_UNIT_MHZ
                    }
                };
                (g * unit).abs()
            })
            .fold(0.0_f64, f64::max);
        SafeFixedStepController::new(
            self.layout.clone(),
            1,
            worst + 2.0 * self.backend.meter_noise_std(),
        )
    }

    /// Executes one control period: advance the plant, sense, consult
    /// the supervisor, run the acting controller, actuate.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] before [`Daemon::identify`];
    /// backend/controller errors propagate.
    pub fn step_period(&mut self) -> Result<PeriodReport> {
        if self.supervisor.is_none() {
            return Err(bad("daemon: step_period before identify".into()));
        }
        // -- sense: advance one period, one second at a time ----------
        let mut fresh = 0usize;
        for _ in 0..self.cfg.control_period_s {
            self.sim_time_s += 1.0;
            if self.backend.advance(1.0)?.is_some() {
                fresh += 1;
            }
        }
        let avg = self
            .backend
            .average_power(self.cfg.control_period_s as usize)
            .unwrap_or(self.last_avg_watts);
        self.last_avg_watts = avg;
        if fresh > 0 {
            if let Some(tracker) = self.tracker.as_mut() {
                tracker.record(&self.applied, avg);
            }
        }
        // -- supervise ------------------------------------------------
        for (i, e) in self.ejected_buf.iter_mut().enumerate() {
            *e = self.backend.is_ejected(i);
        }
        let directive = {
            let obs = HealthSample {
                fresh_samples: fresh,
                meter_age_s: self.backend.seconds_since_sample(),
                avg_power: avg,
                setpoint: self.setpoint_watts,
                psu_limit: self.backend.psu_limit(),
                applied_mean: &self.applied,
                ejected: &self.ejected_buf,
            };
            self.supervisor.as_mut().expect("checked above").step(&obs)
        };
        if directive.tier != self.last_tier {
            let reason = if directive.stale_periods > 0 {
                "stale_meter"
            } else if directive.authority_lost {
                "authority_lost"
            } else {
                "recovered"
            };
            self.record(
                Event::new(self.period, self.sim_time_s, "tier_change")
                    .wall_ms(self.backend.wall_clock_unix_ms())
                    .u64("from", self.last_tier.as_u8() as u64)
                    .u64("to", directive.tier.as_u8() as u64)
                    .str("reason", reason),
            );
            self.registry.inc(self.metrics.tier_changes, 1);
            self.last_tier = directive.tier;
        }
        // Quarantine edges (enter/leave), journaled so replay can
        // re-derive the quarantine set. Allocation-free when nothing
        // changed (the common case).
        let mut q_edges: Vec<(usize, bool)> = Vec::new();
        {
            let q = self
                .supervisor
                .as_ref()
                .expect("checked above")
                .quarantined();
            for (d, (&now, &was)) in q.iter().zip(self.prev_quarantined.iter()).enumerate() {
                if now != was {
                    q_edges.push((d, now));
                }
            }
        }
        for (d, on) in q_edges {
            self.prev_quarantined[d] = on;
            self.record(
                Event::new(self.period, self.sim_time_s, "quarantine")
                    .wall_ms(self.backend.wall_clock_unix_ms())
                    .u64("device", d as u64)
                    .bool("on", on),
            );
        }
        // -- observe throughput and per-device power ------------------
        let caps = self.backend.capabilities();
        let normalized: Vec<f64> = if caps.throughput {
            self.backend.throughput_into(&mut self.throughput_buf)?;
            for (m, t) in self.monitors.iter_mut().zip(self.throughput_buf.iter()) {
                m.record(*t);
            }
            normalized_throughputs(&self.monitors)
        } else {
            // No throughput signal: neutral weights, every device is
            // equally expensive to slow down.
            vec![1.0; self.layout.len()]
        };
        if caps.per_device_power {
            self.backend
                .per_device_power_into(&mut self.device_power_buf)?;
        } else {
            self.device_power_buf.iter_mut().for_each(|p| *p = 0.0);
        }
        // -- control --------------------------------------------------
        let input = ControlInput {
            measured_power: avg,
            setpoint: directive.effective_setpoint,
            current_targets: &self.targets,
            normalized_throughput: &normalized,
            device_power: &self.device_power_buf,
            floors: &self.layout.f_min,
            phase_mix: None,
        };
        let targets = match directive.tier {
            SupervisorTier::Primary => self
                .primary
                .as_mut()
                .expect("identify built the primary")
                .control(&input)?,
            SupervisorTier::SafeFallback => self
                .fallback
                .as_mut()
                .expect("identify built the fallback")
                .control(&input)?,
            SupervisorTier::Park => self.layout.f_min.clone(),
        };
        // Summed commanded move and bound saturation, for the journal
        // and the oscillation/saturation detectors.
        let delta_f_mhz: f64 = targets
            .iter()
            .zip(self.targets.iter())
            .map(|(n, o)| n - o)
            .sum();
        let saturated = targets
            .iter()
            .zip(self.layout.f_min.iter().zip(self.layout.f_max.iter()))
            .any(|(t, (lo, hi))| (t - lo).abs() < 1e-9 || (t - hi).abs() < 1e-9);
        self.backend.set_frequencies(&targets)?;
        self.backend.effective_frequencies_into(&mut self.applied)?;
        self.targets = targets;
        // -- streaming refit (primary only: the fallback and park are
        //    model-free by design) ------------------------------------
        if fresh > 0 && directive.tier == SupervisorTier::Primary {
            if let Some(tracker) = self.tracker.as_ref() {
                if let Ok((model, scale)) = tracker.fit() {
                    if (scale - self.pushed_scale).abs() > SCALE_PUSH_DEADBAND * self.pushed_scale {
                        self.primary
                            .as_mut()
                            .expect("identify built the primary")
                            .set_power_model(&model)?;
                        self.pushed_scale = scale;
                        self.registry.inc(self.metrics.refits, 1);
                        // scale + offset pin the pushed model exactly
                        // (gains = journaled base gains × scale), which
                        // is what makes crash-recovery replay bit-exact.
                        let ev = Event::new(self.period, self.sim_time_s, "refit")
                            .wall_ms(self.backend.wall_clock_unix_ms())
                            .f64("scale", scale)
                            .f64("offset_w", model.offset());
                        self.record(ev);
                    }
                }
            }
        }
        // -- journal + metrics ----------------------------------------
        let targets_str = format_targets(&self.targets);
        self.record(
            Event::new(self.period, self.sim_time_s, "period")
                .wall_ms(self.backend.wall_clock_unix_ms())
                .u64("tier", directive.tier.as_u8() as u64)
                .f64("watts", avg)
                .f64("setpoint", directive.effective_setpoint)
                .u64("stale", directive.stale_periods as u64)
                .f64("delta_f_mhz", delta_f_mhz)
                .bool("saturated", saturated)
                .str("targets", &targets_str),
        );
        // -- online health analyzer -----------------------------------
        let sample = PeriodSample {
            power_w: avg,
            cap_w: directive.effective_setpoint,
            delta_f_mhz,
            meter_stale: fresh == 0,
            saturated,
            slo_miss_frac: 0.0,
        };
        let edges = self.analyzer.observe(&sample);
        for e in &edges {
            self.record(
                Event::new(self.period, self.sim_time_s, "health")
                    .wall_ms(self.backend.wall_clock_unix_ms())
                    .str("detector", e.detector)
                    .str("from", e.from.label())
                    .str("to", e.to.label()),
            );
        }
        for (i, (_, v)) in self.analyzer.verdicts().iter().enumerate() {
            self.registry.set(self.metrics.health[i], v.gauge());
        }
        self.registry
            .set(self.metrics.health_overall, self.analyzer.overall().gauge());
        self.registry.set(self.metrics.power, avg);
        self.registry
            .set(self.metrics.setpoint, directive.effective_setpoint);
        self.registry
            .set(self.metrics.tier, f64::from(directive.tier.as_u8()));
        self.registry
            .set(self.metrics.stale, directive.stale_periods as f64);
        self.registry.inc(self.metrics.periods, 1);
        let report = PeriodReport {
            period: self.period,
            tier: directive.tier,
            avg_power_watts: avg,
            effective_setpoint: directive.effective_setpoint,
            stale_periods: directive.stale_periods,
            targets_mhz: self.targets.clone(),
        };
        self.period += 1;
        Ok(report)
    }

    /// Runs `n` control periods, collecting the reports.
    ///
    /// # Errors
    /// Propagates the first period failure.
    pub fn run_periods(&mut self, n: u64) -> Result<Vec<PeriodReport>> {
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.step_period()?);
        }
        Ok(out)
    }

    /// Applies a hot reload: only the set-point changes at runtime;
    /// every other difference is reported as requiring a restart.
    ///
    /// Returns `true` when anything was applied.
    pub fn apply_reload(&mut self, new_cfg: &DaemonConfig) -> bool {
        if (new_cfg.setpoint_watts - self.setpoint_watts).abs() > f64::EPSILON {
            self.set_setpoint(new_cfg.setpoint_watts);
            return true;
        }
        false
    }

    /// Changes the operator set-point, journaling the step.
    pub fn set_setpoint(&mut self, watts: f64) {
        let old = self.setpoint_watts;
        self.setpoint_watts = watts;
        self.record(
            Event::new(self.period, self.sim_time_s, "setpoint_change")
                .wall_ms(self.backend.wall_clock_unix_ms())
                .f64("from_w", old)
                .f64("to_w", watts),
        );
    }

    /// Current operator set-point (W).
    pub fn setpoint_watts(&self) -> f64 {
        self.setpoint_watts
    }

    /// The configuration the daemon was built with.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// The event journal (JSONL-renderable; byte-stable against
    /// deterministic backends).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// A snapshot of the metric registry.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Prometheus text-format exposition of the current metrics.
    pub fn prometheus_text(&self) -> String {
        self.registry.snapshot().to_prometheus_text()
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &dyn PowerBackend {
        self.backend.as_ref()
    }

    /// Mutable backend access — the concrete-type escape hatch for
    /// plant-side hooks (fault injection in tests and smoke runs).
    pub fn backend_mut(&mut self) -> &mut dyn PowerBackend {
        self.backend.as_mut()
    }

    /// Current supervisor tier.
    pub fn tier(&self) -> SupervisorTier {
        self.last_tier
    }

    /// JSON body for the `/healthz` endpoint: supervisor tier, worst
    /// analyzer verdict, periods observed, and per-detector verdicts.
    pub fn health_json(&self) -> String {
        let mut out = format!(
            "{{\"tier\":{},\"overall\":\"{}\",\"periods\":{},\"detectors\":{{",
            self.last_tier.as_u8(),
            self.analyzer.overall().label(),
            self.analyzer.periods()
        );
        for (i, (name, v)) in self.analyzer.verdicts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":\"{}\"", v.label()));
        }
        out.push_str("}}");
        out
    }

    /// Resumes from a crash-recovery [`ReplayState`] instead of
    /// re-running identification: rebuilds the control stack from the
    /// journaled model (base gains × last refit scale, bit-exact),
    /// restores supervisor tier and quarantine flags, re-asserts the
    /// dead daemon's last commanded targets, and continues its
    /// period/clock sequence so the journal stays monotone.
    ///
    /// The config-file set-point stays authoritative unless the journal
    /// recorded a runtime `setpoint_change`.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] when the journal carries no
    /// identified model or its device count mismatches the backend.
    pub fn recover(&mut self, state: &ReplayState) -> Result<()> {
        let (gains, offset) = state
            .model()
            .ok_or_else(|| bad("recover: journal has no identified model".into()))?;
        if gains.len() != self.layout.len() {
            return Err(bad(format!(
                "recover: journal has {} devices, backend has {}",
                gains.len(),
                self.layout.len()
            )));
        }
        let model = LinearPowerModel::new(gains.clone(), offset).map_err(CapGpuError::Control)?;
        self.primary = Some(CapGpuController::new(
            &self.layout,
            model.clone(),
            WeightAssigner::default(),
        )?);
        self.fallback = Some(self.build_fallback(&model));
        let mut supervisor = Supervisor::new(self.cfg.supervisor, gains, self.layout.len())?;
        let tier = SupervisorTier::from_u8(state.tier_or_primary() as u8);
        supervisor.restore(tier, &state.quarantined);
        self.supervisor = Some(supervisor);
        self.last_tier = tier;
        for (d, q) in self.prev_quarantined.iter_mut().enumerate() {
            *q = state.quarantined.contains(&d);
        }
        if let Some(forgetting) = self.cfg.rls_forgetting {
            // Tracker re-anchored at the recovered model: its scale is
            // now relative to the *recovered* gains, so push deadband
            // restarts from 1.
            self.tracker =
                Some(ScaledModelTracker::new(model, forgetting).map_err(CapGpuError::Control)?);
        }
        self.pushed_scale = 1.0;
        if let Some(cap) = state.cap_w {
            self.setpoint_watts = cap;
        }
        if state.last_targets_mhz.len() == self.layout.len() {
            self.backend.set_frequencies(&state.last_targets_mhz)?;
            self.backend.effective_frequencies_into(&mut self.applied)?;
            self.targets = state.last_targets_mhz.clone();
        }
        self.period = state.last_period.map_or(0, |p| p + 1);
        self.sim_time_s = state.last_t_s.unwrap_or(0.0);
        let replayed: u64 = state.kind_counts.iter().map(|(_, n)| n).sum();
        self.record(
            Event::new(self.period, self.sim_time_s, "recovered")
                .wall_ms(self.backend.wall_clock_unix_ms())
                .u64("tier", u64::from(tier.as_u8()))
                .u64("records", replayed),
        );
        Ok(())
    }

    /// Seals the durable journal's active segment (count + CRC footer)
    /// — the graceful-shutdown path. A crash skips this, leaving the
    /// torn tail the reader tolerates.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] wrapping the journal I/O failure.
    pub fn seal_journal(&mut self) -> Result<()> {
        if let Some(w) = self.writer.as_mut() {
            w.seal().map_err(|e| bad(format!("journal: {e}")))?;
        }
        Ok(())
    }

    /// Tears down the daemon and hands back the backend — the "kill"
    /// half of a kill-and-restart scenario. The durable journal is
    /// deliberately NOT sealed: the plant survives with exactly the
    /// on-disk state a crashed daemon would leave behind.
    #[must_use]
    pub fn into_backend(self) -> Box<dyn PowerBackend> {
        self.backend
    }

    /// Rotating-journal statistics `(appended, sealed, reaped)`; zeros
    /// when no `journal_dir` is configured.
    pub fn journal_stats(&self) -> (u64, u64, u64) {
        self.writer
            .as_ref()
            .map_or((0, 0, 0), capgpu_obs::rotate::JournalWriter::stats)
    }

    /// The online control-loop health analyzer.
    pub fn analyzer(&self) -> &HealthAnalyzer {
        &self.analyzer
    }
}

// ---------------------------------------------------------------------
// MetricsServer
// ---------------------------------------------------------------------

/// A dependency-free Prometheus exposition endpoint: a background
/// thread serving the most recently [`published`](MetricsServer::publish)
/// text on `GET /metrics` (and `/`), plus the most recent
/// [`publish_health`](MetricsServer::publish_health) JSON on
/// `GET /healthz`. Dropping the server stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    health: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks an ephemeral port) and
    /// starts the accept loop.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] when the bind fails.
    pub fn bind(port: u16) -> Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| bad(format!("metrics listener bind: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| bad(format!("metrics listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| bad(format!("metrics listener: {e}")))?;
        let body = Arc::new(Mutex::new(String::new()));
        let health = Arc::new(Mutex::new(String::from("{}")));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let body = Arc::clone(&body);
            let health = Arc::clone(&health);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve_loop(&listener, &body, &health, &stop))
        };
        Ok(MetricsServer {
            addr,
            body,
            health,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the text served on the next scrape.
    pub fn publish(&self, text: &str) {
        if let Ok(mut b) = self.body.lock() {
            b.clear();
            b.push_str(text);
        }
    }

    /// Replaces the JSON served on the next `GET /healthz` (see
    /// [`Daemon::health_json`]).
    pub fn publish_health(&self, json: &str) {
        if let Ok(mut h) = self.health.lock() {
            h.clear();
            h.push_str(json);
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(
    listener: &TcpListener,
    body: &Arc<Mutex<String>>,
    health: &Arc<Mutex<String>>,
    stop: &Arc<AtomicBool>,
) {
    use std::io::{Read as _, Write as _};
    const METRICS_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
                let mut req = [0u8; 1024];
                let n = stream.read(&mut req).unwrap_or(0);
                let head = String::from_utf8_lossy(&req[..n]);
                let path = head.split_whitespace().nth(1).unwrap_or("/");
                let (status, content_type, text) = if path == "/metrics" || path == "/" {
                    let text = body.lock().map(|b| b.clone()).unwrap_or_default();
                    ("200 OK", METRICS_TYPE, text)
                } else if path == "/healthz" {
                    let text = health.lock().map(|h| h.clone()).unwrap_or_default();
                    ("200 OK", "application/json", text)
                } else {
                    ("404 Not Found", METRICS_TYPE, String::from("not found\n"))
                };
                let response = format!(
                    "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{text}",
                    text.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
}

// ---------------------------------------------------------------------
// Reload triggers
// ---------------------------------------------------------------------

#[cfg(unix)]
mod sighup {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FLAG: AtomicBool = AtomicBool::new(false);

    extern "C" fn handler(_sig: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub const SIGHUP: i32 = 1;

    pub fn install() {
        // Only an async-signal-safe atomic store happens in the handler.
        unsafe {
            signal(SIGHUP, handler as extern "C" fn(i32) as usize);
        }
    }

    pub fn take() -> bool {
        FLAG.swap(false, Ordering::SeqCst)
    }
}

/// SIGHUP-driven reload trigger (the conventional daemon reload
/// signal). A no-op stub on non-Unix targets.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReloadSignal;

impl ReloadSignal {
    /// Installs the SIGHUP handler. Idempotent.
    pub fn install() -> Self {
        #[cfg(unix)]
        sighup::install();
        ReloadSignal
    }

    /// Consumes a pending reload request, if one arrived since the
    /// last call.
    pub fn take(&self) -> bool {
        #[cfg(unix)]
        {
            sighup::take()
        }
        #[cfg(not(unix))]
        {
            false
        }
    }
}

/// Polls a config file's mtime + length + inode fingerprint;
/// `changed()` is true once per observed modification. The inode
/// component catches the atomic rename-over-write deployment idiom
/// (`write tmp; rename tmp config`), which can preserve both length
/// and — on filesystems with coarse timestamps — mtime. The timer
/// loop calls it each period; no inotify dependency needed at a 4 s
/// cadence.
#[derive(Debug)]
pub struct ConfigWatcher {
    path: PathBuf,
    fingerprint: Option<(std::time::SystemTime, u64, u64)>,
}

impl ConfigWatcher {
    /// Starts watching `path`, taking the current state as baseline.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let fingerprint = Self::stat(&path);
        ConfigWatcher { path, fingerprint }
    }

    /// The watched path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn stat(path: &Path) -> Option<(std::time::SystemTime, u64, u64)> {
        let meta = std::fs::metadata(path).ok()?;
        #[cfg(unix)]
        let ino = {
            use std::os::unix::fs::MetadataExt as _;
            meta.ino()
        };
        #[cfg(not(unix))]
        let ino = 0u64;
        Some((meta.modified().ok()?, meta.len(), ino))
    }

    /// True when the file changed since the last call (or appeared).
    pub fn changed(&mut self) -> bool {
        let now = Self::stat(&self.path);
        let changed = now.is_some() && now != self.fingerprint;
        self.fingerprint = now;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_faults::FaultKind;

    // -- minitoml -----------------------------------------------------

    #[test]
    fn minitoml_parses_sections_types_and_comments() {
        let doc = TomlDoc::parse(
            r##"
# top comment
top = 1
[daemon]
backend = "sim"   # trailing comment
setpoint_watts = 912.5
control_period_s = 4
[identify]
rls = false
path = "C:\\run \"x\"#y"
"##,
        )
        .unwrap();
        assert_eq!(doc.get("top"), Some(&TomlValue::Int(1)));
        assert_eq!(
            doc.get("daemon.backend"),
            Some(&TomlValue::Str("sim".into()))
        );
        assert_eq!(
            doc.get("daemon.setpoint_watts"),
            Some(&TomlValue::Float(912.5))
        );
        assert_eq!(doc.get("identify.rls"), Some(&TomlValue::Bool(false)));
        // `#` inside a quoted string is content, not a comment.
        assert_eq!(
            doc.get("identify.path"),
            Some(&TomlValue::Str("C:\\run \"x\"#y".into()))
        );
        assert!(TomlDoc::parse("no_equals_here").is_err());
        assert!(TomlDoc::parse("[unclosed").is_err());
        assert!(TomlDoc::parse("k = ").is_err());
        assert!(TomlDoc::parse("k = \"unterminated").is_err());
    }

    #[test]
    fn config_round_trips_and_rejects_unknown_keys() {
        let cfg = DaemonConfig::from_toml_str(
            r#"
[daemon]
backend = "mock"
setpoint_watts = 850
control_period_s = 2
metrics_port = 0
[identify]
steps_per_device = 4
rls = false
[sim]
gpus = 3
[supervisor]
stale_fallback_periods = 1
stale_park_periods = 3
"#,
        )
        .unwrap();
        assert_eq!(cfg.backend, "mock");
        assert_eq!(cfg.setpoint_watts, 850.0);
        assert_eq!(cfg.control_period_s, 2);
        assert_eq!(cfg.metrics_port, Some(0));
        assert_eq!(cfg.sysid_steps_per_device, 4);
        assert_eq!(cfg.rls_forgetting, None);
        assert_eq!(cfg.sim_gpus, 3);
        assert_eq!(cfg.supervisor.stale_fallback_periods, 1);
        assert_eq!(cfg.supervisor.stale_park_periods, 3);
        // Unknown keys are typos, not extensions.
        let err = DaemonConfig::from_toml_str("[daemon]\nsetpoint = 900\n").unwrap_err();
        assert!(err.to_string().contains("unknown key"), "{err}");
        // Range validation bites.
        assert!(DaemonConfig::from_toml_str("[daemon]\nsetpoint_watts = -5\n").is_err());
        assert!(DaemonConfig::from_toml_str("[daemon]\nbackend = \"nvml\"\n").is_err());
        assert!(DaemonConfig::from_toml_str("[identify]\nsteps_per_device = 1\n").is_err());
    }

    // -- daemon over the sim backend ----------------------------------

    fn sim_daemon(setpoint: f64) -> Daemon {
        let mut cfg = DaemonConfig::default_sim();
        cfg.setpoint_watts = setpoint;
        cfg.sysid_steps_per_device = 4;
        let backend = cfg.build_backend().unwrap();
        Daemon::new(cfg, backend).unwrap()
    }

    #[test]
    fn sim_daemon_regulates_toward_the_setpoint() {
        let mut d = sim_daemon(900.0);
        d.identify().unwrap();
        let reports = d.run_periods(20).unwrap();
        assert_eq!(reports.len(), 20);
        // Steady state: the last five periods hold near the set-point.
        let tail: Vec<f64> = reports[15..].iter().map(|r| r.avg_power_watts).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 900.0).abs() < 40.0,
            "steady-state mean {mean} too far from 900"
        );
        assert!(reports.iter().all(|r| r.tier == SupervisorTier::Primary));
        // The journal recorded identification and every period.
        assert_eq!(d.journal().of_kind("identified").count(), 1);
        assert_eq!(d.journal().of_kind("period").count(), 20);
        // Sim journals carry no wall clock.
        assert!(d
            .journal()
            .events()
            .iter()
            .all(|e| e.wall_unix_ms.is_none()));
    }

    #[test]
    fn sim_daemon_is_deterministic() {
        let run = |setpoint: f64| {
            let mut d = sim_daemon(setpoint);
            d.identify().unwrap();
            d.run_periods(12).unwrap();
            (d.journal().to_jsonl(), d.prometheus_text())
        };
        let (j1, m1) = run(900.0);
        let (j2, m2) = run(900.0);
        assert_eq!(j1, j2, "journal must be byte-identical across reruns");
        assert_eq!(m1, m2, "metrics must be byte-identical across reruns");
    }

    #[test]
    fn prometheus_text_carries_daemon_metrics_and_help() {
        let mut d = sim_daemon(900.0);
        d.identify().unwrap();
        d.run_periods(3).unwrap();
        let text = d.prometheus_text();
        assert!(text.contains("# HELP capgpud_power_watts Average server power"));
        assert!(text.contains("# TYPE capgpud_power_watts gauge"));
        assert!(text.contains("capgpud_periods_total{backend=\"sim\"} 3"));
        assert!(text.contains("capgpud_tier{backend=\"sim\"} 0"));
    }

    #[test]
    fn setpoint_hot_reload_is_journaled_and_applied() {
        let mut d = sim_daemon(900.0);
        d.identify().unwrap();
        d.run_periods(6).unwrap();
        let mut new_cfg = d.config().clone();
        new_cfg.setpoint_watts = 800.0;
        assert!(d.apply_reload(&new_cfg));
        assert!(!d.apply_reload(&new_cfg), "second reload is a no-op");
        assert_eq!(d.setpoint_watts(), 800.0);
        assert_eq!(d.journal().of_kind("setpoint_change").count(), 1);
        let reports = d.run_periods(12).unwrap();
        let tail: Vec<f64> = reports[8..].iter().map(|r| r.avg_power_watts).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 800.0).abs() < 40.0,
            "post-reload steady state {mean} should track 800"
        );
    }

    #[test]
    fn step_before_identify_is_refused() {
        let mut d = sim_daemon(900.0);
        let err = d.step_period().unwrap_err();
        assert!(err.to_string().contains("identify"), "{err}");
    }

    // -- the staleness-watchdog satellite: backend meter silence must
    //    propagate through the trait into supervisor escalation -------

    #[test]
    fn mock_meter_dropout_escalates_the_supervisor_ladder() {
        let mut cfg = DaemonConfig::default_sim();
        cfg.backend = "mock".to_string();
        cfg.sim_gpus = 2;
        cfg.sysid_steps_per_device = 4;
        cfg.control_period_s = 2;
        let backend = cfg.build_backend().unwrap();
        let mut d = Daemon::new(cfg, backend).unwrap();
        d.identify().unwrap();
        let healthy = d.run_periods(3).unwrap();
        assert!(healthy.iter().all(|r| r.tier == SupervisorTier::Primary));
        // Silence the meter through the plant-side escape hatch.
        d.backend_mut()
            .as_any_mut()
            .downcast_mut::<MockBackend>()
            .expect("mock backend")
            .apply_fault(&FaultKind::MeterDropout)
            .unwrap();
        let stale = d.run_periods(6).unwrap();
        let tiers: Vec<SupervisorTier> = stale.iter().map(|r| r.tier).collect();
        assert!(
            tiers.contains(&SupervisorTier::SafeFallback),
            "expected fallback rung in {tiers:?}"
        );
        assert_eq!(
            *tiers.last().unwrap(),
            SupervisorTier::Park,
            "sustained dropout must park the loop"
        );
        // Park actuates the floors.
        let last = stale.last().unwrap();
        for (t, lo) in last.targets_mhz.iter().zip(d.backend().devices()) {
            assert!(
                (t - lo.f_min_mhz).abs() < 1e-9,
                "park target {t} != floor {}",
                lo.f_min_mhz
            );
        }
        // Clearing the fault lets the ladder recover to primary.
        d.backend_mut()
            .as_any_mut()
            .downcast_mut::<MockBackend>()
            .unwrap()
            .clear_fault(&FaultKind::MeterDropout)
            .unwrap();
        let recovered = d.run_periods(14).unwrap();
        assert_eq!(
            recovered.last().unwrap().tier,
            SupervisorTier::Primary,
            "ladder must climb back after the meter returns"
        );
        // The escalation and recovery are journaled as tier changes.
        assert!(d.journal().of_kind("tier_change").count() >= 3);
    }

    #[test]
    fn mock_journal_is_wall_clock_stamped_when_enabled() {
        let mut cfg = DaemonConfig::default_sim();
        cfg.backend = "mock".to_string();
        cfg.sysid_steps_per_device = 4;
        cfg.control_period_s = 2;
        let mut backend = MockBackend::testbed(cfg.sim_gpus).unwrap();
        backend.set_wall_clock_base(1_754_000_000_000);
        let mut d = Daemon::new(cfg, Box::new(backend)).unwrap();
        d.identify().unwrap();
        d.run_periods(2).unwrap();
        let stamps: Vec<Option<u64>> = d
            .journal()
            .events()
            .iter()
            .map(|e| e.wall_unix_ms)
            .collect();
        assert!(stamps.iter().all(Option::is_some));
        // Stamps advance with the plant clock.
        let v: Vec<u64> = stamps.into_iter().flatten().collect();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert!(*v.last().unwrap() > 1_754_000_000_000);
        // ...and render into the JSONL.
        assert!(d.journal().to_jsonl().contains("\"wall_ms\":"));
    }

    // -- metrics server -----------------------------------------------

    #[test]
    fn metrics_server_serves_published_text() {
        use std::io::{Read as _, Write as _};
        let server = MetricsServer::bind(0).unwrap();
        server.publish("capgpud_power_watts{backend=\"sim\"} 899.5\n");
        let addr = server.local_addr();
        let fetch = |path: &str| {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
                .unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        };
        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("capgpud_power_watts{backend=\"sim\"} 899.5"));
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        drop(server);
        // Port is released after drop (bind again succeeds).
        let again = std::net::TcpListener::bind(addr);
        assert!(again.is_ok());
    }

    // -- reload triggers ----------------------------------------------

    #[cfg(unix)]
    #[test]
    fn sighup_sets_and_clears_the_reload_flag() {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        let sig = ReloadSignal::install();
        assert!(!sig.take());
        unsafe {
            raise(sighup::SIGHUP);
        }
        assert!(sig.take(), "SIGHUP must latch the reload flag");
        assert!(!sig.take(), "take() consumes the latch");
    }

    #[test]
    fn config_watcher_detects_rewrites() {
        let path = std::env::temp_dir().join(format!(
            "capgpud-watch-{}-{:?}.toml",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, "[daemon]\nsetpoint_watts = 900\n").unwrap();
        let mut w = ConfigWatcher::new(&path);
        assert!(!w.changed(), "baseline is not a change");
        // A rewrite with different length trips the fingerprint even
        // when the mtime granularity is coarse.
        std::fs::write(&path, "[daemon]\nsetpoint_watts = 812.5\n").unwrap();
        assert!(w.changed());
        assert!(!w.changed(), "change reported once");
        std::fs::remove_file(&path).unwrap();
        assert!(!w.changed(), "disappearance is not a change");
        std::fs::write(&path, "[daemon]\nsetpoint_watts = 700\n").unwrap();
        assert!(w.changed(), "reappearance is a change");
        let _ = std::fs::remove_file(&path);
    }
}
