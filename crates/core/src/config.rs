//! Experiment scenarios: server composition, workloads, schedules.

use capgpu_llm::{LlmConfig, LlmServiceModel, LlmTaskSpec, TokenRange};
use capgpu_serve::ArrivalProcess;
use capgpu_sim::{presets, DeviceSpec};
use capgpu_workload::models::{self, ModelProfile};
use serde::{Deserialize, Serialize};

use crate::{CapGpuError, Result};

/// A mid-run scheduled event (the §6.4 online-adaptability experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduledChange {
    /// Change the power set point at the given control period.
    SetPoint {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// New set point (W).
        watts: f64,
    },
    /// Change one GPU task's latency SLO at the given control period.
    Slo {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// GPU task index (0-based, in GPU order).
        task: usize,
        /// New SLO (seconds per batch).
        slo_s: f64,
    },
    /// Change one GPU task's request arrival rate (open-loop pipelines
    /// only) — the §6.4 demand surge.
    ArrivalRate {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// GPU task index (0-based, in GPU order).
        task: usize,
        /// New mean arrival rate (images/s).
        rate_img_s: f64,
    },
    /// Inject or clear a power-meter fault. Carries the sim-level
    /// [`capgpu_sim::MeterFault`] directly so new fault kinds (stuck,
    /// bias drift, delayed reporting) need no new booleans; `None`
    /// clears whatever fault is active. For full storms — actuator and
    /// power-delivery faults, durations, intermittency — use
    /// [`Scenario::faults`] instead.
    MeterFault {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// The fault to inject, or `None` to clear.
        fault: Option<capgpu_sim::MeterFault>,
    },
    /// Scale one device's true dynamic power gain (synthetic plant
    /// drift: aging, fan/VRM degradation, a driver power-management
    /// update). The controller's identified model is *not* told — this
    /// is the model-plant mismatch that the §6.4 drift ablation uses to
    /// compare one-shot identification against RLS tracking.
    GainDrift {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// Device index (0 = CPU, then GPUs in order).
        device: usize,
        /// Multiplier applied to the device's `gain_w_per_mhz`.
        factor: f64,
    },
    /// Scale one serving task's request arrival intensity (a traffic
    /// burst or ebb). Requires the scenario's serving layer to be
    /// enabled; takes effect from the next drawn arrival.
    ServingBurst {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// GPU task index (0-based, in GPU order).
        task: usize,
        /// Multiplier on the task's nominal arrival intensity.
        factor: f64,
    },
}

/// Continuous (streaming) model-tracking configuration (§6.4 online
/// re-identification, generalized to every control period).
///
/// When enabled on a [`Scenario`], the runner feeds each control period's
/// `(applied F, p̄)` sample into a recursive-least-squares identifier
/// seeded with the startup excitation sweep, and pushes the refreshed
/// model into the controller at the end of the period — `O(n²)` per
/// period instead of an `O(m·n²)` batch refit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlsTracking {
    /// Exponential forgetting factor `λ ∈ (0, 1]`. A sample's weight after
    /// `k` further periods is `λᵏ`; `1.0` means never forget (pure
    /// refinement, no drift tracking).
    pub forgetting: f64,
    /// Refreshed models are pushed to the controller only while the
    /// identifier's design condition number stays below this guard —
    /// closed-loop operation near steady state barely excites the system,
    /// and an ill-conditioned refit would replace good gains with noise.
    pub condition_guard: f64,
    /// Persistent-excitation probe amplitude (MHz). A converged power
    /// loop holds frequencies still, so the closed-loop data contain no
    /// information about the gains; each period the runner therefore
    /// offsets every device's target by ±`probe_mhz` with a deterministic
    /// per-device sign pattern (derived from the scenario seed, not the
    /// simulation RNG). Probing is the classic adaptive-control tradeoff:
    /// the displacement that carries gain information is the same
    /// displacement the cap loop pays as tracking error, so amplitude
    /// buys tracking bandwidth at the cost of steady-state accuracy.
    /// ~10 MHz (under one GPU clock level — realized by the delta-sigma
    /// modulator as dithering) is enough for the difference-based scale
    /// tracker while costing ≈1–2 W of cap error. `0.0` disables probing.
    pub probe_mhz: f64,
    /// Quasi-steady recording gate (MHz). The identified model is a
    /// *steady-state* power map, but a period whose applied frequencies
    /// slewed hundreds of MHz mixes pre- and post-move power (and queue /
    /// utilization transients) in one average — fitting those rows is
    /// what corrupts naive closed-loop identification. A period is fed
    /// to the identifier only when no device's mean applied frequency
    /// moved more than this since the previous period; probes and normal
    /// regulation jitter pass, transient slews are skipped.
    /// `f64::INFINITY` disables the gate.
    pub settle_gate_mhz: f64,
}

impl Default for RlsTracking {
    /// λ = 0.95 (≈ 20-period memory — minutes at the paper's 4 s control
    /// period, fast enough to track thermal-scale drift), a 10⁸ condition
    /// guard, a sub-clock-level (10 MHz) excitation probe, and a 120 MHz
    /// quasi-steady gate.
    fn default() -> Self {
        RlsTracking {
            forgetting: 0.95,
            condition_guard: 1e8,
            probe_mhz: 10.0,
            settle_gate_mhz: 120.0,
        }
    }
}

/// Request-level serving configuration (the `capgpu-serve` bridge).
///
/// When enabled on a [`Scenario`], each GPU task's closed/open-loop
/// pipeline model is replaced by a deterministic discrete-event serving
/// engine: requests arrive by the task's [`ArrivalProcess`], wait in a
/// bounded FIFO queue, and are dispatched by a size-or-timeout dynamic
/// batcher whose service time follows the γ latency law at the device's
/// effective frequency. Per-request completions feed the SLO tracker
/// (constraint (10b) checked against *measured* p99 rather than the
/// steady-state model) and per-period queue drain becomes the
/// throughput signal. `None` (the default everywhere) keeps the paper's
/// period-level model and leaves every published trace byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Per-GPU-task arrival process, in GPU order.
    pub arrivals: Vec<ArrivalProcess>,
    /// Dynamic-batching timeout: a partial batch launches once its
    /// oldest request has waited this long (s).
    pub batch_timeout_s: f64,
    /// Request queue capacity per GPU (requests beyond it are shed).
    pub queue_capacity: usize,
    /// Batch-efficiency overhead in `[0, 1)`: the fraction of the
    /// full-batch service time any batch pays regardless of its size.
    pub batch_overhead: f64,
}

impl ServingConfig {
    /// Poisson arrivals at the given per-task mean rates with the
    /// defaults used by the serving evaluation: a 50 ms batching
    /// timeout, a 256-request queue, and a 0.3 batch-overhead floor.
    pub fn poisson(rates_rps: &[f64]) -> Self {
        ServingConfig {
            arrivals: rates_rps
                .iter()
                .map(|&r| ArrivalProcess::Poisson { rate_rps: r })
                .collect(),
            batch_timeout_s: 0.05,
            queue_capacity: 256,
            batch_overhead: 0.3,
        }
    }
}

/// A full experiment scenario: the server, its workloads and timing.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// RNG seed for all stochastic components.
    pub seed: u64,
    /// Device specs (CPUs first by convention; see [`Scenario::validate`]).
    pub devices: Vec<DeviceSpec>,
    /// Constant platform power (W).
    pub platform_watts: f64,
    /// One inference model per GPU, in GPU order (t₁ → GPU 0, …).
    pub gpu_models: Vec<ModelProfile>,
    /// Preprocessing workers per GPU pipeline.
    pub workers_per_pipeline: usize,
    /// Shared queue capacity per pipeline (images).
    pub queue_capacity: usize,
    /// Control period T in seconds (paper: 4).
    pub control_period_s: usize,
    /// Feature-selection reference rate (subsets/s at `featsel_ref_mhz`).
    pub featsel_ref_rate: f64,
    /// Reference CPU frequency for the feature-selection rate (MHz).
    pub featsel_ref_mhz: f64,
    /// The fitted latency-model exponent the *controller* uses (paper:
    /// γ = 0.91; ground truth differs per model).
    pub gamma_fitted: f64,
    /// Multiplicative safety factor on SLO frequency floors, covering the
    /// fitted-γ model error, latency jitter, and the delta-sigma
    /// modulator's dips to the level below the target.
    pub slo_margin: f64,
    /// Enable the §4.4 "multi-layer adaptation" escape hatch: when the
    /// set point is unreachable with every core clock at its floor, the
    /// runner engages the GPUs' low-memory-clock states (and releases
    /// them with hysteresis once frequency scaling regains authority).
    pub memory_escape: bool,
    /// Per-task open-loop arrival rates (images/s). `None` = closed-loop
    /// saturating streams (the paper's evaluation default).
    pub arrival_rates: Option<Vec<f64>>,
    /// Initial per-GPU-task SLOs in seconds (`None` = no SLO constraint).
    pub slos: Vec<Option<f64>>,
    /// Scheduled mid-run changes.
    pub changes: Vec<ScheduledChange>,
    /// Identification sweep points per device (paper §4.2 sweeps 8).
    pub sysid_steps_per_device: usize,
    /// Where non-swept devices are parked during identification, as a
    /// fraction of their frequency range (0 = f_min, 1 = f_max; the
    /// default 0.5 is the mid-range hold the paper uses).
    pub sysid_hold_fraction: f64,
    /// Continuous RLS model tracking; `None` (the default everywhere)
    /// keeps the paper's one-shot identification and leaves every
    /// published trace byte-identical.
    pub rls_tracking: Option<RlsTracking>,
    /// Request-level serving layer; `None` (the default everywhere)
    /// keeps the period-level pipeline model and leaves every published
    /// trace byte-identical.
    pub serving: Option<ServingConfig>,
    /// Two-phase LLM serving layer (`capgpu-llm`): prefill/decode
    /// requests under continuous batching with KV-cache accounting,
    /// replacing the pipeline plant and feeding the controller a
    /// per-device phase-mix signal. Mutually exclusive with
    /// [`Scenario::serving`]; `None` (the default everywhere) leaves
    /// every published trace byte-identical.
    pub llm: Option<LlmConfig>,
    /// Fault-injection schedule (`capgpu-faults`); `None` (the default
    /// everywhere) injects nothing and leaves every published trace
    /// byte-identical.
    pub faults: Option<capgpu_faults::FaultSchedule>,
    /// Supervisory failover layer wrapping the run's controller; `None`
    /// (the default everywhere) runs the controller bare and leaves
    /// every published trace byte-identical.
    pub supervisor: Option<crate::supervisor::SupervisorConfig>,
    /// Telemetry recording (`capgpu-telemetry`): metric registry and
    /// event journal, plus wall-clock spans under
    /// [`TelemetryConfig::trace_spans`](capgpu_telemetry::TelemetryConfig).
    /// `None` (the default everywhere) records nothing and leaves every
    /// published trace byte-identical. The registry/journal layers are
    /// deterministic (sim-clock values only) and safe inside
    /// bit-identity-compared sweep results; spans are not.
    pub telemetry: Option<capgpu_telemetry::TelemetryConfig>,
}

impl Scenario {
    /// The paper's evaluation testbed (§5–6): one Xeon Gold 5215, three
    /// Tesla V100s running t₁ = ResNet50, t₂ = Swin-T, t₃ = VGG16 (one
    /// dedicated preprocessing core each), exhaustive feature selection on
    /// the remaining cores, T = 4 s, γ = 0.91, no SLOs.
    pub fn paper_testbed(seed: u64) -> Self {
        Scenario {
            seed,
            devices: vec![
                presets::xeon_gold_5215(),
                presets::tesla_v100(),
                presets::tesla_v100(),
                presets::tesla_v100(),
            ],
            // Fans (pinned per §5), RAM, NVMe, VRM losses. Sized so the
            // paper's full 900–1200 W set-point sweep is feasible at the
            // workload's realistic utilizations.
            platform_watts: 330.0,
            gpu_models: models::evaluation_models(),
            workers_per_pipeline: 2,
            queue_capacity: 64,
            control_period_s: 4,
            featsel_ref_rate: 120.0,
            featsel_ref_mhz: 2200.0,
            gamma_fitted: 0.91,
            slo_margin: 1.06,
            memory_escape: false,
            arrival_rates: None,
            slos: vec![None, None, None],
            changes: Vec::new(),
            sysid_steps_per_device: 8,
            sysid_hold_fraction: 0.5,
            rls_tracking: None,
            serving: None,
            llm: None,
            faults: None,
            supervisor: None,
            telemetry: None,
        }
    }

    /// An 8-GPU scale-out testbed (the paper: "a server is usually
    /// equipped with one host CPU and up to eight GPUs"): one Xeon plus
    /// eight Tesla V100s, cycling the three evaluation models across the
    /// GPUs, with a platform floor sized for the bigger chassis.
    pub fn eight_gpu_testbed(seed: u64) -> Self {
        let mut devices = vec![presets::xeon_gold_5215()];
        let mut gpu_models = Vec::with_capacity(8);
        let eval = models::evaluation_models();
        for i in 0..8 {
            devices.push(presets::tesla_v100());
            gpu_models.push(eval[i % eval.len()].clone());
        }
        Scenario {
            seed,
            devices,
            platform_watts: 550.0,
            gpu_models,
            workers_per_pipeline: 2,
            queue_capacity: 64,
            control_period_s: 4,
            featsel_ref_rate: 120.0,
            featsel_ref_mhz: 2200.0,
            gamma_fitted: 0.91,
            slo_margin: 1.06,
            memory_escape: false,
            arrival_rates: None,
            slos: vec![None; 8],
            changes: Vec::new(),
            sysid_steps_per_device: 8,
            sysid_hold_fraction: 0.5,
            rls_tracking: None,
            serving: None,
            llm: None,
            faults: None,
            supervisor: None,
            telemetry: None,
        }
    }

    /// The §3.2 motivation testbed: one Xeon + one RTX 3090 running
    /// GoogLeNet with ten parallel preprocessing workers.
    pub fn motivation_testbed(seed: u64) -> Self {
        Scenario {
            seed,
            devices: vec![presets::xeon_gold_5215(), presets::rtx_3090()],
            platform_watts: 120.0,
            gpu_models: vec![models::googlenet_wildlife()],
            workers_per_pipeline: 10,
            queue_capacity: 20,
            control_period_s: 4,
            featsel_ref_rate: 120.0,
            featsel_ref_mhz: 2200.0,
            gamma_fitted: 0.91,
            slo_margin: 1.06,
            memory_escape: false,
            arrival_rates: None,
            slos: vec![None],
            changes: Vec::new(),
            sysid_steps_per_device: 8,
            sysid_hold_fraction: 0.5,
            rls_tracking: None,
            serving: None,
            llm: None,
            faults: None,
            supervisor: None,
            telemetry: None,
        }
    }

    /// The paper testbed with the request-level serving layer enabled:
    /// Poisson arrivals at ~60% of each task's full-clock capacity
    /// (ResNet50 ≈ 364 rps, Swin-T ≈ 235 rps, VGG16 ≈ 154 rps at batch
    /// 20) and per-request latency SLOs of 4× each model's full-batch
    /// time. Deep power caps push the effective frequency down, queues
    /// build, and measured p99 diverges — the regime the p99-vs-cap
    /// ablation explores.
    pub fn serving_testbed(seed: u64) -> Self {
        let mut s = Scenario::paper_testbed(seed);
        let rates: Vec<f64> = s
            .gpu_models
            .iter()
            .map(|m| 0.6 * m.batch_size as f64 / m.e_min_s)
            .collect();
        let slos: Vec<Option<f64>> = s.gpu_models.iter().map(|m| Some(4.0 * m.e_min_s)).collect();
        s.serving = Some(ServingConfig::poisson(&rates));
        s.slos = slos;
        s
    }

    /// The paper testbed with the two-phase LLM serving layer enabled:
    /// the three V100s serve three request mixes spanning the
    /// prefill/decode spectrum — t₁ *summarize* (long prompts, short
    /// answers: compute-bound prefill dominates), t₂ *chat* (balanced),
    /// t₃ *agent* (long prompts **and** long answers: memory-bound
    /// decode dominates the busy time while the large resident contexts
    /// keep the KV cache near its budget) — under continuous batching
    /// with chunked prefill and a 24k-token KV budget per GPU. The agent
    /// task is the phase signal's showcase: parking its GPU stretches
    /// decode residency, KV admission stalls, and TTFT collapses — while
    /// barely saving watts. Per-task TTFT and inter-token SLOs are
    /// tracked against measured percentiles; the per-GPU *batch* SLO
    /// floors stay off (`slos = None`) so the phase-mix signal, not a
    /// frequency floor, is what protects decode latency under a cap.
    pub fn llm_testbed(seed: u64) -> Self {
        let model = LlmServiceModel {
            f_max_mhz: 1350.0,
            prefill_tok_s: 16000.0,
            gamma_prefill: 0.95,
            decode_base_s: 0.02,
            decode_kv_coeff_s: 1.5e-7,
            gamma_decode: 0.2,
            step_overhead_s: 5e-4,
            max_batch: 32,
            kv_budget_tokens: 24_000,
            chunk_tokens: Some(512),
            gpu_util_prefill: 0.95,
            gpu_util_decode: 0.55,
        };
        let task = |rate_rps, p_lo, p_hi, o_lo, o_hi, ttft, itl| LlmTaskSpec {
            arrival: ArrivalProcess::Poisson { rate_rps },
            prompt: TokenRange { lo: p_lo, hi: p_hi },
            output: TokenRange { lo: o_lo, hi: o_hi },
            ttft_slo_s: ttft,
            itl_slo_s: itl,
        };
        let mut s = Scenario::paper_testbed(seed);
        s.llm = Some(LlmConfig {
            model,
            tasks: vec![
                // Summarize: prefill-heavy, elastic to the cap.
                task(1.2, 800, 1600, 30, 80, 1.0, 0.08),
                // Chat: balanced.
                task(1.5, 200, 600, 80, 200, 0.6, 0.08),
                // Agent: decode-bound and KV-hungry — long resident
                // contexts put TTFT at the mercy of cache admission.
                task(0.8, 1500, 2500, 250, 450, 6.0, 0.08),
            ],
            queue_capacity: 128,
        });
        s
    }

    /// The paper testbed under the canonical seeded fault storm
    /// (`capgpu-faults`): an intermittent meter-dropout storm, a bias
    /// drift, a stuck GPU clock, a GPU ejection/re-admission, and a PSU
    /// derate, staged across a 60-period horizon. Per-task SLOs of 4×
    /// each model's full-batch time give the storm a tail-latency cost
    /// to report. The supervisor is *not* enabled here — pair with
    /// [`Scenario::with_supervisor`] to compare supervised vs. bare.
    pub fn fault_testbed(seed: u64) -> Self {
        let mut s = Scenario::paper_testbed(seed);
        s.slos = s.gpu_models.iter().map(|m| Some(4.0 * m.e_min_s)).collect();
        s.faults = Some(
            capgpu_faults::FaultSchedule::storm(seed, &capgpu_faults::StormConfig::default())
                .expect("default storm config is valid"),
        );
        s
    }

    /// Adds a scheduled change, returning `self` for chaining.
    #[must_use]
    pub fn with_change(mut self, change: ScheduledChange) -> Self {
        self.changes.push(change);
        self
    }

    /// Sets the fault-injection schedule, returning `self` for chaining.
    #[must_use]
    pub fn with_faults(mut self, faults: capgpu_faults::FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables the supervisory failover layer, returning `self` for
    /// chaining.
    #[must_use]
    pub fn with_supervisor(mut self, cfg: crate::supervisor::SupervisorConfig) -> Self {
        self.supervisor = Some(cfg);
        self
    }

    /// Enables the request-level serving layer, returning `self` for
    /// chaining.
    #[must_use]
    pub fn with_serving(mut self, serving: ServingConfig) -> Self {
        self.serving = Some(serving);
        self
    }

    /// Enables the two-phase LLM serving layer, returning `self` for
    /// chaining.
    #[must_use]
    pub fn with_llm(mut self, llm: LlmConfig) -> Self {
        self.llm = Some(llm);
        self
    }

    /// Enables telemetry recording, returning `self` for chaining.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: capgpu_telemetry::TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Sets initial SLOs, returning `self` for chaining.
    #[must_use]
    pub fn with_slos(mut self, slos: Vec<Option<f64>>) -> Self {
        self.slos = slos;
        self
    }

    /// Number of GPUs in the scenario.
    pub fn num_gpus(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.kind == capgpu_sim::DeviceKind::Gpu)
            .count()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] with a description of the inconsistency.
    pub fn validate(&self) -> Result<()> {
        if self.devices.is_empty() {
            return Err(CapGpuError::BadConfig("scenario needs devices".into()));
        }
        let n_gpus = self.num_gpus();
        if n_gpus == 0 {
            return Err(CapGpuError::BadConfig("scenario needs >= 1 GPU".into()));
        }
        if self.gpu_models.len() != n_gpus {
            return Err(CapGpuError::BadConfig(format!(
                "{} GPU models for {} GPUs",
                self.gpu_models.len(),
                n_gpus
            )));
        }
        if self.slos.len() != n_gpus {
            return Err(CapGpuError::BadConfig(format!(
                "{} SLO entries for {} GPUs",
                self.slos.len(),
                n_gpus
            )));
        }
        if self.control_period_s == 0 {
            return Err(CapGpuError::BadConfig(
                "control period must be >= 1 s".into(),
            ));
        }
        if !(0.5..1.5).contains(&self.gamma_fitted) {
            return Err(CapGpuError::BadConfig("gamma_fitted out of range".into()));
        }
        if self.sysid_steps_per_device < 2 {
            return Err(CapGpuError::BadConfig(
                "sysid_steps_per_device must be >= 2".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.sysid_hold_fraction) {
            return Err(CapGpuError::BadConfig(
                "sysid_hold_fraction must be in [0, 1]".into(),
            ));
        }
        if let Some(rls) = &self.rls_tracking {
            if !(rls.forgetting > 0.0 && rls.forgetting <= 1.0 && rls.forgetting.is_finite()) {
                return Err(CapGpuError::BadConfig(
                    "rls_tracking.forgetting must be in (0, 1]".into(),
                ));
            }
            if rls.condition_guard <= 1.0 || rls.condition_guard.is_nan() {
                return Err(CapGpuError::BadConfig(
                    "rls_tracking.condition_guard must be > 1".into(),
                ));
            }
            if rls.probe_mhz < 0.0 || !rls.probe_mhz.is_finite() {
                return Err(CapGpuError::BadConfig(
                    "rls_tracking.probe_mhz must be finite and >= 0".into(),
                ));
            }
            if rls.settle_gate_mhz <= 0.0 || rls.settle_gate_mhz.is_nan() {
                return Err(CapGpuError::BadConfig(
                    "rls_tracking.settle_gate_mhz must be > 0".into(),
                ));
            }
        }
        if let Some(rates) = &self.arrival_rates {
            if rates.len() != n_gpus {
                return Err(CapGpuError::BadConfig(format!(
                    "{} arrival rates for {n_gpus} GPUs",
                    rates.len()
                )));
            }
            if rates.iter().any(|r| *r <= 0.0) {
                return Err(CapGpuError::BadConfig(
                    "arrival rates must be positive".into(),
                ));
            }
        }
        if let Some(serving) = &self.serving {
            if serving.arrivals.len() != n_gpus {
                return Err(CapGpuError::BadConfig(format!(
                    "{} serving arrival processes for {n_gpus} GPUs",
                    serving.arrivals.len()
                )));
            }
            for p in &serving.arrivals {
                p.validate()?;
            }
            if !(serving.batch_timeout_s >= 0.0 && serving.batch_timeout_s.is_finite()) {
                return Err(CapGpuError::BadConfig(
                    "serving.batch_timeout_s must be finite and >= 0".into(),
                ));
            }
            if !(0.0..1.0).contains(&serving.batch_overhead) {
                return Err(CapGpuError::BadConfig(
                    "serving.batch_overhead must be in [0, 1)".into(),
                ));
            }
            if let Some(m) = self
                .gpu_models
                .iter()
                .find(|m| serving.queue_capacity < m.batch_size)
            {
                return Err(CapGpuError::BadConfig(format!(
                    "serving.queue_capacity {} cannot hold one {} batch of {}",
                    serving.queue_capacity, m.name, m.batch_size
                )));
            }
        }
        if let Some(llm) = &self.llm {
            if self.serving.is_some() {
                return Err(CapGpuError::BadConfig(
                    "the llm and serving layers are mutually exclusive — \
                     each replaces the GPU-side plant"
                        .into(),
                ));
            }
            if llm.tasks.len() != n_gpus {
                return Err(CapGpuError::BadConfig(format!(
                    "{} llm tasks for {n_gpus} GPUs",
                    llm.tasks.len()
                )));
            }
            llm.validate()?;
        }
        if let Some(faults) = &self.faults {
            let kinds: Vec<capgpu_sim::DeviceKind> = self.devices.iter().map(|d| d.kind).collect();
            faults.validate(&kinds)?;
        }
        if let Some(sup) = &self.supervisor {
            sup.validate()?;
        }
        for change in &self.changes {
            match change {
                ScheduledChange::Slo { task, .. } if *task >= n_gpus => {
                    return Err(CapGpuError::BadConfig(format!(
                        "SLO change targets task {task} but there are {n_gpus} GPUs"
                    )));
                }
                ScheduledChange::ArrivalRate { task, .. } if *task >= n_gpus => {
                    return Err(CapGpuError::BadConfig(format!(
                        "arrival-rate change targets task {task} but there are {n_gpus} GPUs"
                    )));
                }
                ScheduledChange::ArrivalRate { .. } if self.arrival_rates.is_none() => {
                    return Err(CapGpuError::BadConfig(
                        "arrival-rate change requires open-loop arrival_rates".into(),
                    ));
                }
                ScheduledChange::ServingBurst { task, factor, .. } => {
                    if self.serving.is_none() && self.llm.is_none() {
                        return Err(CapGpuError::BadConfig(
                            "serving burst requires the serving or llm layer to be enabled".into(),
                        ));
                    }
                    if *task >= n_gpus {
                        return Err(CapGpuError::BadConfig(format!(
                            "serving burst targets task {task} but there are {n_gpus} GPUs"
                        )));
                    }
                    if *factor <= 0.0 || !factor.is_finite() {
                        return Err(CapGpuError::BadConfig(
                            "serving burst factor must be finite and > 0".into(),
                        ));
                    }
                }
                ScheduledChange::GainDrift { device, factor, .. } => {
                    if *device > n_gpus {
                        return Err(CapGpuError::BadConfig(format!(
                            "gain drift targets device {device} but there are {} devices",
                            n_gpus + 1
                        )));
                    }
                    if *factor <= 0.0 || !factor.is_finite() {
                        return Err(CapGpuError::BadConfig(
                            "gain drift factor must be finite and > 0".into(),
                        ));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_is_valid() {
        let s = Scenario::paper_testbed(1);
        s.validate().unwrap();
        assert_eq!(s.num_gpus(), 3);
        assert_eq!(s.control_period_s, 4);
        assert_eq!(s.gpu_models[0].name, "ResNet50");
    }

    #[test]
    fn motivation_testbed_is_valid() {
        let s = Scenario::motivation_testbed(1);
        s.validate().unwrap();
        assert_eq!(s.num_gpus(), 1);
        assert_eq!(s.workers_per_pipeline, 10);
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut s = Scenario::paper_testbed(1);
        s.gpu_models.pop();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.slos.pop();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.control_period_s = 0;
        assert!(s.validate().is_err());

        let s = Scenario::paper_testbed(1).with_change(ScheduledChange::Slo {
            at_period: 5,
            task: 9,
            slo_s: 0.1,
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.sysid_steps_per_device = 1;
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.sysid_hold_fraction = 1.2;
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.rls_tracking = Some(RlsTracking {
            forgetting: 0.0,
            ..Default::default()
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.rls_tracking = Some(RlsTracking {
            condition_guard: 0.5,
            ..Default::default()
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.rls_tracking = Some(RlsTracking {
            probe_mhz: -1.0,
            ..Default::default()
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.rls_tracking = Some(RlsTracking {
            settle_gate_mhz: 0.0,
            ..Default::default()
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s = s.with_change(ScheduledChange::GainDrift {
            at_period: 5,
            device: 9,
            factor: 1.5,
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s = s.with_change(ScheduledChange::GainDrift {
            at_period: 5,
            device: 1,
            factor: 0.0,
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.rls_tracking = Some(RlsTracking::default());
        s.validate().unwrap();
    }

    #[test]
    fn serving_testbed_is_valid() {
        let s = Scenario::serving_testbed(1);
        s.validate().unwrap();
        let cfg = s.serving.as_ref().expect("serving enabled");
        assert_eq!(cfg.arrivals.len(), 3);
        // ~60% of ResNet50's 20/0.055 ≈ 364 rps capacity.
        assert!((cfg.arrivals[0].mean_rate_rps() - 218.18).abs() < 0.5);
        assert!(s.slos.iter().all(Option::is_some));
    }

    #[test]
    fn serving_validation_catches_mismatches() {
        let mut s = Scenario::serving_testbed(1);
        s.serving.as_mut().unwrap().arrivals.pop();
        assert!(s.validate().is_err());

        let mut s = Scenario::serving_testbed(1);
        s.serving.as_mut().unwrap().batch_timeout_s = -0.1;
        assert!(s.validate().is_err());

        let mut s = Scenario::serving_testbed(1);
        s.serving.as_mut().unwrap().batch_overhead = 1.0;
        assert!(s.validate().is_err());

        let mut s = Scenario::serving_testbed(1);
        s.serving.as_mut().unwrap().queue_capacity = 5; // < batch 20
        assert!(s.validate().is_err());

        let mut s = Scenario::serving_testbed(1);
        s.serving.as_mut().unwrap().arrivals[0] = ArrivalProcess::Poisson { rate_rps: 0.0 };
        assert!(s.validate().is_err());

        // Bursts need the serving layer and a valid task/factor.
        let s = Scenario::paper_testbed(1).with_change(ScheduledChange::ServingBurst {
            at_period: 5,
            task: 0,
            factor: 2.0,
        });
        assert!(s.validate().is_err());
        let s = Scenario::serving_testbed(1).with_change(ScheduledChange::ServingBurst {
            at_period: 5,
            task: 9,
            factor: 2.0,
        });
        assert!(s.validate().is_err());
        let s = Scenario::serving_testbed(1).with_change(ScheduledChange::ServingBurst {
            at_period: 5,
            task: 0,
            factor: 0.0,
        });
        assert!(s.validate().is_err());
        let s = Scenario::serving_testbed(1).with_change(ScheduledChange::ServingBurst {
            at_period: 5,
            task: 0,
            factor: 2.0,
        });
        s.validate().unwrap();
    }

    #[test]
    fn llm_testbed_is_valid() {
        let s = Scenario::llm_testbed(1);
        s.validate().unwrap();
        let cfg = s.llm.as_ref().expect("llm enabled");
        assert_eq!(cfg.tasks.len(), 3);
        // Prefill-heavy t₁; KV-hungry decode-bound t₃ whose worst-case
        // single context fills a large fraction of the cache budget.
        assert!(cfg.tasks[0].prompt.hi > 10 * cfg.tasks[0].output.hi);
        assert!(cfg.tasks[2].output.lo > 3 * cfg.tasks[0].output.hi);
        let worst_ctx = cfg.tasks[2].prompt.hi + cfg.tasks[2].output.hi;
        assert!(10 * worst_ctx > cfg.model.kv_budget_tokens);
        // Batch SLO floors stay off: the phase signal does the work.
        assert!(s.slos.iter().all(Option::is_none));
        assert!(s.serving.is_none());
    }

    #[test]
    fn llm_validation_catches_mismatches() {
        // Tasks must match GPU count.
        let mut s = Scenario::llm_testbed(1);
        s.llm.as_mut().unwrap().tasks.pop();
        assert!(s.validate().is_err());

        // Mutually exclusive with the one-shot serving layer.
        let mut s = Scenario::llm_testbed(1);
        s.serving = Some(ServingConfig::poisson(&[10.0, 10.0, 10.0]));
        assert!(s.validate().is_err());

        // Degenerate model parameters surface the offending field.
        let mut s = Scenario::llm_testbed(1);
        s.llm.as_mut().unwrap().model.prefill_tok_s = 0.0;
        let msg = format!("{}", s.validate().unwrap_err());
        assert!(msg.contains("prefill_tok_s"), "{msg}");

        // A request that could never fit the KV budget is rejected.
        let mut s = Scenario::llm_testbed(1);
        s.llm.as_mut().unwrap().tasks[0].prompt.hi = 100_000;
        assert!(s.validate().is_err());

        // Bursts work against the llm layer too.
        let s = Scenario::llm_testbed(1).with_change(ScheduledChange::ServingBurst {
            at_period: 5,
            task: 2,
            factor: 2.0,
        });
        s.validate().unwrap();
    }

    #[test]
    fn fault_testbed_is_valid() {
        let s = Scenario::fault_testbed(42);
        s.validate().unwrap();
        let storm = s.faults.as_ref().expect("storm enabled");
        assert_eq!(storm.specs.len(), 5);
        assert!(s.slos.iter().all(Option::is_some));
        assert!(s.supervisor.is_none());
        // Deterministic per seed.
        assert_eq!(storm, Scenario::fault_testbed(42).faults.as_ref().unwrap());
        // Supervised variant validates too.
        Scenario::fault_testbed(42)
            .with_supervisor(crate::supervisor::SupervisorConfig::default())
            .validate()
            .unwrap();
    }

    #[test]
    fn fault_validation_catches_bad_schedules() {
        use capgpu_faults::{FaultKind, FaultSchedule, FaultSpec};
        // Actuator fault on the CPU: the sim only models GPU actuator
        // faults (nvidia-smi path).
        let s = Scenario::paper_testbed(1).with_faults(FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::ClockStuck { device: 0 },
                onset_period: 0,
                duration: None,
                intermittency: None,
            }],
        });
        assert!(s.validate().is_err());
        // Out-of-range device.
        let s = Scenario::paper_testbed(1).with_faults(FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::Ejected { device: 7 },
                onset_period: 0,
                duration: None,
                intermittency: None,
            }],
        });
        assert!(s.validate().is_err());
        // Bad supervisor thresholds.
        let mut s = Scenario::paper_testbed(1);
        s.supervisor = Some(crate::supervisor::SupervisorConfig {
            recovery_periods: 0,
            ..Default::default()
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn chaining_builders() {
        let s = Scenario::paper_testbed(1)
            .with_slos(vec![Some(0.1), None, Some(0.3)])
            .with_change(ScheduledChange::SetPoint {
                at_period: 40,
                watts: 900.0,
            });
        s.validate().unwrap();
        assert_eq!(s.changes.len(), 1);
        assert_eq!(s.slos[0], Some(0.1));
    }
}
