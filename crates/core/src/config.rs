//! Experiment scenarios: server composition, workloads, schedules.

use capgpu_sim::{presets, DeviceSpec};
use capgpu_workload::models::{self, ModelProfile};
use serde::{Deserialize, Serialize};

use crate::{CapGpuError, Result};

/// A mid-run scheduled event (the §6.4 online-adaptability experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduledChange {
    /// Change the power set point at the given control period.
    SetPoint {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// New set point (W).
        watts: f64,
    },
    /// Change one GPU task's latency SLO at the given control period.
    Slo {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// GPU task index (0-based, in GPU order).
        task: usize,
        /// New SLO (seconds per batch).
        slo_s: f64,
    },
    /// Change one GPU task's request arrival rate (open-loop pipelines
    /// only) — the §6.4 demand surge.
    ArrivalRate {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// GPU task index (0-based, in GPU order).
        task: usize,
        /// New mean arrival rate (images/s).
        rate_img_s: f64,
    },
    /// Inject or clear a power-meter fault.
    MeterFault {
        /// Control period index at which the change takes effect.
        at_period: usize,
        /// `true` = start dropout, `false` = clear.
        dropout: bool,
    },
}

/// A full experiment scenario: the server, its workloads and timing.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// RNG seed for all stochastic components.
    pub seed: u64,
    /// Device specs (CPUs first by convention; see [`Scenario::validate`]).
    pub devices: Vec<DeviceSpec>,
    /// Constant platform power (W).
    pub platform_watts: f64,
    /// One inference model per GPU, in GPU order (t₁ → GPU 0, …).
    pub gpu_models: Vec<ModelProfile>,
    /// Preprocessing workers per GPU pipeline.
    pub workers_per_pipeline: usize,
    /// Shared queue capacity per pipeline (images).
    pub queue_capacity: usize,
    /// Control period T in seconds (paper: 4).
    pub control_period_s: usize,
    /// Feature-selection reference rate (subsets/s at `featsel_ref_mhz`).
    pub featsel_ref_rate: f64,
    /// Reference CPU frequency for the feature-selection rate (MHz).
    pub featsel_ref_mhz: f64,
    /// The fitted latency-model exponent the *controller* uses (paper:
    /// γ = 0.91; ground truth differs per model).
    pub gamma_fitted: f64,
    /// Multiplicative safety factor on SLO frequency floors, covering the
    /// fitted-γ model error, latency jitter, and the delta-sigma
    /// modulator's dips to the level below the target.
    pub slo_margin: f64,
    /// Enable the §4.4 "multi-layer adaptation" escape hatch: when the
    /// set point is unreachable with every core clock at its floor, the
    /// runner engages the GPUs' low-memory-clock states (and releases
    /// them with hysteresis once frequency scaling regains authority).
    pub memory_escape: bool,
    /// Per-task open-loop arrival rates (images/s). `None` = closed-loop
    /// saturating streams (the paper's evaluation default).
    pub arrival_rates: Option<Vec<f64>>,
    /// Initial per-GPU-task SLOs in seconds (`None` = no SLO constraint).
    pub slos: Vec<Option<f64>>,
    /// Scheduled mid-run changes.
    pub changes: Vec<ScheduledChange>,
}

impl Scenario {
    /// The paper's evaluation testbed (§5–6): one Xeon Gold 5215, three
    /// Tesla V100s running t₁ = ResNet50, t₂ = Swin-T, t₃ = VGG16 (one
    /// dedicated preprocessing core each), exhaustive feature selection on
    /// the remaining cores, T = 4 s, γ = 0.91, no SLOs.
    pub fn paper_testbed(seed: u64) -> Self {
        Scenario {
            seed,
            devices: vec![
                presets::xeon_gold_5215(),
                presets::tesla_v100(),
                presets::tesla_v100(),
                presets::tesla_v100(),
            ],
            // Fans (pinned per §5), RAM, NVMe, VRM losses. Sized so the
            // paper's full 900–1200 W set-point sweep is feasible at the
            // workload's realistic utilizations.
            platform_watts: 330.0,
            gpu_models: models::evaluation_models(),
            workers_per_pipeline: 2,
            queue_capacity: 64,
            control_period_s: 4,
            featsel_ref_rate: 120.0,
            featsel_ref_mhz: 2200.0,
            gamma_fitted: 0.91,
            slo_margin: 1.06,
            memory_escape: false,
            arrival_rates: None,
            slos: vec![None, None, None],
            changes: Vec::new(),
        }
    }

    /// An 8-GPU scale-out testbed (the paper: "a server is usually
    /// equipped with one host CPU and up to eight GPUs"): one Xeon plus
    /// eight Tesla V100s, cycling the three evaluation models across the
    /// GPUs, with a platform floor sized for the bigger chassis.
    pub fn eight_gpu_testbed(seed: u64) -> Self {
        let mut devices = vec![presets::xeon_gold_5215()];
        let mut gpu_models = Vec::with_capacity(8);
        let eval = models::evaluation_models();
        for i in 0..8 {
            devices.push(presets::tesla_v100());
            gpu_models.push(eval[i % eval.len()].clone());
        }
        Scenario {
            seed,
            devices,
            platform_watts: 550.0,
            gpu_models,
            workers_per_pipeline: 2,
            queue_capacity: 64,
            control_period_s: 4,
            featsel_ref_rate: 120.0,
            featsel_ref_mhz: 2200.0,
            gamma_fitted: 0.91,
            slo_margin: 1.06,
            memory_escape: false,
            arrival_rates: None,
            slos: vec![None; 8],
            changes: Vec::new(),
        }
    }

    /// The §3.2 motivation testbed: one Xeon + one RTX 3090 running
    /// GoogLeNet with ten parallel preprocessing workers.
    pub fn motivation_testbed(seed: u64) -> Self {
        Scenario {
            seed,
            devices: vec![presets::xeon_gold_5215(), presets::rtx_3090()],
            platform_watts: 120.0,
            gpu_models: vec![models::googlenet_wildlife()],
            workers_per_pipeline: 10,
            queue_capacity: 20,
            control_period_s: 4,
            featsel_ref_rate: 120.0,
            featsel_ref_mhz: 2200.0,
            gamma_fitted: 0.91,
            slo_margin: 1.06,
            memory_escape: false,
            arrival_rates: None,
            slos: vec![None],
            changes: Vec::new(),
        }
    }

    /// Adds a scheduled change, returning `self` for chaining.
    #[must_use]
    pub fn with_change(mut self, change: ScheduledChange) -> Self {
        self.changes.push(change);
        self
    }

    /// Sets initial SLOs, returning `self` for chaining.
    #[must_use]
    pub fn with_slos(mut self, slos: Vec<Option<f64>>) -> Self {
        self.slos = slos;
        self
    }

    /// Number of GPUs in the scenario.
    pub fn num_gpus(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.kind == capgpu_sim::DeviceKind::Gpu)
            .count()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// [`CapGpuError::BadConfig`] with a description of the inconsistency.
    pub fn validate(&self) -> Result<()> {
        if self.devices.is_empty() {
            return Err(CapGpuError::BadConfig("scenario needs devices".into()));
        }
        let n_gpus = self.num_gpus();
        if n_gpus == 0 {
            return Err(CapGpuError::BadConfig("scenario needs >= 1 GPU".into()));
        }
        if self.gpu_models.len() != n_gpus {
            return Err(CapGpuError::BadConfig(format!(
                "{} GPU models for {} GPUs",
                self.gpu_models.len(),
                n_gpus
            )));
        }
        if self.slos.len() != n_gpus {
            return Err(CapGpuError::BadConfig(format!(
                "{} SLO entries for {} GPUs",
                self.slos.len(),
                n_gpus
            )));
        }
        if self.control_period_s == 0 {
            return Err(CapGpuError::BadConfig(
                "control period must be >= 1 s".into(),
            ));
        }
        if !(0.5..1.5).contains(&self.gamma_fitted) {
            return Err(CapGpuError::BadConfig("gamma_fitted out of range".into()));
        }
        if let Some(rates) = &self.arrival_rates {
            if rates.len() != n_gpus {
                return Err(CapGpuError::BadConfig(format!(
                    "{} arrival rates for {n_gpus} GPUs",
                    rates.len()
                )));
            }
            if rates.iter().any(|r| *r <= 0.0) {
                return Err(CapGpuError::BadConfig(
                    "arrival rates must be positive".into(),
                ));
            }
        }
        for change in &self.changes {
            match change {
                ScheduledChange::Slo { task, .. } if *task >= n_gpus => {
                    return Err(CapGpuError::BadConfig(format!(
                        "SLO change targets task {task} but there are {n_gpus} GPUs"
                    )));
                }
                ScheduledChange::ArrivalRate { task, .. } if *task >= n_gpus => {
                    return Err(CapGpuError::BadConfig(format!(
                        "arrival-rate change targets task {task} but there are {n_gpus} GPUs"
                    )));
                }
                ScheduledChange::ArrivalRate { .. } if self.arrival_rates.is_none() => {
                    return Err(CapGpuError::BadConfig(
                        "arrival-rate change requires open-loop arrival_rates".into(),
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_is_valid() {
        let s = Scenario::paper_testbed(1);
        s.validate().unwrap();
        assert_eq!(s.num_gpus(), 3);
        assert_eq!(s.control_period_s, 4);
        assert_eq!(s.gpu_models[0].name, "ResNet50");
    }

    #[test]
    fn motivation_testbed_is_valid() {
        let s = Scenario::motivation_testbed(1);
        s.validate().unwrap();
        assert_eq!(s.num_gpus(), 1);
        assert_eq!(s.workers_per_pipeline, 10);
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut s = Scenario::paper_testbed(1);
        s.gpu_models.pop();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.slos.pop();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_testbed(1);
        s.control_period_s = 0;
        assert!(s.validate().is_err());

        let s = Scenario::paper_testbed(1).with_change(ScheduledChange::Slo {
            at_period: 5,
            task: 9,
            slo_s: 0.1,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn chaining_builders() {
        let s = Scenario::paper_testbed(1)
            .with_slos(vec![Some(0.1), None, Some(0.3)])
            .with_change(ScheduledChange::SetPoint {
                at_period: 40,
                watts: 900.0,
            });
        s.validate().unwrap();
        assert_eq!(s.changes.len(), 1);
        assert_eq!(s.slos[0], Some(0.1));
    }
}
