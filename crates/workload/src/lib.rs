//! ML inference workload simulation for CapGPU.
//!
//! The paper's workloads are (a) image-classification inference on GPUs —
//! ResNet50, Swin Transformer and VGG16 at batch size 20, fed by CPU
//! preprocessing — and (b) an exhaustive feature-selection job on the
//! Alibaba PAI trace keeping the remaining CPU cores busy. This crate
//! provides simulated equivalents that expose the **same observables** the
//! real workloads expose to the controller: per-device utilization (for
//! the power model), per-period throughput (for the weight assigner) and
//! per-batch inference latency (for SLO tracking).
//!
//! * [`models`] — profiles of the four networks the paper uses, with
//!   per-model `e_min`/γ ground truth for the latency law (Eq. 8).
//! * [`pipeline`] — a discrete-event simulation of the preprocessing →
//!   queue → batching → GPU-inference pipeline of §3.2, reproducing the
//!   starvation/bottleneck behaviour that motivates joint CPU+GPU capping
//!   (Table 1).
//! * [`featsel`] — a *real* exhaustive feature-selection implementation
//!   (every subset, k-fold cross-validated least squares) plus the
//!   rate model that maps CPU frequency to subsets/s for the simulator.
//! * [`pai`] — a synthetic Alibaba-PAI-style trace generator with a known
//!   ground-truth feature subset, so feature selection has signal to find.
//! * [`monitor`] — sliding-window throughput monitors with max
//!   normalization (§3.1 step 2).
//! * [`slo`] — SLO bookkeeping: tail-latency-derived SLO levels (§6.4) and
//!   deadline-miss accounting.

#![warn(missing_docs)]

pub mod featsel;
pub mod models;
pub mod monitor;
pub mod pai;
pub mod pipeline;
pub mod slo;

pub use models::ModelProfile;
pub use monitor::ThroughputMonitor;
pub use pipeline::{PipelineConfig, PipelineSim, WindowStats};
pub use slo::SloTracker;

/// Errors from the workload layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// Invalid configuration.
    BadConfig(&'static str),
    /// Numerical failure in the feature-selection regression.
    Numerical(capgpu_linalg::LinalgError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::BadConfig(m) => write!(f, "bad workload config: {m}"),
            WorkloadError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<capgpu_linalg::LinalgError> for WorkloadError {
    fn from(e: capgpu_linalg::LinalgError) -> Self {
        WorkloadError::Numerical(e)
    }
}

/// Result alias for the workload layer.
pub type Result<T> = std::result::Result<T, WorkloadError>;
