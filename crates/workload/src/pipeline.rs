//! Discrete-event simulation of the inference pipeline (§3.2).
//!
//! The paper's motivation setup: parallel CPU processes each preprocess
//! images (resize / normalize / tensor conversion) and push tensors into a
//! shared bounded queue; a GPU-bound consumer assembles batches of 20 and
//! runs inference. Throttling the CPU starves the GPU; throttling the GPU
//! backs the queue up and blocks the workers — the crossover Table 1
//! quantifies. This module reproduces that pipeline as an event-driven
//! simulation advanced in wall-clock windows (one window per power-meter
//! second), with the CPU and GPU frequencies in force during the window
//! setting the preprocessing and inference speeds.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::models::ModelProfile;
use crate::{Result, WorkloadError};

/// How images enter the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// Closed loop: every worker always has a next image (a saturating
    /// benchmark stream, the paper's evaluation default).
    Closed,
    /// Open loop: images arrive by a Poisson process at `rate_img_s`;
    /// workers idle when no request is waiting. Models interactive
    /// serving traffic and lets experiments replay demand surges
    /// (§6.4's "sudden surge in GPU inference requests").
    Open {
        /// Mean arrival rate (images/s).
        rate_img_s: f64,
    },
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The inference model served by this pipeline.
    pub model: ModelProfile,
    /// Number of CPU preprocessing workers (paper motivation: 10; the
    /// 3-GPU evaluation dedicates 1 core per GPU).
    pub num_workers: usize,
    /// Bounded queue capacity in images (must hold at least one batch).
    pub queue_capacity: usize,
    /// RNG seed for latency jitter.
    pub seed: u64,
    /// Maximum GPU frequency (MHz) used in the latency law.
    pub f_gpu_max_mhz: f64,
    /// Arrival process (closed-loop saturation or open-loop Poisson).
    pub arrivals: ArrivalMode,
}

/// Worker state: preprocessing an image, blocked on a full queue, or (in
/// open-loop mode) idle awaiting an arrival.
#[derive(Debug, Clone, Copy)]
enum Worker {
    /// Preprocessing; image ready at `done_at`.
    Busy { done_at: f64 },
    /// Finished an image at `ready_at` but the queue was full.
    Blocked { ready_at: f64 },
    /// No request waiting (open-loop mode only).
    Idle,
}

/// GPU state: idle or executing a batch.
#[derive(Debug, Clone)]
enum Gpu {
    Idle,
    Busy {
        done_at: f64,
        started_at: f64,
        /// Enqueue timestamps of the images in the in-flight batch.
        batch: Vec<f64>,
    },
}

/// Statistics for one simulated window.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Images whose inference completed in the window.
    pub images_completed: usize,
    /// Batches completed in the window.
    pub batches_completed: usize,
    /// Window length (s).
    pub window_s: f64,
    /// Fraction of the window the GPU had a batch in flight.
    pub gpu_busy_fraction: f64,
    /// Effective GPU utilization for the power model (busy fraction ×
    /// the model's utilization while executing).
    pub gpu_util: f64,
    /// Mean fraction of workers actively preprocessing (not blocked).
    pub cpu_worker_util: f64,
    /// GPU execution time of every batch completed in the window (s).
    pub batch_latencies: Vec<f64>,
    /// Per-image queue delay (batch start − enqueue) of completed images.
    pub queue_delays: Vec<f64>,
    /// Time-averaged queue length over the window.
    pub mean_queue_len: f64,
    /// Requests that arrived during the window (open-loop mode).
    pub arrivals: usize,
    /// Requests waiting for a free worker at window end (open-loop mode).
    pub ingress_backlog: usize,
}

impl WindowStats {
    /// Throughput in images per second.
    pub fn throughput_img_s(&self) -> f64 {
        if self.window_s <= 0.0 {
            return 0.0;
        }
        self.images_completed as f64 / self.window_s
    }
}

/// The pipeline simulator.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    cfg: PipelineConfig,
    now: f64,
    workers: Vec<Worker>,
    /// Ready-timestamps of images waiting in the shared queue.
    queue: VecDeque<f64>,
    gpu: Gpu,
    rng: StdRng,
    /// Open-loop mode: current arrival rate (img/s).
    arrival_rate: Option<f64>,
    /// Open-loop mode: time of the next Poisson arrival.
    next_arrival: f64,
    /// Open-loop mode: arrival timestamps waiting for a free worker.
    ingress: VecDeque<f64>,
    /// Recycled batch buffer: avoids one heap allocation per batch start.
    spare_batch: Vec<f64>,
}

impl PipelineSim {
    /// Creates the pipeline; workers start preprocessing immediately.
    ///
    /// # Errors
    /// [`WorkloadError::BadConfig`] when there are no workers, the queue
    /// cannot hold a batch, or the model's batch size is zero.
    pub fn new(cfg: PipelineConfig) -> Result<Self> {
        if cfg.num_workers == 0 {
            return Err(WorkloadError::BadConfig("pipeline needs >= 1 worker"));
        }
        if cfg.model.batch_size == 0 {
            return Err(WorkloadError::BadConfig("batch size must be positive"));
        }
        if cfg.queue_capacity < cfg.model.batch_size {
            return Err(WorkloadError::BadConfig(
                "queue must hold at least one batch",
            ));
        }
        if cfg.f_gpu_max_mhz <= 0.0 {
            return Err(WorkloadError::BadConfig("f_gpu_max must be positive"));
        }
        let arrival_rate = match cfg.arrivals {
            ArrivalMode::Closed => None,
            ArrivalMode::Open { rate_img_s } => {
                if rate_img_s <= 0.0 {
                    return Err(WorkloadError::BadConfig("arrival rate must be positive"));
                }
                Some(rate_img_s)
            }
        };
        let workers = vec![Worker::Busy { done_at: 0.0 }; cfg.num_workers];
        let mut sim = PipelineSim {
            cfg,
            now: 0.0,
            workers,
            queue: VecDeque::new(),
            gpu: Gpu::Idle,
            rng: StdRng::seed_from_u64(0),
            arrival_rate,
            next_arrival: f64::INFINITY,
            ingress: VecDeque::new(),
            spare_batch: Vec::new(),
        };
        sim.rng = StdRng::seed_from_u64(sim.cfg.seed);
        match sim.arrival_rate {
            // Closed loop: workers start preprocessing immediately, with
            // staggered completions so they don't fire in lockstep.
            None => {
                for i in 0..sim.workers.len() {
                    let jitterless = sim.cfg.model.preprocess_s_per_image;
                    sim.workers[i] = Worker::Busy {
                        done_at: jitterless * (i as f64 + 1.0) / sim.workers.len() as f64,
                    };
                }
            }
            // Open loop: workers idle until the first arrival.
            Some(_) => {
                sim.workers.iter_mut().for_each(|w| *w = Worker::Idle);
                sim.next_arrival = sim.draw_arrival(0.0);
            }
        }
        Ok(sim)
    }

    /// Simulation clock (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Current queue length in images.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Changes the open-loop arrival rate mid-run (demand surge/ebb).
    ///
    /// # Errors
    /// [`WorkloadError::BadConfig`] when called on a closed-loop pipeline
    /// or with a non-positive rate.
    pub fn set_arrival_rate(&mut self, rate_img_s: f64) -> Result<()> {
        if self.arrival_rate.is_none() {
            return Err(WorkloadError::BadConfig(
                "closed-loop pipeline has no arrival rate",
            ));
        }
        if rate_img_s <= 0.0 {
            return Err(WorkloadError::BadConfig("arrival rate must be positive"));
        }
        self.arrival_rate = Some(rate_img_s);
        // Next arrival re-drawn at the new rate from now.
        self.next_arrival = self.draw_arrival(self.now);
        Ok(())
    }

    /// Requests waiting for a free worker (open-loop mode).
    pub fn ingress_len(&self) -> usize {
        self.ingress.len()
    }

    /// Draws the next Poisson arrival time after `t`.
    fn draw_arrival(&mut self, t: f64) -> f64 {
        match self.arrival_rate {
            Some(rate) => {
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                t - u.ln() / rate
            }
            None => f64::INFINITY,
        }
    }

    /// Starts a worker on its next image, honoring the arrival mode:
    /// closed-loop always has work; open-loop takes from the ingress
    /// backlog or idles. Returns whether the worker went busy.
    fn start_next_image(&mut self, i: usize, f_cpu_mhz: f64) -> bool {
        let has_work = self.arrival_rate.is_none() || self.ingress.pop_front().is_some();
        if has_work {
            let pre = self.cfg.model.preprocess_time(f_cpu_mhz) * self.jitter();
            self.workers[i] = Worker::Busy {
                done_at: self.now + pre,
            };
        } else {
            self.workers[i] = Worker::Idle;
        }
        has_work
    }

    /// Multiplicative jitter factor drawn from `[1−j, 1+j]`.
    fn jitter(&mut self) -> f64 {
        let j = self.cfg.model.jitter;
        if j == 0.0 {
            1.0
        } else {
            1.0 + self.rng.gen_range(-j..j)
        }
    }

    /// Advances the pipeline by `window_s` seconds with the given CPU and
    /// GPU frequencies in force, returning the window's statistics.
    ///
    /// Allocating convenience wrapper over [`PipelineSim::advance_into`].
    ///
    /// # Panics
    /// Panics (debug) on non-positive frequencies or window.
    pub fn advance(&mut self, window_s: f64, f_cpu_mhz: f64, f_gpu_mhz: f64) -> WindowStats {
        let mut stats = WindowStats::default();
        self.advance_into(window_s, f_cpu_mhz, f_gpu_mhz, &mut stats);
        stats
    }

    /// Advances the pipeline by `window_s` seconds, writing the window's
    /// statistics into `stats` (cleared first, reusing its buffers). The
    /// hot path for per-second stepping: a caller-owned `WindowStats` is
    /// recycled across windows so no per-window heap allocation occurs.
    ///
    /// # Panics
    /// Panics (debug) on non-positive frequencies or window.
    pub fn advance_into(
        &mut self,
        window_s: f64,
        f_cpu_mhz: f64,
        f_gpu_mhz: f64,
        stats: &mut WindowStats,
    ) {
        debug_assert!(window_s > 0.0 && f_cpu_mhz > 0.0 && f_gpu_mhz > 0.0);
        let end = self.now + window_s;
        stats.images_completed = 0;
        stats.batches_completed = 0;
        stats.window_s = window_s;
        stats.gpu_busy_fraction = 0.0;
        stats.gpu_util = 0.0;
        stats.cpu_worker_util = 0.0;
        stats.batch_latencies.clear();
        stats.queue_delays.clear();
        stats.mean_queue_len = 0.0;
        stats.arrivals = 0;
        stats.ingress_backlog = 0;
        let mut gpu_busy_time = 0.0;
        let mut worker_busy_time = 0.0;
        let mut queue_len_integral = 0.0;
        let mut last_t = self.now;
        // Busy-worker count, maintained incrementally at state transitions
        // so the per-event integral update is O(busy) additions instead of
        // a full state scan.
        let mut busy_count = self
            .workers
            .iter()
            .filter(|w| matches!(w, Worker::Busy { .. }))
            .count();

        loop {
            // If the GPU is idle and a full batch is queued, start it now.
            if matches!(self.gpu, Gpu::Idle) && self.queue.len() >= self.cfg.model.batch_size {
                let mut batch = std::mem::take(&mut self.spare_batch);
                batch.clear();
                batch.reserve(self.cfg.model.batch_size);
                for _ in 0..self.cfg.model.batch_size {
                    batch.push(self.queue.pop_front().expect("len checked"));
                }
                // Queue space freed: resume blocked workers.
                self.unblock_workers(f_cpu_mhz, &mut busy_count);
                let exec = self
                    .cfg
                    .model
                    .true_batch_latency(f_gpu_mhz, self.cfg.f_gpu_max_mhz)
                    * self.jitter();
                self.gpu = Gpu::Busy {
                    done_at: self.now + exec,
                    started_at: self.now,
                    batch,
                };
            }

            // Next event time; the worker minimum is kept separately so the
            // completion scan below can be skipped when no worker is due.
            let mut worker_min = f64::INFINITY;
            for w in &self.workers {
                if let Worker::Busy { done_at } = w {
                    worker_min = worker_min.min(*done_at);
                }
            }
            let mut t_next = worker_min;
            if let Gpu::Busy { done_at, .. } = &self.gpu {
                t_next = t_next.min(*done_at);
            }
            if self.arrival_rate.is_some() {
                t_next = t_next.min(self.next_arrival);
            }

            if t_next > end {
                // Window ends before the next event: accumulate partial
                // busy time and stop.
                self.accumulate(
                    last_t,
                    end,
                    &mut gpu_busy_time,
                    &mut worker_busy_time,
                    &mut queue_len_integral,
                    busy_count,
                );
                self.now = end;
                break;
            }

            self.accumulate(
                last_t,
                t_next,
                &mut gpu_busy_time,
                &mut worker_busy_time,
                &mut queue_len_integral,
                busy_count,
            );
            self.now = t_next;
            last_t = t_next;

            // GPU completion first (frees queue insight for workers at the
            // same instant via the loop's top-of-iteration batch start).
            if matches!(&self.gpu, Gpu::Busy { done_at, .. } if *done_at <= self.now) {
                if let Gpu::Busy {
                    done_at,
                    started_at,
                    batch,
                } = std::mem::replace(&mut self.gpu, Gpu::Idle)
                {
                    stats.batches_completed += 1;
                    stats.images_completed += batch.len();
                    stats.batch_latencies.push(done_at - started_at);
                    for enq in &batch {
                        stats.queue_delays.push((started_at - enq).max(0.0));
                    }
                    // Recycle the batch buffer for the next batch start.
                    self.spare_batch = batch;
                }
                continue;
            }

            // Arrivals at this instant (open-loop mode).
            while self.arrival_rate.is_some() && self.next_arrival <= self.now {
                stats.arrivals += 1;
                let idle = self.workers.iter().position(|w| matches!(w, Worker::Idle));
                match idle {
                    Some(i) => {
                        let pre = self.cfg.model.preprocess_time(f_cpu_mhz) * self.jitter();
                        self.workers[i] = Worker::Busy {
                            done_at: self.now + pre,
                        };
                        busy_count += 1;
                    }
                    None => self.ingress.push_back(self.now),
                }
                self.next_arrival = self.draw_arrival(self.next_arrival);
            }

            // Worker completions at this instant (skipped when no worker
            // deadline has been reached — e.g. on GPU/arrival-only events).
            if worker_min <= self.now {
                for i in 0..self.workers.len() {
                    if let Worker::Busy { done_at } = self.workers[i] {
                        if done_at <= self.now {
                            if self.queue.len() < self.cfg.queue_capacity {
                                self.queue.push_back(done_at);
                                if !self.start_next_image(i, f_cpu_mhz) {
                                    busy_count -= 1;
                                }
                            } else {
                                self.workers[i] = Worker::Blocked { ready_at: done_at };
                                busy_count -= 1;
                            }
                        }
                    }
                }
            }
        }

        stats.gpu_busy_fraction = (gpu_busy_time / window_s).clamp(0.0, 1.0);
        stats.gpu_util = stats.gpu_busy_fraction * self.cfg.model.gpu_util_busy;
        stats.cpu_worker_util =
            (worker_busy_time / (window_s * self.workers.len() as f64)).clamp(0.0, 1.0);
        stats.mean_queue_len = queue_len_integral / window_s;
        stats.ingress_backlog = self.ingress.len();
    }

    /// Moves blocked workers' images into freed queue space and restarts
    /// them preprocessing.
    fn unblock_workers(&mut self, f_cpu_mhz: f64, busy_count: &mut usize) {
        for i in 0..self.workers.len() {
            if self.queue.len() >= self.cfg.queue_capacity {
                break;
            }
            if let Worker::Blocked { ready_at } = self.workers[i] {
                self.queue.push_back(ready_at);
                if self.start_next_image(i, f_cpu_mhz) {
                    *busy_count += 1;
                }
            }
        }
    }

    /// Accumulates busy-time integrals over `[from, to]`.
    ///
    /// `worker_busy` advances by one `dt` addition per busy worker — kept
    /// as repeated addition (not `busy_count as f64 * dt`) so the floating
    /// point result is bit-identical to the original per-worker scan.
    fn accumulate(
        &self,
        from: f64,
        to: f64,
        gpu_busy: &mut f64,
        worker_busy: &mut f64,
        queue_integral: &mut f64,
        busy_count: usize,
    ) {
        let dt = (to - from).max(0.0);
        if dt == 0.0 {
            return;
        }
        if let Gpu::Busy { done_at, .. } = &self.gpu {
            *gpu_busy += dt.min((done_at - from).max(0.0));
        }
        for _ in 0..busy_count {
            *worker_busy += dt;
        }
        *queue_integral += self.queue.len() as f64 * dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn motivation_cfg(seed: u64) -> PipelineConfig {
        PipelineConfig {
            model: models::googlenet_wildlife(),
            num_workers: 10,
            queue_capacity: 20,
            seed,
            f_gpu_max_mhz: 2100.0,
            arrivals: ArrivalMode::Closed,
        }
    }

    #[test]
    fn validation() {
        let mut cfg = motivation_cfg(1);
        cfg.num_workers = 0;
        assert!(PipelineSim::new(cfg).is_err());

        let mut cfg = motivation_cfg(1);
        cfg.queue_capacity = 5; // < batch 20
        assert!(PipelineSim::new(cfg).is_err());

        let mut cfg = motivation_cfg(1);
        cfg.f_gpu_max_mhz = 0.0;
        assert!(PipelineSim::new(cfg).is_err());
    }

    #[test]
    fn conservation_no_images_lost() {
        // Over a long run: completed + queued + in-flight + per-worker
        // holding = produced. We check the weaker invariant that completed
        // image count is a multiple of the batch size and throughput > 0.
        let mut sim = PipelineSim::new(motivation_cfg(3)).unwrap();
        let mut total = 0;
        for _ in 0..120 {
            let s = sim.advance(1.0, 1600.0, 660.0);
            total += s.images_completed;
            assert_eq!(s.images_completed % 20, 0);
        }
        // Joint midpoint sustains ≈6.5 img/s → ≈780 images in 120 s.
        assert!(total > 500, "only {total} images in 120 s");
    }

    #[test]
    fn cpu_starves_gpu_at_low_cpu_frequency() {
        // CPU-only config of Table 1: CPU 1.1 GHz, GPU 810 MHz — the GPU
        // should be data-starved (low busy fraction) and the queue short.
        let mut sim = PipelineSim::new(motivation_cfg(5)).unwrap();
        let mut gpu_busy = 0.0;
        let mut n = 0.0;
        for _ in 0..90 {
            let s = sim.advance(1.0, 1100.0, 810.0);
            gpu_busy += s.gpu_busy_fraction;
            n += 1.0;
        }
        let avg_busy = gpu_busy / n;
        assert!(avg_busy < 0.9, "GPU should starve, busy = {avg_busy}");
    }

    #[test]
    fn gpu_bottleneck_at_low_gpu_frequency() {
        // GPU-only config: CPU 2.1 GHz, GPU 495 MHz — queue backs up and
        // the GPU saturates.
        let mut sim = PipelineSim::new(motivation_cfg(7)).unwrap();
        let mut last = WindowStats::default();
        for _ in 0..90 {
            last = sim.advance(1.0, 2100.0, 495.0);
        }
        assert!(last.gpu_busy_fraction > 0.95, "{}", last.gpu_busy_fraction);
        // Queue (capacity 20) backs up close to full.
        assert!(last.mean_queue_len > 12.0, "{}", last.mean_queue_len);
    }

    #[test]
    fn balanced_config_beats_both_extremes_on_throughput() {
        // The Table 1 claim: the coordinated midpoint outperforms both
        // single-knob extremes.
        let run = |f_cpu: f64, f_gpu: f64| {
            let mut sim = PipelineSim::new(motivation_cfg(11)).unwrap();
            // Warm up 30 s, measure 120 s.
            for _ in 0..30 {
                sim.advance(1.0, f_cpu, f_gpu);
            }
            let mut images = 0;
            for _ in 0..120 {
                images += sim.advance(1.0, f_cpu, f_gpu).images_completed;
            }
            images as f64 / 120.0
        };
        let cpu_only = run(1100.0, 810.0);
        let gpu_only = run(2100.0, 495.0);
        let joint = run(1600.0, 660.0);
        assert!(
            joint > cpu_only && joint > gpu_only,
            "joint {joint} vs cpu-only {cpu_only} / gpu-only {gpu_only}"
        );
    }

    #[test]
    fn batch_latency_tracks_frequency_law() {
        let mut cfg = motivation_cfg(13);
        cfg.model.jitter = 0.0;
        let mut sim = PipelineSim::new(cfg.clone()).unwrap();
        let mut lats = vec![];
        for _ in 0..60 {
            lats.extend(sim.advance(1.0, 2100.0, 660.0).batch_latencies);
        }
        let expected = cfg.model.true_batch_latency(660.0, 2100.0);
        for l in &lats {
            assert!((l - expected).abs() < 1e-9, "lat {l} vs {expected}");
        }
        assert!(!lats.is_empty());
    }

    #[test]
    fn queue_delays_nonnegative_and_bounded_by_time() {
        let mut sim = PipelineSim::new(motivation_cfg(17)).unwrap();
        for k in 0..60 {
            let s = sim.advance(1.0, 1600.0, 660.0);
            for d in &s.queue_delays {
                assert!(*d >= 0.0);
                assert!(*d <= (k + 1) as f64, "delay {d} exceeds elapsed time");
            }
        }
    }

    #[test]
    fn utilizations_in_unit_interval() {
        let mut sim = PipelineSim::new(motivation_cfg(19)).unwrap();
        for _ in 0..60 {
            let s = sim.advance(1.0, 1600.0, 660.0);
            assert!((0.0..=1.0).contains(&s.gpu_busy_fraction));
            assert!((0.0..=1.0).contains(&s.gpu_util));
            assert!((0.0..=1.0).contains(&s.cpu_worker_util));
        }
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut sim = PipelineSim::new(motivation_cfg(seed)).unwrap();
            (0..60)
                .map(|_| sim.advance(1.0, 1600.0, 660.0).images_completed)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(23), run(23));
    }

    #[test]
    fn raising_gpu_frequency_raises_throughput_when_gpu_bound() {
        let run = |f_gpu: f64| {
            let mut sim = PipelineSim::new(motivation_cfg(29)).unwrap();
            for _ in 0..30 {
                sim.advance(1.0, 2100.0, f_gpu);
            }
            let mut images = 0;
            for _ in 0..90 {
                images += sim.advance(1.0, 2100.0, f_gpu).images_completed;
            }
            images
        };
        assert!(run(900.0) > run(495.0));
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use crate::models;

    fn open_cfg(rate: f64, seed: u64) -> PipelineConfig {
        PipelineConfig {
            model: models::resnet50(),
            num_workers: 2,
            queue_capacity: 64,
            seed,
            f_gpu_max_mhz: 1350.0,
            arrivals: ArrivalMode::Open { rate_img_s: rate },
        }
    }

    #[test]
    fn validation_rejects_bad_rate() {
        assert!(PipelineSim::new(open_cfg(0.0, 1)).is_err());
        assert!(PipelineSim::new(open_cfg(-5.0, 1)).is_err());
    }

    #[test]
    fn throughput_tracks_arrival_rate_when_underloaded() {
        // 50 img/s offered against ~300 img/s of GPU capacity: completed
        // throughput must track the offered rate, not capacity.
        let mut sim = PipelineSim::new(open_cfg(50.0, 3)).unwrap();
        let mut arrivals = 0usize;
        let mut completed = 0usize;
        for _ in 0..120 {
            let s = sim.advance(1.0, 2200.0, 1200.0);
            arrivals += s.arrivals;
            completed += s.images_completed;
        }
        let rate = completed as f64 / 120.0;
        assert!((rate - 50.0).abs() < 6.0, "completed rate {rate}");
        // Conservation: completed can't exceed arrivals.
        assert!(completed <= arrivals);
    }

    #[test]
    fn utilization_scales_with_offered_load() {
        let busy_frac = |rate: f64| {
            let mut sim = PipelineSim::new(open_cfg(rate, 5)).unwrap();
            let mut f = 0.0;
            for _ in 0..60 {
                f += sim.advance(1.0, 2200.0, 1200.0).gpu_busy_fraction;
            }
            f / 60.0
        };
        let low = busy_frac(30.0);
        let high = busy_frac(200.0);
        assert!(high > 2.0 * low, "low {low} vs high {high}");
    }

    #[test]
    fn overload_saturates_and_backlogs() {
        // Offered 500 img/s >> capacity at 435 MHz (~130 img/s): the GPU
        // saturates and the ingress backlog grows.
        let mut sim = PipelineSim::new(open_cfg(500.0, 7)).unwrap();
        let mut last = WindowStats::default();
        for _ in 0..60 {
            last = sim.advance(1.0, 2200.0, 435.0);
        }
        assert!(last.gpu_busy_fraction > 0.95);
        assert!(
            last.ingress_backlog > 100,
            "backlog {}",
            last.ingress_backlog
        );
    }

    #[test]
    fn rate_change_mid_run_shifts_throughput() {
        let mut sim = PipelineSim::new(open_cfg(40.0, 9)).unwrap();
        let mut before = 0usize;
        for _ in 0..60 {
            before += sim.advance(1.0, 2200.0, 1200.0).images_completed;
        }
        sim.set_arrival_rate(160.0).unwrap();
        let mut after = 0usize;
        for _ in 0..60 {
            after += sim.advance(1.0, 2200.0, 1200.0).images_completed;
        }
        assert!(
            after as f64 > 2.5 * before as f64,
            "before {before} after {after}"
        );
    }

    #[test]
    fn closed_loop_rejects_rate_change() {
        let mut sim = PipelineSim::new(PipelineConfig {
            model: models::resnet50(),
            num_workers: 2,
            queue_capacity: 64,
            seed: 1,
            f_gpu_max_mhz: 1350.0,
            arrivals: ArrivalMode::Closed,
        })
        .unwrap();
        assert!(sim.set_arrival_rate(100.0).is_err());
    }

    #[test]
    fn closed_mode_reports_no_arrivals() {
        let mut sim = PipelineSim::new(PipelineConfig {
            model: models::resnet50(),
            num_workers: 2,
            queue_capacity: 64,
            seed: 1,
            f_gpu_max_mhz: 1350.0,
            arrivals: ArrivalMode::Closed,
        })
        .unwrap();
        let s = sim.advance(5.0, 2200.0, 900.0);
        assert_eq!(s.arrivals, 0);
        assert_eq!(s.ingress_backlog, 0);
        assert!(s.images_completed > 0);
    }
}
