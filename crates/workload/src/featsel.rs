//! Exhaustive feature selection with cross-validated least squares.
//!
//! The paper's CPU workload (§6.1): "we implement an exhaustive feature
//! selection algorithm on the Alibaba PAI dataset … We perform feature
//! selection to fit and test a model using every possible feature subset,
//! and choose the feature subset yielding the lowest cross-validation (CV)
//! Mean Squared Error (MSE)."
//!
//! Two layers live here:
//!
//! * [`ExhaustiveFeatureSelection`] — the **real algorithm**, enumerating
//!   all `2^p − 1` subsets and scoring each with k-fold CV linear
//!   regression (via `capgpu-linalg`). This is what the examples and
//!   benches execute; its throughput is "feature subsets evaluated per
//!   second", the CPU throughput metric of §3.1.
//! * [`FeatselRateModel`] — the frequency→rate map the *simulated* control
//!   loop uses: a compute-bound job's rate scales linearly with core
//!   frequency. The model's reference rate should be calibrated from the
//!   real algorithm (see `examples/` and the calibration test below).

use capgpu_linalg::{lstsq, Matrix};

use crate::{Result, WorkloadError};

/// Result of scoring one feature subset.
#[derive(Debug, Clone)]
pub struct SubsetScore {
    /// Column indices of the subset.
    pub features: Vec<usize>,
    /// Cross-validated mean squared error.
    pub cv_mse: f64,
}

/// Result of a full exhaustive search.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The winning subset (lowest CV MSE).
    pub best: SubsetScore,
    /// Number of subsets evaluated (`2^p − 1`).
    pub subsets_evaluated: usize,
}

/// Exhaustive feature selection over a dataset.
#[derive(Debug, Clone)]
pub struct ExhaustiveFeatureSelection {
    /// Number of cross-validation folds.
    pub folds: usize,
}

impl Default for ExhaustiveFeatureSelection {
    fn default() -> Self {
        ExhaustiveFeatureSelection { folds: 5 }
    }
}

impl ExhaustiveFeatureSelection {
    /// Scores one subset by k-fold CV linear regression (with intercept).
    ///
    /// # Errors
    /// * [`WorkloadError::BadConfig`] on empty subsets/data or too few rows
    ///   per fold.
    /// * Numerical errors from degenerate folds.
    pub fn score_subset(&self, x: &[Vec<f64>], y: &[f64], features: &[usize]) -> Result<f64> {
        if features.is_empty() {
            return Err(WorkloadError::BadConfig("empty feature subset"));
        }
        if x.len() != y.len() || x.is_empty() {
            return Err(WorkloadError::BadConfig("bad dataset shape"));
        }
        let n = x.len();
        if self.folds < 2 || n < self.folds * (features.len() + 2) {
            return Err(WorkloadError::BadConfig(
                "not enough rows for the requested folds",
            ));
        }
        let mut total_se = 0.0;
        let mut total_count = 0usize;
        for fold in 0..self.folds {
            // Contiguous fold split: rows [fold*n/k, (fold+1)*n/k) test.
            let lo = fold * n / self.folds;
            let hi = (fold + 1) * n / self.folds;
            let mut train_rows = Vec::with_capacity(n - (hi - lo));
            let mut train_y = Vec::with_capacity(n - (hi - lo));
            for (i, (row, &yi)) in x.iter().zip(y.iter()).enumerate() {
                if i < lo || i >= hi {
                    let mut r: Vec<f64> = features.iter().map(|&j| row[j]).collect();
                    r.push(1.0); // intercept
                    train_rows.push(r);
                    train_y.push(yi);
                }
            }
            let refs: Vec<&[f64]> = train_rows.iter().map(|r| r.as_slice()).collect();
            let design = Matrix::from_rows(&refs);
            let fit = lstsq::solve_ridge(&design, &train_y, 1e-8)?;
            for i in lo..hi {
                let mut r: Vec<f64> = features.iter().map(|&j| x[i][j]).collect();
                r.push(1.0);
                let pred = fit.predict(&r);
                let err = y[i] - pred;
                total_se += err * err;
                total_count += 1;
            }
        }
        Ok(total_se / total_count as f64)
    }

    /// Runs the full exhaustive search over all non-empty subsets of the
    /// dataset's columns, returning the best subset. An optional callback
    /// observes every evaluation (used by throughput calibration).
    ///
    /// # Errors
    /// Propagates [`Self::score_subset`] failures.
    pub fn run(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        mut on_subset: impl FnMut(&SubsetScore),
    ) -> Result<SelectionResult> {
        if x.is_empty() {
            return Err(WorkloadError::BadConfig("empty dataset"));
        }
        let p = x[0].len();
        if p == 0 || p > 20 {
            return Err(WorkloadError::BadConfig(
                "feature count must be in 1..=20 for exhaustive search",
            ));
        }
        let mut best: Option<SubsetScore> = None;
        let mut evaluated = 0usize;
        for mask in 1u32..(1u32 << p) {
            let features: Vec<usize> = (0..p).filter(|j| mask & (1 << j) != 0).collect();
            let cv_mse = self.score_subset(x, y, &features)?;
            let score = SubsetScore { features, cv_mse };
            on_subset(&score);
            evaluated += 1;
            let better = match &best {
                None => true,
                Some(b) => cv_mse < b.cv_mse,
            };
            if better {
                best = Some(score);
            }
        }
        Ok(SelectionResult {
            best: best.expect("at least one subset"),
            subsets_evaluated: evaluated,
        })
    }
}

/// Frequency→throughput model of the feature-selection job for the
/// simulated control loop: a compute-bound workload's rate is linear in
/// core frequency (`rate = ref_rate · f / f_ref`), with small bounded
/// jitter supplied by the caller's RNG draw.
#[derive(Debug, Clone)]
pub struct FeatselRateModel {
    /// Subsets/s at the reference frequency.
    pub ref_rate: f64,
    /// Reference CPU frequency (MHz).
    pub ref_mhz: f64,
    /// Relative jitter amplitude.
    pub jitter: f64,
}

impl FeatselRateModel {
    /// Creates the model.
    ///
    /// # Errors
    /// [`WorkloadError::BadConfig`] on non-positive parameters.
    pub fn new(ref_rate: f64, ref_mhz: f64, jitter: f64) -> Result<Self> {
        if ref_rate <= 0.0 || ref_mhz <= 0.0 || !(0.0..1.0).contains(&jitter) {
            return Err(WorkloadError::BadConfig("bad rate model parameters"));
        }
        Ok(FeatselRateModel {
            ref_rate,
            ref_mhz,
            jitter,
        })
    }

    /// Subsets evaluated per second at CPU frequency `f`, with `noise` a
    /// uniform draw in `[−1, 1]`.
    pub fn rate(&self, f_cpu_mhz: f64, noise: f64) -> f64 {
        let base = self.ref_rate * f_cpu_mhz / self.ref_mhz;
        base * (1.0 + self.jitter * noise.clamp(-1.0, 1.0))
    }

    /// The average wall-clock seconds one subset evaluation takes at `f`.
    pub fn seconds_per_subset(&self, f_cpu_mhz: f64) -> f64 {
        1.0 / self.rate(f_cpu_mhz, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pai;

    #[test]
    fn recovers_true_features_on_synthetic_trace() {
        let trace = pai::generate(400, 11);
        let fs = ExhaustiveFeatureSelection::default();
        let result = fs.run(&trace.x, &trace.y, |_| {}).unwrap();
        assert_eq!(result.subsets_evaluated, (1 << 6) - 1);
        // The winning subset must contain every truly informative feature.
        for &f in &pai::TRUE_FEATURES {
            assert!(
                result.best.features.contains(&f),
                "missing true feature {f} in {:?}",
                result.best.features
            );
        }
    }

    #[test]
    fn full_model_not_worse_than_single_distractor() {
        let trace = pai::generate(400, 13);
        let fs = ExhaustiveFeatureSelection::default();
        let full = fs
            .score_subset(&trace.x, &trace.y, &[0, 1, 2, 3, 4, 5])
            .unwrap();
        let distractor = fs.score_subset(&trace.x, &trace.y, &[5]).unwrap();
        assert!(full < distractor, "full {full} vs distractor {distractor}");
    }

    #[test]
    fn callback_sees_every_subset() {
        let trace = pai::generate(200, 17);
        let fs = ExhaustiveFeatureSelection { folds: 3 };
        let mut count = 0;
        fs.run(&trace.x, &trace.y, |_| count += 1).unwrap();
        assert_eq!(count, 63);
    }

    #[test]
    fn score_subset_validation() {
        let fs = ExhaustiveFeatureSelection::default();
        let trace = pai::generate(100, 1);
        assert!(fs.score_subset(&trace.x, &trace.y, &[]).is_err());
        assert!(fs.score_subset(&trace.x, &trace.y[..50], &[0]).is_err());
        let tiny = pai::generate(8, 1);
        assert!(fs.score_subset(&tiny.x, &tiny.y, &[0, 1, 2]).is_err());
    }

    #[test]
    fn rate_model_linear_in_frequency() {
        let m = FeatselRateModel::new(100.0, 2200.0, 0.0).unwrap();
        assert!((m.rate(1100.0, 0.0) - 50.0).abs() < 1e-9);
        assert!((m.rate(2200.0, 0.0) - 100.0).abs() < 1e-9);
        assert!((m.seconds_per_subset(2200.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rate_model_jitter_bounded() {
        let m = FeatselRateModel::new(100.0, 2200.0, 0.1).unwrap();
        let hi = m.rate(2200.0, 1.0);
        let lo = m.rate(2200.0, -1.0);
        assert!((hi - 110.0).abs() < 1e-9);
        assert!((lo - 90.0).abs() < 1e-9);
        // Noise outside [−1, 1] clamps.
        assert_eq!(m.rate(2200.0, 5.0), hi);
    }

    #[test]
    fn rate_model_validation() {
        assert!(FeatselRateModel::new(0.0, 2200.0, 0.0).is_err());
        assert!(FeatselRateModel::new(1.0, 0.0, 0.0).is_err());
        assert!(FeatselRateModel::new(1.0, 1.0, 1.0).is_err());
    }
}

/// Parallel exhaustive search: subsets are distributed over `threads`
/// workers by atomic work stealing on the mask counter. Scoring is
/// read-only over the dataset, so workers share it by reference
/// (`std::thread::scope`); results merge by minimum CV MSE, which is
/// associative, so the parallel result equals the serial one exactly
/// (ties broken toward the smaller mask for determinism).
impl ExhaustiveFeatureSelection {
    /// Runs the exhaustive search across `threads` OS threads.
    ///
    /// # Errors
    /// Same as [`Self::run`]; the first worker error wins.
    pub fn run_parallel(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        threads: usize,
    ) -> Result<SelectionResult> {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Mutex;

        if x.is_empty() {
            return Err(WorkloadError::BadConfig("empty dataset"));
        }
        let p = x[0].len();
        if p == 0 || p > 20 {
            return Err(WorkloadError::BadConfig(
                "feature count must be in 1..=20 for exhaustive search",
            ));
        }
        let threads = threads.max(1);
        let total_masks = (1u32 << p) - 1;
        let next_mask = AtomicU32::new(1);
        // (cv_mse, mask) — smaller mask wins ties for determinism.
        let best: Mutex<Option<(f64, u32)>> = Mutex::new(None);
        let first_error: Mutex<Option<WorkloadError>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local_best: Option<(f64, u32)> = None;
                    loop {
                        let mask = next_mask.fetch_add(1, Ordering::Relaxed);
                        if mask > total_masks {
                            break;
                        }
                        let features: Vec<usize> =
                            (0..p).filter(|j| mask & (1 << j) != 0).collect();
                        match self.score_subset(x, y, &features) {
                            Ok(cv_mse) => {
                                let better = match local_best {
                                    None => true,
                                    Some((b, bm)) => cv_mse < b || (cv_mse == b && mask < bm),
                                };
                                if better {
                                    local_best = Some((cv_mse, mask));
                                }
                            }
                            Err(e) => {
                                let mut slot = first_error.lock().expect("poisoned");
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                break;
                            }
                        }
                    }
                    if let Some((mse, mask)) = local_best {
                        let mut global = best.lock().expect("poisoned");
                        let better = match *global {
                            None => true,
                            Some((b, bm)) => mse < b || (mse == b && mask < bm),
                        };
                        if better {
                            *global = Some((mse, mask));
                        }
                    }
                });
            }
        });

        if let Some(e) = first_error.into_inner().expect("poisoned") {
            return Err(e);
        }
        let (cv_mse, mask) = best
            .into_inner()
            .expect("poisoned")
            .expect("at least one subset scored");
        let features: Vec<usize> = (0..p).filter(|j| mask & (1 << j) != 0).collect();
        Ok(SelectionResult {
            best: SubsetScore { features, cv_mse },
            subsets_evaluated: total_masks as usize,
        })
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::pai;

    #[test]
    fn parallel_matches_serial() {
        let trace = pai::generate(300, 23);
        let fs = ExhaustiveFeatureSelection { folds: 4 };
        let serial = fs.run(&trace.x, &trace.y, |_| {}).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = fs.run_parallel(&trace.x, &trace.y, threads).unwrap();
            assert_eq!(par.best.features, serial.best.features, "{threads} threads");
            assert!((par.best.cv_mse - serial.best.cv_mse).abs() < 1e-12);
            assert_eq!(par.subsets_evaluated, serial.subsets_evaluated);
        }
    }

    #[test]
    fn parallel_recovers_true_features() {
        let trace = pai::generate(400, 29);
        let fs = ExhaustiveFeatureSelection::default();
        let result = fs.run_parallel(&trace.x, &trace.y, 4).unwrap();
        for &f in &pai::TRUE_FEATURES {
            assert!(result.best.features.contains(&f));
        }
    }

    #[test]
    fn parallel_propagates_errors() {
        // Dataset too small for the fold count: every worker errors; the
        // first error is surfaced.
        let trace = pai::generate(8, 1);
        let fs = ExhaustiveFeatureSelection { folds: 5 };
        assert!(fs.run_parallel(&trace.x, &trace.y, 4).is_err());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let trace = pai::generate(200, 31);
        let fs = ExhaustiveFeatureSelection { folds: 3 };
        assert!(fs.run_parallel(&trace.x, &trace.y, 0).is_ok());
    }
}
