//! Synthetic Alibaba-PAI-style workload trace.
//!
//! The paper's CPU workload runs exhaustive feature selection over the
//! Alibaba PAI dataset (a production ML-workload trace used in data-center
//! resource-management research). The real trace is not redistributable
//! here, so this module synthesizes a trace with the same *shape*: per-job
//! records of resource requests and runtime statistics whose target
//! variable (job duration) depends on a known subset of the features plus
//! noise — giving the feature-selection algorithm genuine signal to find
//! and making its CV-MSE landscape non-trivial.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feature names of the synthetic trace, in column order.
pub const FEATURE_NAMES: [&str; 6] = [
    "cpu_request",         // vCPUs requested
    "gpu_request",         // GPUs requested (0, 0.25, 0.5, 1, 2, 4, 8)
    "mem_request_gib",     // memory requested
    "plan_gpu_util",       // planned GPU utilization
    "num_instances",       // task parallelism
    "queue_len_at_submit", // cluster queue length when submitted
];

/// A synthetic PAI-like dataset: `x` is row-major `n × 6`, `y` is the job
/// duration in (log) seconds.
#[derive(Debug, Clone)]
pub struct PaiTrace {
    /// Feature matrix, row-major, `n_rows × FEATURE_NAMES.len()`.
    pub x: Vec<Vec<f64>>,
    /// Target: log job duration.
    pub y: Vec<f64>,
}

/// The ground-truth informative feature indices (duration depends on
/// cpu_request, gpu_request and num_instances; the rest are distractors).
pub const TRUE_FEATURES: [usize; 3] = [0, 1, 4];

/// Generates a deterministic synthetic trace with `n_rows` jobs.
///
/// # Panics
/// Panics if `n_rows == 0`.
pub fn generate(n_rows: usize, seed: u64) -> PaiTrace {
    assert!(n_rows > 0, "trace needs at least one row");
    let mut rng = StdRng::seed_from_u64(seed);
    let gpu_options = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut x = Vec::with_capacity(n_rows);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let cpu: f64 = rng.gen_range(1.0..96.0);
        let gpu = gpu_options[rng.gen_range(0..gpu_options.len())];
        let mem: f64 = cpu * rng.gen_range(2.0..8.0);
        let planned_util: f64 = rng.gen_range(0.05..1.0);
        let instances: f64 = rng.gen_range(1.0..64.0_f64).floor();
        let queue_len: f64 = rng.gen_range(0.0..500.0);
        // Log-duration: depends on cpu, gpu and instances; mem/planned
        // util/queue length are distractors.
        let noise: f64 = rng.gen_range(-0.4..0.4);
        let log_dur = 3.0 + 0.015 * cpu + 0.35 * gpu + 0.02 * instances + noise;
        x.push(vec![cpu, gpu, mem, planned_util, instances, queue_len]);
        y.push(log_dur);
    }
    PaiTrace { x, y }
}

impl PaiTrace {
    /// Number of jobs in the trace.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        FEATURE_NAMES.len()
    }

    /// Projects the feature matrix onto a subset of column indices.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn project(&self, features: &[usize]) -> Vec<Vec<f64>> {
        self.x
            .iter()
            .map(|row| features.iter().map(|&j| row[j]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(100, 7);
        let b = generate(100, 7);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        let c = generate(100, 8);
        assert_ne!(a.y, c.y);
    }

    #[test]
    fn shape_and_ranges() {
        let t = generate(500, 1);
        assert_eq!(t.len(), 500);
        assert_eq!(t.num_features(), 6);
        for row in &t.x {
            assert_eq!(row.len(), 6);
            assert!(row[0] >= 1.0 && row[0] <= 96.0); // cpu
            assert!([0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0].contains(&row[1]));
            assert!(row[4] >= 1.0); // instances
        }
        for &y in &t.y {
            assert!(y > 2.0 && y < 10.0, "log duration {y}");
        }
    }

    #[test]
    fn true_features_carry_signal() {
        // Correlation between y and each true feature must exceed that of
        // each distractor by a clear margin.
        let t = generate(2000, 3);
        let corr = |col: usize| -> f64 {
            let xs: Vec<f64> = t.x.iter().map(|r| r[col]).collect();
            let mx = capgpu_linalg::stats::mean(&xs);
            let my = capgpu_linalg::stats::mean(&t.y);
            let mut num = 0.0;
            let mut dx = 0.0;
            let mut dy = 0.0;
            for (x, y) in xs.iter().zip(t.y.iter()) {
                num += (x - mx) * (y - my);
                dx += (x - mx) * (x - mx);
                dy += (y - my) * (y - my);
            }
            (num / (dx.sqrt() * dy.sqrt())).abs()
        };
        for &f in &TRUE_FEATURES {
            assert!(corr(f) > 0.25, "feature {f} corr {}", corr(f));
        }
        for f in [2, 3, 5] {
            // mem_request correlates with cpu_request (built that way), so
            // only the pure distractors must be near zero.
            if f == 2 {
                continue;
            }
            assert!(corr(f) < 0.1, "distractor {f} corr {}", corr(f));
        }
    }

    #[test]
    fn projection() {
        let t = generate(10, 1);
        let p = t.project(&[1, 4]);
        assert_eq!(p.len(), 10);
        assert_eq!(p[0].len(), 2);
        assert_eq!(p[3][0], t.x[3][1]);
        assert_eq!(p[3][1], t.x[3][4]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn rejects_empty() {
        let _ = generate(0, 1);
    }
}
