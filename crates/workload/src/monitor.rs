//! Throughput monitors (§3.1, step 2 of the control loop).
//!
//! "Each GPU's throughput monitor reports its average inference
//! throughput … The CPU throughput monitor reports the number of feature
//! subsets evaluated per second. The normalized throughput of each device
//! is computed by dividing its throughput by the maximum throughput of the
//! respective device."
//!
//! The monitor keeps a sliding window of per-period readings, smooths them
//! with an EWMA, and normalizes by the largest throughput it has ever
//! observed for that device (the practical stand-in for "maximum
//! throughput of the respective device", which is not known a priori).

use capgpu_linalg::stats::Ewma;

/// A per-device throughput monitor.
#[derive(Debug, Clone)]
pub struct ThroughputMonitor {
    ewma: Ewma,
    observed_max: f64,
    last_raw: Option<f64>,
    periods: u64,
}

impl ThroughputMonitor {
    /// Creates a monitor with EWMA smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]` (propagated from [`Ewma`]).
    pub fn new(alpha: f64) -> Self {
        ThroughputMonitor {
            ewma: Ewma::new(alpha),
            observed_max: 0.0,
            last_raw: None,
            periods: 0,
        }
    }

    /// Records the throughput measured over one control period. Negative
    /// and NaN readings clamp to 0 (`f64::max` maps NaN to the 0 arm),
    /// so degenerate meter periods cannot poison the EWMA.
    pub fn record(&mut self, throughput: f64) {
        let t = throughput.max(0.0);
        self.ewma.update(t);
        self.observed_max = self.observed_max.max(t);
        self.last_raw = Some(t);
        self.periods += 1;
    }

    /// Smoothed throughput (EWMA); 0 before any reading.
    pub fn smoothed(&self) -> f64 {
        self.ewma.value().unwrap_or(0.0)
    }

    /// Last raw reading, if any.
    pub fn last_raw(&self) -> Option<f64> {
        self.last_raw
    }

    /// Largest raw reading ever observed.
    pub fn observed_max(&self) -> f64 {
        self.observed_max
    }

    /// Normalized throughput in `[0, 1]`: smoothed value divided by the
    /// observed maximum. Returns 0 before any reading.
    pub fn normalized(&self) -> f64 {
        // Warmup guard: until the first non-zero reading `observed_max`
        // is still 0 and the ratio below would be 0/0 = NaN — a device
        // that has not produced yet gets an explicit 0 weight instead.
        if self.observed_max <= 0.0 {
            return 0.0;
        }
        (self.smoothed() / self.observed_max).clamp(0.0, 1.0)
    }

    /// Number of periods recorded.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Clears all state (workload change).
    pub fn reset(&mut self) {
        self.ewma.reset();
        self.observed_max = 0.0;
        self.last_raw = None;
        self.periods = 0;
    }
}

/// Normalizes a set of monitors into weight inputs: returns each device's
/// normalized throughput, with devices that have seen no traffic reported
/// as 0.
pub fn normalized_throughputs(monitors: &[ThroughputMonitor]) -> Vec<f64> {
    monitors.iter().map(ThroughputMonitor::normalized).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_normalizes() {
        let mut m = ThroughputMonitor::new(1.0); // no smoothing
        assert_eq!(m.normalized(), 0.0);
        m.record(50.0);
        assert_eq!(m.normalized(), 1.0); // 50/50
        m.record(100.0);
        assert_eq!(m.normalized(), 1.0); // 100/100
        m.record(25.0);
        assert_eq!(m.normalized(), 0.25); // 25/100
        assert_eq!(m.observed_max(), 100.0);
        assert_eq!(m.last_raw(), Some(25.0));
        assert_eq!(m.periods(), 3);
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut m = ThroughputMonitor::new(0.3);
        for _ in 0..20 {
            m.record(100.0);
        }
        m.record(0.0); // one dead period
        assert!(
            m.normalized() > 0.6,
            "one spike shouldn't crater the weight"
        );
    }

    #[test]
    fn negative_readings_clamped() {
        let mut m = ThroughputMonitor::new(1.0);
        m.record(-5.0);
        assert_eq!(m.smoothed(), 0.0);
        assert_eq!(m.normalized(), 0.0);
    }

    #[test]
    fn warmup_zero_max_yields_zero_not_nan() {
        // Regression: a device that records only zeros during warmup
        // keeps observed_max == 0; normalized() must report an explicit
        // 0 weight, never 0/0 = NaN.
        let mut m = ThroughputMonitor::new(0.5);
        assert_eq!(m.normalized(), 0.0);
        for _ in 0..5 {
            m.record(0.0);
            assert!(m.normalized().is_finite());
            assert_eq!(m.normalized(), 0.0);
        }
        // NaN readings clamp to 0 and keep the weight finite too.
        m.record(f64::NAN);
        assert_eq!(m.normalized(), 0.0);
        // First real reading ends warmup normally.
        m.record(40.0);
        assert!(m.normalized() > 0.0 && m.normalized() <= 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut m = ThroughputMonitor::new(0.5);
        m.record(10.0);
        m.reset();
        assert_eq!(m.normalized(), 0.0);
        assert_eq!(m.periods(), 0);
        assert_eq!(m.last_raw(), None);
    }

    #[test]
    fn group_normalization() {
        let mut a = ThroughputMonitor::new(1.0);
        let mut b = ThroughputMonitor::new(1.0);
        a.record(100.0);
        a.record(80.0);
        b.record(10.0);
        b.record(10.0);
        let norms = normalized_throughputs(&[a, b]);
        assert_eq!(norms, vec![0.8, 1.0]);
    }
}
