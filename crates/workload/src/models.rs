//! Profiles of the paper's inference models.
//!
//! Each profile captures the parameters that matter to the power/latency
//! control problem: the batch-20 inference latency at the GPU's maximum
//! clock (`e_min`), the *true* frequency-scaling exponent γ (which differs
//! slightly per model — the controller fits one global γ = 0.91, so model
//! mismatch is present exactly as on hardware), the CPU preprocessing cost
//! per image, and how much of the GPU the model keeps busy while a batch
//! is in flight.
//!
//! Latency magnitudes follow the published relative costs of the networks
//! (VGG16's ~15.5 GFLOPs/image > Swin-T's ~4.5 > ResNet50's ~4.1 >
//! GoogLeNet's ~1.5) scaled to V100-class batch-20 inference.

use serde::{Deserialize, Serialize};

/// Profile of one inference model (task `tᵢ` in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name.
    pub name: String,
    /// Images per batch (the paper uses 20 throughout).
    pub batch_size: usize,
    /// Batch inference latency at the GPU's maximum clock (seconds).
    pub e_min_s: f64,
    /// True frequency-scaling exponent for this model.
    pub gamma_true: f64,
    /// CPU preprocessing time per image at the reference CPU frequency
    /// (seconds): resize + normalize + tensor conversion.
    pub preprocess_s_per_image: f64,
    /// Reference CPU frequency for `preprocess_s_per_image` (MHz).
    pub preprocess_ref_mhz: f64,
    /// GPU utilization while a batch is executing (0..1).
    pub gpu_util_busy: f64,
    /// Multiplicative latency jitter amplitude (0 = deterministic).
    pub jitter: f64,
}

impl ModelProfile {
    /// True batch latency at GPU frequency `f` given the model's own γ —
    /// the plant-side law the controller approximates with Eq. 8.
    pub fn true_batch_latency(&self, f_gpu_mhz: f64, f_gpu_max_mhz: f64) -> f64 {
        self.e_min_s * (f_gpu_max_mhz / f_gpu_mhz).powf(self.gamma_true)
    }

    /// Preprocessing time per image at CPU frequency `f` (inverse-linear:
    /// preprocessing is compute-bound on a single pinned core).
    pub fn preprocess_time(&self, f_cpu_mhz: f64) -> f64 {
        self.preprocess_s_per_image * self.preprocess_ref_mhz / f_cpu_mhz
    }
}

/// ResNet50 (t₁): the paper's convolutional baseline.
pub fn resnet50() -> ModelProfile {
    ModelProfile {
        name: "ResNet50".to_string(),
        batch_size: 20,
        e_min_s: 0.055,
        gamma_true: 0.90,
        preprocess_s_per_image: 0.004,
        preprocess_ref_mhz: 2200.0,
        gpu_util_busy: 0.92,
        jitter: 0.03,
    }
}

/// Swin Transformer (t₂): the transformer-based workload.
pub fn swin_t() -> ModelProfile {
    ModelProfile {
        name: "Swin-T".to_string(),
        batch_size: 20,
        e_min_s: 0.085,
        gamma_true: 0.94,
        preprocess_s_per_image: 0.004,
        preprocess_ref_mhz: 2200.0,
        gpu_util_busy: 0.88,
        jitter: 0.04,
    }
}

/// VGG16 (t₃): the heaviest convolutional workload.
pub fn vgg16() -> ModelProfile {
    ModelProfile {
        name: "VGG16".to_string(),
        batch_size: 20,
        e_min_s: 0.130,
        gamma_true: 0.88,
        preprocess_s_per_image: 0.004,
        preprocess_ref_mhz: 2200.0,
        gpu_util_busy: 0.96,
        jitter: 0.03,
    }
}

/// GoogLeNet on the Oregon Wildlife classes — the §3.2 motivation
/// workload (RTX 3090, ten parallel preprocessing requests).
///
/// Calibration note: the per-image cost here is the *effective* time one
/// worker process needs to deliver a ready tensor into the shared queue —
/// torchvision transforms **plus** JPEG decode of large wildlife photos and
/// the inter-process serialization of the tensor (which Table 1's
/// "preprocessing latency" column excludes but the end-to-end pipeline
/// pays). With ten workers this puts the producer rate (≈4.7–9.1 img/s
/// across 1.1–2.1 GHz) and the consumer rate (≈5.4–9.1 img/s across
/// 495–810 MHz) in the same band, reproducing Table 1's crossover: lowering
/// the CPU starves the GPU, lowering the GPU backs the queue up, and the
/// joint midpoint wins on throughput.
pub fn googlenet_wildlife() -> ModelProfile {
    ModelProfile {
        name: "GoogLeNet".to_string(),
        batch_size: 20,
        // Batch-20 inference at the 3090's 2100 MHz peak.
        e_min_s: 1.0,
        gamma_true: 0.91,
        // Effective per-image producer cost at 1.6 GHz (see note above).
        preprocess_s_per_image: 1.45,
        preprocess_ref_mhz: 1600.0,
        gpu_util_busy: 0.90,
        jitter: 0.05,
    }
}

/// All three evaluation models `t₁..t₃` in paper order.
pub fn evaluation_models() -> Vec<ModelProfile> {
    vec![resnet50(), swin_t(), vgg16()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_matches_flops() {
        // VGG16 > Swin-T > ResNet50 at any common frequency.
        let f = 900.0;
        let fm = 1350.0;
        let r = resnet50().true_batch_latency(f, fm);
        let s = swin_t().true_batch_latency(f, fm);
        let v = vgg16().true_batch_latency(f, fm);
        assert!(v > s && s > r, "v={v} s={s} r={r}");
    }

    #[test]
    fn latency_at_fmax_is_emin() {
        let m = resnet50();
        assert!((m.true_batch_latency(1350.0, 1350.0) - m.e_min_s).abs() < 1e-12);
    }

    #[test]
    fn halving_frequency_roughly_doubles_latency() {
        let m = resnet50();
        let ratio = m.true_batch_latency(675.0, 1350.0) / m.e_min_s;
        // 2^0.90 ≈ 1.866
        assert!((ratio - 2.0_f64.powf(0.90)).abs() < 1e-9);
    }

    #[test]
    fn preprocess_scales_inversely_with_cpu_frequency() {
        let m = googlenet_wildlife();
        let slow = m.preprocess_time(1100.0);
        let fast = m.preprocess_time(2100.0);
        assert!(slow > fast);
        assert!((slow / fast - 2100.0 / 1100.0).abs() < 1e-9);
    }

    #[test]
    fn motivation_profile_produces_table1_rate_crossover() {
        // Producer (10 workers) and consumer rates must overlap so the
        // Table 1 crossover exists.
        let m = googlenet_wildlife();
        let producer = |f_cpu: f64| 10.0 / m.preprocess_time(f_cpu);
        let consumer = |f_gpu: f64| m.batch_size as f64 / m.true_batch_latency(f_gpu, 2100.0);
        // CPU-only config (1.1 GHz / 810 MHz): producer below consumer.
        assert!(producer(1100.0) < consumer(810.0));
        // GPU-only config (2.1 GHz / 495 MHz): consumer below producer.
        assert!(consumer(495.0) < producer(2100.0));
        // Joint midpoint (1.6 GHz / 660 MHz): balanced within 15%, and its
        // bottleneck beats both extremes' bottlenecks.
        let joint = producer(1600.0).min(consumer(660.0));
        assert!((producer(1600.0) - consumer(660.0)).abs() / joint < 0.15);
        assert!(joint > producer(1100.0).min(consumer(810.0)));
        assert!(joint > producer(2100.0).min(consumer(495.0)));
        // Absolute throughput scale matches Table 1 (≈5–7 img/s).
        assert!((4.0..8.0).contains(&joint), "joint bottleneck {joint}");
    }

    #[test]
    fn evaluation_set_is_t1_t2_t3() {
        let models = evaluation_models();
        assert_eq!(models.len(), 3);
        assert_eq!(models[0].name, "ResNet50");
        assert_eq!(models[1].name, "Swin-T");
        assert_eq!(models[2].name, "VGG16");
        assert!(models.iter().all(|m| m.batch_size == 20));
    }
}
