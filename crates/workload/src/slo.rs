//! SLO bookkeeping (§6.4).
//!
//! The paper derives SLO levels from the latency distribution of each
//! workload: a "30% tail latency" SLO is the threshold only the slowest
//! 30% of requests exceed (tight), an "80% tail latency" SLO is exceeded
//! by 80% of requests at the reference operating point (loose). The
//! tracker records per-batch inference latencies per task, reports
//! deadline-miss rates, and converts tail levels into absolute SLO values
//! via [`slo_from_tail`].

use capgpu_linalg::stats;

/// Converts a tail level into an absolute SLO threshold from a latency
/// sample: the `(100 − tail)`-th percentile. Smaller tails → tighter SLOs.
///
/// Degenerate inputs get a defined fallback instead of a panic or NaN:
/// non-finite latencies are ignored, an out-of-range `tail_pct` is
/// clamped to `[0, 100]`, a single sample is its own threshold, and an
/// empty (or all-non-finite) sample yields `f64::INFINITY` — an SLO
/// derived from no data constrains nothing.
pub fn slo_from_tail(latencies: &[f64], tail_pct: f64) -> f64 {
    let finite: Vec<f64> = latencies
        .iter()
        .copied()
        .filter(|l| l.is_finite())
        .collect();
    if finite.is_empty() {
        return f64::INFINITY;
    }
    stats::tail_latency(&finite, tail_pct.clamp(0.0, 100.0))
}

/// Per-task SLO tracking over a run.
#[derive(Debug, Clone)]
pub struct SloTracker {
    /// Current SLO threshold (seconds) per task.
    slos: Vec<f64>,
    /// Per-task recorded latencies (whole run).
    latencies: Vec<Vec<f64>>,
    /// Per-task miss counters.
    misses: Vec<usize>,
    /// Per-task total counters.
    totals: Vec<usize>,
}

impl SloTracker {
    /// Creates a tracker for `num_tasks` tasks with initial SLOs.
    ///
    /// # Panics
    /// Panics if `initial_slos` is empty.
    pub fn new(initial_slos: Vec<f64>) -> Self {
        assert!(!initial_slos.is_empty(), "tracker needs >= 1 task");
        let n = initial_slos.len();
        SloTracker {
            slos: initial_slos,
            latencies: vec![Vec::new(); n],
            misses: vec![0; n],
            totals: vec![0; n],
        }
    }

    /// Number of tasks tracked.
    pub fn num_tasks(&self) -> usize {
        self.slos.len()
    }

    /// The current SLO of a task (seconds).
    ///
    /// # Panics
    /// Panics on an out-of-range task index.
    pub fn slo(&self, task: usize) -> f64 {
        self.slos[task]
    }

    /// Changes a task's SLO mid-run (the §6.4 adaptability experiment).
    ///
    /// # Panics
    /// Panics on an out-of-range task index or non-positive SLO.
    pub fn set_slo(&mut self, task: usize, slo_s: f64) {
        assert!(slo_s > 0.0, "SLO must be positive");
        self.slos[task] = slo_s;
    }

    /// Records one batch latency for a task. A non-finite latency (a
    /// degenerate measurement) counts as a deadline miss but is not
    /// stored, so it cannot poison the percentile paths
    /// ([`SloTracker::meets_all`], p99 reporting) with NaN.
    ///
    /// # Panics
    /// Panics on an out-of-range task index.
    pub fn record(&mut self, task: usize, latency_s: f64) {
        self.totals[task] += 1;
        if !latency_s.is_finite() {
            self.misses[task] += 1;
            return;
        }
        self.latencies[task].push(latency_s);
        if latency_s > self.slos[task] {
            self.misses[task] += 1;
        }
    }

    /// Deadline-miss rate of a task in `[0, 1]` (0 when nothing recorded).
    pub fn miss_rate(&self, task: usize) -> f64 {
        if self.totals[task] == 0 {
            0.0
        } else {
            self.misses[task] as f64 / self.totals[task] as f64
        }
    }

    /// All recorded latencies of a task.
    pub fn latencies(&self, task: usize) -> &[f64] {
        &self.latencies[task]
    }

    /// Overall miss rate across all tasks.
    pub fn overall_miss_rate(&self) -> f64 {
        let total: usize = self.totals.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.misses.iter().sum::<usize>() as f64 / total as f64
        }
    }

    /// Clears all recorded latencies and miss counters while keeping the
    /// configured SLOs — used when a calibration phase (e.g. system
    /// identification) precedes the measured run.
    pub fn reset_stats(&mut self) {
        for l in &mut self.latencies {
            l.clear();
        }
        self.misses.iter_mut().for_each(|m| *m = 0);
        self.totals.iter_mut().for_each(|t| *t = 0);
    }

    /// True when every task currently meets its SLO at the given
    /// percentile (e.g. `99.0` = "99% of batches within SLO"). An
    /// out-of-range percentile is clamped to `[0, 100]`; tasks with no
    /// recorded latency trivially pass.
    pub fn meets_all(&self, percentile: f64) -> bool {
        let percentile = percentile.clamp(0.0, 100.0);
        (0..self.num_tasks()).all(|t| {
            if self.latencies[t].is_empty() {
                return true;
            }
            stats::percentile(&self.latencies[t], percentile) <= self.slos[t]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_semantics() {
        let lats: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let tight = slo_from_tail(&lats, 30.0); // 70th pct ≈ 0.70
        let loose = slo_from_tail(&lats, 80.0); // 20th pct ≈ 0.21
        assert!(tight > loose);
    }

    #[test]
    fn miss_accounting() {
        let mut t = SloTracker::new(vec![0.1, 0.2]);
        t.record(0, 0.05);
        t.record(0, 0.15); // miss
        t.record(1, 0.15);
        t.record(1, 0.19);
        assert_eq!(t.miss_rate(0), 0.5);
        assert_eq!(t.miss_rate(1), 0.0);
        assert_eq!(t.overall_miss_rate(), 0.25);
        assert_eq!(t.latencies(0).len(), 2);
    }

    #[test]
    fn slo_change_midrun() {
        let mut t = SloTracker::new(vec![0.1]);
        t.record(0, 0.15); // miss at 0.1
        t.set_slo(0, 0.2);
        t.record(0, 0.15); // hit at 0.2
        assert_eq!(t.miss_rate(0), 0.5);
        assert_eq!(t.slo(0), 0.2);
    }

    #[test]
    fn meets_all_percentile() {
        let mut t = SloTracker::new(vec![1.0]);
        for i in 0..100 {
            t.record(0, if i < 99 { 0.5 } else { 2.0 });
        }
        assert!(t.meets_all(98.0));
        assert!(!t.meets_all(100.0));
    }

    #[test]
    fn empty_tracker_is_healthy() {
        let t = SloTracker::new(vec![0.1]);
        assert_eq!(t.miss_rate(0), 0.0);
        assert_eq!(t.overall_miss_rate(), 0.0);
        assert!(t.meets_all(99.0));
    }

    #[test]
    fn tail_edges_have_defined_fallbacks() {
        // Empty and all-non-finite samples: an unconstraining threshold.
        assert_eq!(slo_from_tail(&[], 30.0), f64::INFINITY);
        assert_eq!(
            slo_from_tail(&[f64::NAN, f64::INFINITY], 30.0),
            f64::INFINITY
        );
        // A single sample is its own threshold at any tail level.
        for tail in [-10.0, 0.0, 30.0, 100.0, 250.0] {
            assert_eq!(slo_from_tail(&[0.07], tail), 0.07);
        }
        // Non-finite entries are ignored, not propagated.
        let got = slo_from_tail(&[0.1, f64::NAN, 0.3, 0.2], 50.0);
        assert!((got - 0.2).abs() < 1e-12);
        // Out-of-range tails clamp instead of panicking.
        let lats = [0.1, 0.2, 0.3];
        assert_eq!(slo_from_tail(&lats, -5.0), 0.3); // 100th pct
        assert_eq!(slo_from_tail(&lats, 400.0), 0.1); // 0th pct
    }

    #[test]
    fn non_finite_latency_counts_as_miss_without_poisoning_percentiles() {
        let mut t = SloTracker::new(vec![0.1]);
        t.record(0, 0.05);
        t.record(0, f64::NAN);
        t.record(0, f64::INFINITY);
        assert_eq!(t.latencies(0), &[0.05]);
        assert_eq!(t.miss_rate(0), 2.0 / 3.0);
        // Percentile paths stay NaN-free and clamped.
        assert!(t.meets_all(99.0));
        assert!(t.meets_all(250.0));
        assert!(t.meets_all(-3.0));
    }

    #[test]
    fn single_sample_tracker_percentiles() {
        let mut t = SloTracker::new(vec![0.1]);
        t.record(0, 0.08);
        assert!(t.meets_all(99.0));
        assert_eq!(t.miss_rate(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_slo() {
        let mut t = SloTracker::new(vec![0.1]);
        t.set_slo(0, 0.0);
    }
}
