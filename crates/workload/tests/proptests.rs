//! Property tests for the workload layer: pipeline conservation laws,
//! monitor normalization bounds, SLO-tracker consistency.

use capgpu_workload::models;
use capgpu_workload::monitor::ThroughputMonitor;
use capgpu_workload::pipeline::{PipelineConfig, PipelineSim};
use capgpu_workload::slo::SloTracker;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipeline_invariants_hold_for_any_frequencies(
        f_cpu in 1000.0..2400.0f64,
        f_gpu in 300.0..2100.0f64,
        seed in 0u64..1000,
    ) {
        let cfg = PipelineConfig {
            model: models::googlenet_wildlife(),
            num_workers: 10,
            queue_capacity: 20,
            seed,
            f_gpu_max_mhz: 2100.0,
            arrivals: capgpu_workload::pipeline::ArrivalMode::Closed,
        };
        let mut sim = PipelineSim::new(cfg).unwrap();
        let mut total_batches = 0usize;
        let mut total_images = 0usize;
        for _ in 0..30 {
            let s = sim.advance(1.0, f_cpu, f_gpu);
            total_batches += s.batches_completed;
            total_images += s.images_completed;
            prop_assert!((0.0..=1.0).contains(&s.gpu_busy_fraction));
            prop_assert!((0.0..=1.0).contains(&s.cpu_worker_util));
            prop_assert!(s.mean_queue_len >= 0.0 && s.mean_queue_len <= 20.0 + 1e-9);
            prop_assert_eq!(s.batch_latencies.len(), s.batches_completed);
            prop_assert_eq!(s.queue_delays.len(), s.images_completed);
            for d in &s.queue_delays {
                prop_assert!(*d >= 0.0);
            }
            for l in &s.batch_latencies {
                prop_assert!(*l > 0.0);
            }
        }
        // Images = batches × batch size, always.
        prop_assert_eq!(total_images, total_batches * 20);
    }

    #[test]
    fn monitor_normalization_bounded(
        readings in prop::collection::vec(0.0..1000.0f64, 1..100),
        alpha in 0.05..1.0f64,
    ) {
        let mut m = ThroughputMonitor::new(alpha);
        for r in readings {
            m.record(r);
            prop_assert!((0.0..=1.0).contains(&m.normalized()));
            prop_assert!(m.smoothed() <= m.observed_max() + 1e-9);
        }
    }

    #[test]
    fn slo_miss_rate_matches_manual_count(
        lats in prop::collection::vec(0.001..2.0f64, 1..200),
        slo in 0.01..2.0f64,
    ) {
        let mut t = SloTracker::new(vec![slo]);
        let mut manual = 0usize;
        for &l in &lats {
            t.record(0, l);
            if l > slo {
                manual += 1;
            }
        }
        let expected = manual as f64 / lats.len() as f64;
        prop_assert!((t.miss_rate(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn featsel_rate_monotone_in_frequency(
        f1 in 1000.0..2400.0f64,
        f2 in 1000.0..2400.0f64,
    ) {
        let m = capgpu_workload::featsel::FeatselRateModel::new(100.0, 2200.0, 0.0).unwrap();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(m.rate(lo, 0.0) <= m.rate(hi, 0.0));
    }
}
