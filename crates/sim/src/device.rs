//! Device models: ground-truth power laws the controller never sees.
//!
//! Each device's electrical power is
//!
//! ```text
//!   P(f, u) = idle + gain·f·(α + (1−α)·u) + quad·(f − f_quad_ref)²
//! ```
//!
//! * `idle` — leakage + uncore power that does not scale with the core
//!   clock (the fan is held constant per the paper's §5 methodology and
//!   lives in the server-level platform power instead).
//! * `gain·f·(α + (1−α)·u)` — the dominant linear-in-frequency dynamic
//!   power, modulated by utilization `u ∈ [0, 1]`. `α` is the fraction of
//!   clock-proportional power burned even when idle (clock tree, memory
//!   controller). The paper's linear model (Eq. 3) is this term at steady
//!   utilization.
//! * `quad·(f − ref)²` — a small super-linear term (voltage rises with
//!   frequency at the top of the V/F curve), which is what keeps the
//!   identified linear model at R² ≈ 0.96 instead of 1.0.

use serde::{Deserialize, Serialize};

use crate::freq::FrequencyTable;
use crate::{Result, SimError};

/// CPU vs GPU — affects nothing in the power math, but controllers group
/// devices by kind (e.g. GPU-Only actuates only GPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A host CPU package (DVFS via `cpupower`-like actuation).
    Cpu,
    /// A discrete GPU (core-clock actuation via `nvidia-smi`-like API).
    Gpu,
}

/// Ground-truth power law of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    /// Frequency-independent floor (W).
    pub idle_watts: f64,
    /// Linear coefficient (W/MHz) at full utilization.
    pub gain_w_per_mhz: f64,
    /// Fraction of clock-proportional power present at zero utilization.
    pub util_floor: f64,
    /// Quadratic coefficient (W/MHz²), small.
    pub quad_w_per_mhz2: f64,
    /// Frequency at which the quadratic term is zero (MHz).
    pub quad_ref_mhz: f64,
}

impl PowerLaw {
    /// Power at frequency `f_mhz` and utilization `util ∈ [0, 1]`.
    pub fn power(&self, f_mhz: f64, util: f64) -> f64 {
        let u = util.clamp(0.0, 1.0);
        let dyn_scale = self.util_floor + (1.0 - self.util_floor) * u;
        let quad = {
            let d = f_mhz - self.quad_ref_mhz;
            self.quad_w_per_mhz2 * d * d
        };
        self.idle_watts + self.gain_w_per_mhz * f_mhz * dyn_scale + quad
    }

    fn validate(&self) -> Result<()> {
        if self.idle_watts < 0.0
            || self.gain_w_per_mhz <= 0.0
            || !(0.0..=1.0).contains(&self.util_floor)
            || self.quad_w_per_mhz2 < 0.0
            || self.quad_ref_mhz < 0.0
        {
            return Err(SimError::BadConfig("invalid power law parameters"));
        }
        Ok(())
    }
}

/// An optional low-memory-clock P-state: engaging it scales the device's
/// clock-proportional power down and slows memory-bound work. This is the
/// "additional system mechanism (e.g., memory throttling)" the paper's
/// §4.4 proposes for set points unreachable by core-clock scaling alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemThrottle {
    /// Multiplier (< 1) on the clock-proportional power while engaged.
    pub power_scale: f64,
    /// Multiplier (> 1) on inference latency while engaged (the workload
    /// layer models it as an effective core-clock derating).
    pub latency_penalty: f64,
}

impl MemThrottle {
    fn validate(&self) -> Result<()> {
        if !(0.0 < self.power_scale && self.power_scale < 1.0) {
            return Err(SimError::BadConfig(
                "mem throttle power_scale must be in (0,1)",
            ));
        }
        if self.latency_penalty <= 1.0 {
            return Err(SimError::BadConfig(
                "mem throttle latency_penalty must exceed 1",
            ));
        }
        Ok(())
    }
}

/// Full specification of one device in the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable model name (e.g. "Tesla V100-PCIE-16GB").
    pub name: String,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Supported discrete clocks.
    pub freq_table: FrequencyTable,
    /// Ground-truth power law.
    pub power_law: PowerLaw,
    /// Optional low-memory-clock state (None = unsupported).
    pub mem_throttle: Option<MemThrottle>,
    /// Optional thermal model (None = ideal cooling, never throttles).
    pub thermal: Option<crate::thermal::ThermalSpec>,
}

impl DeviceSpec {
    /// Validates the spec.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] on invalid parameters.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(SimError::BadConfig("device needs a name"));
        }
        if let Some(mt) = &self.mem_throttle {
            mt.validate()?;
        }
        if let Some(th) = &self.thermal {
            th.validate()?;
        }
        self.power_law.validate()
    }

    /// Peak power draw (max frequency, util 1).
    pub fn peak_watts(&self) -> f64 {
        self.power_law.power(self.freq_table.max(), 1.0)
    }

    /// Minimum busy power draw (min frequency, util 1).
    pub fn min_busy_watts(&self) -> f64 {
        self.power_law.power(self.freq_table.min(), 1.0)
    }
}

/// Mutable runtime state of a device inside the server.
#[derive(Debug, Clone)]
pub struct DeviceState {
    /// The applied (quantized) frequency in MHz.
    pub applied_mhz: f64,
    /// The last requested target in MHz (before quantization).
    pub target_mhz: f64,
    /// Whether the low-memory-clock state is engaged.
    pub mem_throttled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100_law() -> PowerLaw {
        PowerLaw {
            idle_watts: 50.0,
            gain_w_per_mhz: 0.1415,
            util_floor: 0.35,
            quad_w_per_mhz2: 5.0e-6,
            quad_ref_mhz: 800.0,
        }
    }

    #[test]
    fn power_monotone_in_frequency_and_util() {
        let law = v100_law();
        assert!(law.power(1350.0, 1.0) > law.power(435.0, 1.0));
        assert!(law.power(1000.0, 1.0) > law.power(1000.0, 0.0));
    }

    #[test]
    fn util_is_clamped() {
        let law = v100_law();
        assert_eq!(law.power(1000.0, 2.0), law.power(1000.0, 1.0));
        assert_eq!(law.power(1000.0, -1.0), law.power(1000.0, 0.0));
    }

    #[test]
    fn v100_scale_power_numbers() {
        // Peak should land in the ~250 W envelope of a V100 under load.
        let law = v100_law();
        let peak = law.power(1350.0, 1.0);
        assert!((230.0..265.0).contains(&peak), "peak {peak}");
        let idle_floor = law.power(435.0, 0.0);
        assert!((60.0..90.0).contains(&idle_floor), "idle {idle_floor}");
    }

    #[test]
    fn quad_term_bends_the_curve() {
        let law = v100_law();
        // Secant slope above the reference exceeds the one below it.
        let lo_slope = (law.power(800.0, 1.0) - law.power(600.0, 1.0)) / 200.0;
        let hi_slope = (law.power(1350.0, 1.0) - law.power(1150.0, 1.0)) / 200.0;
        assert!(hi_slope > lo_slope);
    }

    #[test]
    fn spec_validation() {
        let spec = DeviceSpec {
            name: "test".into(),
            kind: DeviceKind::Gpu,
            freq_table: FrequencyTable::uniform(435.0, 1350.0, 15.0).unwrap(),
            power_law: v100_law(),
            mem_throttle: None,
            thermal: None,
        };
        assert!(spec.validate().is_ok());
        assert!(spec.peak_watts() > spec.min_busy_watts());

        let mut bad = spec.clone();
        bad.name.clear();
        assert!(bad.validate().is_err());

        let mut bad = spec.clone();
        bad.power_law.gain_w_per_mhz = 0.0;
        assert!(bad.validate().is_err());

        let mut bad = spec;
        bad.power_law.util_floor = 1.5;
        assert!(bad.validate().is_err());
    }
}
