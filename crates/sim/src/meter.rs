//! ACPI-style server power meter.
//!
//! Models the `power_meter-acpi-0` interface the paper reads through
//! lm-sensors (§5): a device that samples total server power once per
//! second and appends readings the controller averages over each control
//! period. Sensor noise is Gaussian; fault injection covers dropouts
//! (no reading) and stuck-value failures.

use std::collections::VecDeque;

use crate::{Result, SimError};

/// Injected meter fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterFault {
    /// Meter returns no sample.
    Dropout,
    /// Meter repeats its last good sample.
    Stuck,
}

/// The server-level power meter.
#[derive(Debug, Clone)]
pub struct PowerMeter {
    /// Gaussian sensor noise standard deviation (W).
    noise_std: f64,
    /// Ring buffer of recent samples.
    samples: VecDeque<f64>,
    /// Maximum retained samples.
    capacity: usize,
    /// Active fault, if any.
    fault: Option<MeterFault>,
    /// Last good (pre-fault) sample.
    last_good: Option<f64>,
    /// Total samples taken (including faulted periods).
    total_samples: u64,
}

impl PowerMeter {
    /// Creates a meter with the given noise level, retaining `capacity`
    /// samples.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] on negative noise or zero capacity.
    pub fn new(noise_std: f64, capacity: usize) -> Result<Self> {
        if noise_std < 0.0 {
            return Err(SimError::BadConfig("meter noise must be non-negative"));
        }
        if capacity == 0 {
            return Err(SimError::BadConfig("meter capacity must be positive"));
        }
        Ok(PowerMeter {
            noise_std,
            samples: VecDeque::with_capacity(capacity),
            capacity,
            fault: None,
            last_good: None,
            total_samples: 0,
        })
    }

    /// Sensor noise standard deviation in watts.
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Injects (or clears, with `None`) a fault.
    pub fn set_fault(&mut self, fault: Option<MeterFault>) {
        self.fault = fault;
    }

    /// Records one 1 Hz sample. `true_power` is the instantaneous server
    /// power; `noise` is a standard-normal draw scaled internally (the
    /// server supplies it from its seeded RNG so the meter itself stays
    /// deterministic and RNG-free).
    ///
    /// Returns the recorded reading, or `None` during a dropout.
    pub fn record(&mut self, true_power: f64, noise: f64) -> Option<f64> {
        self.total_samples += 1;
        let reading = match self.fault {
            Some(MeterFault::Dropout) => None,
            Some(MeterFault::Stuck) => self.last_good,
            None => {
                let r = true_power + self.noise_std * noise;
                self.last_good = Some(r);
                Some(r)
            }
        };
        if let Some(r) = reading {
            if self.samples.len() == self.capacity {
                self.samples.pop_front();
            }
            self.samples.push_back(r);
        }
        reading
    }

    /// Average of the most recent `n` samples — what the controller reads
    /// at the end of each control period (the paper averages 4 × 1 Hz
    /// samples per period).
    ///
    /// # Errors
    /// [`SimError::MeterUnavailable`] when no samples are buffered.
    pub fn average_last(&self, n: usize) -> Result<f64> {
        if self.samples.is_empty() {
            return Err(SimError::MeterUnavailable);
        }
        let take = n.min(self.samples.len()).max(1);
        let sum: f64 = self.samples.iter().rev().take(take).sum();
        Ok(sum / take as f64)
    }

    /// Most recent sample.
    ///
    /// # Errors
    /// [`SimError::MeterUnavailable`] when no samples are buffered.
    pub fn latest(&self) -> Result<f64> {
        self.samples
            .back()
            .copied()
            .ok_or(SimError::MeterUnavailable)
    }

    /// Number of currently buffered samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are buffered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Lifetime sample count (including faulted attempts).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut m = PowerMeter::new(0.0, 16).unwrap();
        for p in [100.0, 110.0, 120.0, 130.0] {
            m.record(p, 0.0);
        }
        assert_eq!(m.average_last(4).unwrap(), 115.0);
        assert_eq!(m.average_last(2).unwrap(), 125.0);
        assert_eq!(m.latest().unwrap(), 130.0);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn noise_is_applied() {
        let mut m = PowerMeter::new(5.0, 4).unwrap();
        let r = m.record(100.0, 1.0).unwrap();
        assert_eq!(r, 105.0);
    }

    #[test]
    fn ring_buffer_evicts() {
        let mut m = PowerMeter::new(0.0, 2).unwrap();
        m.record(1.0, 0.0);
        m.record(2.0, 0.0);
        m.record(3.0, 0.0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.average_last(10).unwrap(), 2.5);
    }

    #[test]
    fn dropout_fault() {
        let mut m = PowerMeter::new(0.0, 4).unwrap();
        m.record(100.0, 0.0);
        m.set_fault(Some(MeterFault::Dropout));
        assert_eq!(m.record(200.0, 0.0), None);
        // Old sample still readable.
        assert_eq!(m.latest().unwrap(), 100.0);
        m.set_fault(None);
        assert_eq!(m.record(300.0, 0.0), Some(300.0));
    }

    #[test]
    fn stuck_fault_repeats_last_good() {
        let mut m = PowerMeter::new(0.0, 4).unwrap();
        m.record(100.0, 0.0);
        m.set_fault(Some(MeterFault::Stuck));
        assert_eq!(m.record(500.0, 0.0), Some(100.0));
        assert_eq!(m.average_last(2).unwrap(), 100.0);
    }

    #[test]
    fn empty_meter_errors() {
        let m = PowerMeter::new(1.0, 4).unwrap();
        assert_eq!(m.average_last(4).unwrap_err(), SimError::MeterUnavailable);
        assert_eq!(m.latest().unwrap_err(), SimError::MeterUnavailable);
        assert!(m.is_empty());
    }

    #[test]
    fn validation() {
        assert!(PowerMeter::new(-1.0, 4).is_err());
        assert!(PowerMeter::new(1.0, 0).is_err());
    }

    #[test]
    fn total_samples_counts_faults() {
        let mut m = PowerMeter::new(0.0, 4).unwrap();
        m.set_fault(Some(MeterFault::Dropout));
        m.record(1.0, 0.0);
        m.record(1.0, 0.0);
        assert_eq!(m.total_samples(), 2);
        assert_eq!(m.len(), 0);
    }
}
