//! ACPI-style server power meter.
//!
//! Models the `power_meter-acpi-0` interface the paper reads through
//! lm-sensors (§5): a device that samples total server power once per
//! second and appends readings the controller averages over each control
//! period. Sensor noise is Gaussian; fault injection covers dropouts
//! (no reading), stuck-value failures, additive bias drift, and delayed
//! reporting (the telemetry-fault family of the `capgpu-faults`
//! subsystem).

use std::collections::VecDeque;

use crate::{Result, SimError};

/// Injected meter fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeterFault {
    /// Meter returns no sample.
    Dropout,
    /// Meter repeats its last good sample.
    Stuck,
    /// Meter reads high/low by a constant offset plus a linear drift
    /// (sensor decalibration): the reported sample is
    /// `true + noise + watts + drift_w_per_s · age`, where `age` counts
    /// seconds since the fault was injected.
    Bias {
        /// Constant additive offset (W; negative reads low).
        watts: f64,
        /// Additional drift per second of fault age (W/s).
        drift_w_per_s: f64,
    },
    /// Meter reports each sample `seconds` late (a congested BMC): the
    /// first `seconds` records after injection return nothing, then the
    /// delayed stream flows. Clearing the fault discards readings still
    /// in flight — delayed telemetry is lost, not replayed.
    Delay {
        /// Reporting delay in whole samples (seconds at 1 Hz).
        seconds: usize,
    },
}

/// The server-level power meter.
#[derive(Debug, Clone)]
pub struct PowerMeter {
    /// Gaussian sensor noise standard deviation (W).
    noise_std: f64,
    /// Ring buffer of recent samples.
    samples: VecDeque<f64>,
    /// Maximum retained samples.
    capacity: usize,
    /// Active fault, if any.
    fault: Option<MeterFault>,
    /// Last good (pre-fault) sample.
    last_good: Option<f64>,
    /// Total samples taken (including faulted periods).
    total_samples: u64,
    /// Seconds since the active fault was injected (drives bias drift).
    fault_age_s: u64,
    /// Readings in flight during a [`MeterFault::Delay`].
    delayed: VecDeque<f64>,
    /// `total_samples` at the most recent *successful* record, for
    /// sample-age queries ([`PowerMeter::seconds_since_last_sample`]).
    last_recorded_at: Option<u64>,
}

impl PowerMeter {
    /// Creates a meter with the given noise level, retaining `capacity`
    /// samples.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] on negative noise or zero capacity.
    pub fn new(noise_std: f64, capacity: usize) -> Result<Self> {
        if noise_std < 0.0 {
            return Err(SimError::BadConfig("meter noise must be non-negative"));
        }
        if capacity == 0 {
            return Err(SimError::BadConfig("meter capacity must be positive"));
        }
        Ok(PowerMeter {
            noise_std,
            samples: VecDeque::with_capacity(capacity),
            capacity,
            fault: None,
            last_good: None,
            total_samples: 0,
            fault_age_s: 0,
            delayed: VecDeque::new(),
            last_recorded_at: None,
        })
    }

    /// Sensor noise standard deviation in watts.
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Injects (or clears, with `None`) a fault. Resets the fault age and
    /// discards any delayed readings still in flight.
    pub fn set_fault(&mut self, fault: Option<MeterFault>) {
        self.fault = fault;
        self.fault_age_s = 0;
        self.delayed.clear();
    }

    /// The active fault, if any.
    pub fn fault(&self) -> Option<MeterFault> {
        self.fault
    }

    /// Records one 1 Hz sample. `true_power` is the instantaneous server
    /// power; `noise` is a standard-normal draw scaled internally (the
    /// server supplies it from its seeded RNG so the meter itself stays
    /// deterministic and RNG-free).
    ///
    /// Returns the recorded reading, or `None` when the active fault
    /// produced no sample (dropout, or a delay line still filling).
    pub fn record(&mut self, true_power: f64, noise: f64) -> Option<f64> {
        self.total_samples += 1;
        let reading = match self.fault {
            Some(MeterFault::Dropout) => None,
            Some(MeterFault::Stuck) => self.last_good,
            Some(MeterFault::Bias {
                watts,
                drift_w_per_s,
            }) => {
                let r = true_power
                    + self.noise_std * noise
                    + watts
                    + drift_w_per_s * self.fault_age_s as f64;
                // The meter does not know it is biased: the corrupted
                // reading becomes its notion of "last good".
                self.last_good = Some(r);
                Some(r)
            }
            Some(MeterFault::Delay { seconds }) => {
                self.delayed.push_back(true_power + self.noise_std * noise);
                if self.delayed.len() > seconds {
                    let r = self.delayed.pop_front();
                    self.last_good = r;
                    r
                } else {
                    None
                }
            }
            None => {
                let r = true_power + self.noise_std * noise;
                self.last_good = Some(r);
                Some(r)
            }
        };
        if self.fault.is_some() {
            self.fault_age_s += 1;
        }
        if let Some(r) = reading {
            if self.samples.len() == self.capacity {
                self.samples.pop_front();
            }
            self.samples.push_back(r);
            self.last_recorded_at = Some(self.total_samples);
        }
        reading
    }

    /// Average of the most recent `n` samples — what the controller reads
    /// at the end of each control period (the paper averages 4 × 1 Hz
    /// samples per period).
    ///
    /// # Errors
    /// [`SimError::MeterUnavailable`] when no samples are buffered.
    pub fn average_last(&self, n: usize) -> Result<f64> {
        if self.samples.is_empty() {
            return Err(SimError::MeterUnavailable);
        }
        let take = n.min(self.samples.len()).max(1);
        let sum: f64 = self.samples.iter().rev().take(take).sum();
        Ok(sum / take as f64)
    }

    /// Most recent sample.
    ///
    /// # Errors
    /// [`SimError::MeterUnavailable`] when no samples are buffered.
    pub fn latest(&self) -> Result<f64> {
        self.samples
            .back()
            .copied()
            .ok_or(SimError::MeterUnavailable)
    }

    /// Seconds elapsed since the meter last produced a sample — `Some(0)`
    /// right after a successful record, growing by one per dropped-out
    /// record, `None` if the meter has never produced a sample. This is
    /// the staleness signal supervisory watchdogs key on: a caller about
    /// to average the buffer can tell "fresh average" apart from "buffer
    /// full of pre-dropout samples".
    pub fn seconds_since_last_sample(&self) -> Option<u64> {
        self.last_recorded_at.map(|at| self.total_samples - at)
    }

    /// Number of currently buffered samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are buffered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Lifetime sample count (including faulted attempts).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut m = PowerMeter::new(0.0, 16).unwrap();
        for p in [100.0, 110.0, 120.0, 130.0] {
            m.record(p, 0.0);
        }
        assert_eq!(m.average_last(4).unwrap(), 115.0);
        assert_eq!(m.average_last(2).unwrap(), 125.0);
        assert_eq!(m.latest().unwrap(), 130.0);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn noise_is_applied() {
        let mut m = PowerMeter::new(5.0, 4).unwrap();
        let r = m.record(100.0, 1.0).unwrap();
        assert_eq!(r, 105.0);
    }

    #[test]
    fn ring_buffer_evicts() {
        let mut m = PowerMeter::new(0.0, 2).unwrap();
        m.record(1.0, 0.0);
        m.record(2.0, 0.0);
        m.record(3.0, 0.0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.average_last(10).unwrap(), 2.5);
    }

    #[test]
    fn dropout_fault() {
        let mut m = PowerMeter::new(0.0, 4).unwrap();
        m.record(100.0, 0.0);
        m.set_fault(Some(MeterFault::Dropout));
        assert_eq!(m.record(200.0, 0.0), None);
        // Old sample still readable.
        assert_eq!(m.latest().unwrap(), 100.0);
        m.set_fault(None);
        assert_eq!(m.record(300.0, 0.0), Some(300.0));
    }

    #[test]
    fn stuck_fault_repeats_last_good() {
        let mut m = PowerMeter::new(0.0, 4).unwrap();
        m.record(100.0, 0.0);
        m.set_fault(Some(MeterFault::Stuck));
        assert_eq!(m.record(500.0, 0.0), Some(100.0));
        assert_eq!(m.average_last(2).unwrap(), 100.0);
    }

    #[test]
    fn bias_fault_drifts_with_age() {
        let mut m = PowerMeter::new(0.0, 8).unwrap();
        m.set_fault(Some(MeterFault::Bias {
            watts: 20.0,
            drift_w_per_s: 2.0,
        }));
        assert_eq!(m.record(100.0, 0.0), Some(120.0)); // age 0
        assert_eq!(m.record(100.0, 0.0), Some(122.0)); // age 1
        assert_eq!(m.record(100.0, 0.0), Some(124.0)); // age 2
        m.set_fault(None);
        assert_eq!(m.record(100.0, 0.0), Some(100.0));
        // Re-injection restarts the drift clock.
        m.set_fault(Some(MeterFault::Bias {
            watts: -10.0,
            drift_w_per_s: 1.0,
        }));
        assert_eq!(m.record(100.0, 0.0), Some(90.0));
    }

    #[test]
    fn delay_fault_shifts_the_stream() {
        let mut m = PowerMeter::new(0.0, 8).unwrap();
        m.set_fault(Some(MeterFault::Delay { seconds: 2 }));
        assert_eq!(m.record(1.0, 0.0), None);
        assert_eq!(m.record(2.0, 0.0), None);
        assert_eq!(m.record(3.0, 0.0), Some(1.0));
        assert_eq!(m.record(4.0, 0.0), Some(2.0));
        // Clearing drops the two readings still in flight.
        m.set_fault(None);
        assert_eq!(m.record(5.0, 0.0), Some(5.0));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn sample_age_tracks_dropouts() {
        let mut m = PowerMeter::new(0.0, 4).unwrap();
        assert_eq!(m.seconds_since_last_sample(), None);
        m.record(100.0, 0.0);
        assert_eq!(m.seconds_since_last_sample(), Some(0));
        m.set_fault(Some(MeterFault::Dropout));
        m.record(100.0, 0.0);
        m.record(100.0, 0.0);
        assert_eq!(m.seconds_since_last_sample(), Some(2));
        m.set_fault(None);
        m.record(100.0, 0.0);
        assert_eq!(m.seconds_since_last_sample(), Some(0));
    }

    #[test]
    fn empty_meter_errors() {
        let m = PowerMeter::new(1.0, 4).unwrap();
        assert_eq!(m.average_last(4).unwrap_err(), SimError::MeterUnavailable);
        assert_eq!(m.latest().unwrap_err(), SimError::MeterUnavailable);
        assert!(m.is_empty());
    }

    #[test]
    fn validation() {
        assert!(PowerMeter::new(-1.0, 4).is_err());
        assert!(PowerMeter::new(1.0, 0).is_err());
    }

    #[test]
    fn total_samples_counts_faults() {
        let mut m = PowerMeter::new(0.0, 4).unwrap();
        m.set_fault(Some(MeterFault::Dropout));
        m.record(1.0, 0.0);
        m.record(1.0, 0.0);
        assert_eq!(m.total_samples(), 2);
        assert_eq!(m.len(), 0);
    }
}
