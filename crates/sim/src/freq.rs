//! Discrete frequency (P-state / clock) tables.
//!
//! Real DVFS interfaces only accept discrete operating points: `cpupower`
//! exposes ACPI P-states in ~100 MHz steps, `nvidia-smi -ac` accepts only
//! clocks from the GPU's supported-clocks list (multiples of 7.5/15 MHz on
//! Volta). The paper's delta-sigma modulator exists precisely because of
//! this quantization; the simulator reproduces it faithfully.

use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// An ascending table of supported frequencies (MHz).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyTable {
    levels: Vec<f64>,
}

impl FrequencyTable {
    /// Creates a table from ascending levels.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] when empty or not strictly ascending.
    pub fn new(levels: Vec<f64>) -> Result<Self> {
        if levels.is_empty() {
            return Err(SimError::BadConfig("frequency table is empty"));
        }
        if levels.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SimError::BadConfig(
                "frequency table must be strictly ascending",
            ));
        }
        if levels.iter().any(|f| *f <= 0.0 || !f.is_finite()) {
            return Err(SimError::BadConfig("frequencies must be positive finite"));
        }
        Ok(FrequencyTable { levels })
    }

    /// Uniformly spaced table `min..=max` in `step` MHz increments.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] on a non-positive step or inverted range.
    pub fn uniform(min_mhz: f64, max_mhz: f64, step_mhz: f64) -> Result<Self> {
        if step_mhz <= 0.0 || min_mhz > max_mhz || min_mhz <= 0.0 {
            return Err(SimError::BadConfig("bad uniform frequency range"));
        }
        let n = ((max_mhz - min_mhz) / step_mhz).floor() as usize;
        let levels = (0..=n).map(|i| min_mhz + i as f64 * step_mhz).collect();
        FrequencyTable::new(levels)
    }

    /// Supported levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Lowest supported frequency.
    pub fn min(&self) -> f64 {
        self.levels[0]
    }

    /// Highest supported frequency.
    pub fn max(&self) -> f64 {
        *self.levels.last().expect("non-empty")
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Always false (construction forbids empty tables).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Quantizes a target to the nearest supported level (ties prefer the
    /// lower level, matching how `nvidia-smi` rounds requested clocks).
    pub fn quantize(&self, target_mhz: f64) -> f64 {
        let clamped = target_mhz.clamp(self.min(), self.max());
        match self
            .levels
            .binary_search_by(|l| l.partial_cmp(&clamped).expect("no NaN"))
        {
            Ok(i) => self.levels[i],
            Err(0) => self.levels[0],
            Err(i) if i == self.levels.len() => self.max(),
            Err(i) => {
                let lo = self.levels[i - 1];
                let hi = self.levels[i];
                if clamped - lo <= hi - clamped {
                    lo
                } else {
                    hi
                }
            }
        }
    }

    /// The two levels bracketing a target, for delta-sigma modulation.
    /// Returns `(level, level)` when the target sits exactly on a level or
    /// outside the range.
    pub fn bracket(&self, target_mhz: f64) -> (f64, f64) {
        let clamped = target_mhz.clamp(self.min(), self.max());
        match self
            .levels
            .binary_search_by(|l| l.partial_cmp(&clamped).expect("no NaN"))
        {
            Ok(i) => (self.levels[i], self.levels[i]),
            Err(0) => (self.levels[0], self.levels[0]),
            Err(i) if i == self.levels.len() => (self.max(), self.max()),
            Err(i) => (self.levels[i - 1], self.levels[i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_table_endpoints() {
        let t = FrequencyTable::uniform(435.0, 1350.0, 15.0).unwrap();
        assert_eq!(t.min(), 435.0);
        assert_eq!(t.max(), 1350.0);
        assert_eq!(t.len(), 62);
    }

    #[test]
    fn quantize_nearest() {
        let t = FrequencyTable::uniform(100.0, 200.0, 50.0).unwrap(); // 100,150,200
        assert_eq!(t.quantize(100.0), 100.0);
        assert_eq!(t.quantize(120.0), 100.0);
        assert_eq!(t.quantize(126.0), 150.0);
        assert_eq!(t.quantize(125.0), 100.0); // tie -> lower
        assert_eq!(t.quantize(0.0), 100.0);
        assert_eq!(t.quantize(1e9), 200.0);
    }

    #[test]
    fn bracket_pairs() {
        let t = FrequencyTable::uniform(100.0, 200.0, 50.0).unwrap();
        assert_eq!(t.bracket(150.0), (150.0, 150.0));
        assert_eq!(t.bracket(160.0), (150.0, 200.0));
        assert_eq!(t.bracket(-5.0), (100.0, 100.0));
        assert_eq!(t.bracket(1e6), (200.0, 200.0));
    }

    #[test]
    fn validation() {
        assert!(FrequencyTable::new(vec![]).is_err());
        assert!(FrequencyTable::new(vec![2.0, 1.0]).is_err());
        assert!(FrequencyTable::new(vec![1.0, 1.0]).is_err());
        assert!(FrequencyTable::new(vec![-1.0, 1.0]).is_err());
        assert!(FrequencyTable::uniform(200.0, 100.0, 10.0).is_err());
        assert!(FrequencyTable::uniform(100.0, 200.0, 0.0).is_err());
    }

    #[test]
    fn single_level() {
        let t = FrequencyTable::new(vec![877.0]).unwrap();
        assert_eq!(t.quantize(1000.0), 877.0);
        assert_eq!(t.bracket(900.0), (877.0, 877.0));
    }

    #[test]
    fn clone_and_eq() {
        let t = FrequencyTable::uniform(435.0, 1350.0, 15.0).unwrap();
        let u = t.clone();
        assert_eq!(t, u);
    }
}
