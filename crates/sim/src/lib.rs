//! Simulated multi-GPU server testbed for CapGPU.
//!
//! The paper's experiments run on a physical server (Intel Xeon Gold 5215 +
//! 3× NVIDIA Tesla V100, ACPI power meter, `cpupower`/`nvidia-smi`
//! actuators). This crate is the drop-in simulated equivalent: it exposes
//! **exactly the interfaces the controller consumes** — per-device
//! frequency actuation over discrete clock tables, and a server-level power
//! meter sampling at 1 Hz — backed by ground-truth device power laws the
//! controller never sees.
//!
//! Design goals:
//!
//! * **Same code path as hardware.** Controllers set target frequencies;
//!   actuators quantize to the device's supported clock table (like
//!   `nvidia-smi -ac` / `cpupower frequency-set`); the power meter returns
//!   noisy 1 Hz samples that must be averaged per control period (like the
//!   ACPI `power_meter` interface in §5 of the paper).
//! * **Realistic imperfection.** Gaussian sensor noise, slow platform-power
//!   drift, utilization-dependent device power, and a mild quadratic
//!   frequency term mean the controller's identified linear model is an
//!   approximation (R² ≈ 0.96, like Fig. 2a) rather than an oracle.
//! * **Determinism.** All randomness flows from a caller-provided seed, so
//!   every experiment trace is reproducible bit-for-bit.
//! * **Failure injection.** The meter supports dropout / stuck-value /
//!   bias-drift / delayed-reporting faults, devices support actuator
//!   faults (stuck or rejected clock commands, coarse quantization,
//!   ejection off the bus), and the PSU can advertise a derated power
//!   limit — the injection surface the `capgpu-faults` schedule DSL and
//!   the supervisory failover layer drive.
//!
//! ```
//! use capgpu_sim::{presets, ServerBuilder};
//!
//! let mut server = ServerBuilder::new(42)
//!     .platform_watts(300.0)
//!     .add_device(presets::xeon_gold_5215())
//!     .add_device(presets::tesla_v100())
//!     .add_device(presets::tesla_v100())
//!     .add_device(presets::tesla_v100())
//!     .build()
//!     .unwrap();
//! server.set_target_frequency(1, 900.0).unwrap();
//! let reading = server.tick_second(&[1.0, 1.0, 1.0, 1.0]).unwrap();
//! assert!(reading.expect("no fault injected") > 300.0);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod freq;
pub mod meter;
pub mod presets;
pub mod server;
pub mod thermal;

pub use device::{DeviceKind, DeviceSpec, PowerLaw};
pub use freq::FrequencyTable;
pub use meter::{MeterFault, PowerMeter};
pub use server::{ActuatorFault, Server, ServerBuilder};
pub use thermal::{ThermalSpec, ThermalState};

/// Errors from the simulated testbed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid device or server configuration.
    BadConfig(&'static str),
    /// Device index out of range.
    NoSuchDevice(usize),
    /// Input length does not match the device count.
    WrongArity {
        /// Expected number of devices.
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// The power meter produced no sample (fault injection).
    MeterUnavailable,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadConfig(m) => write!(f, "bad testbed config: {m}"),
            SimError::NoSuchDevice(i) => write!(f, "no device with index {i}"),
            SimError::WrongArity { expected, got } => {
                write!(f, "expected {expected} per-device values, got {got}")
            }
            SimError::MeterUnavailable => write!(f, "power meter unavailable"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for the simulated testbed.
pub type Result<T> = std::result::Result<T, SimError>;
