//! First-order thermal model with thermal throttling.
//!
//! The paper pins the fan speed (§5) to isolate workload-driven power
//! variation — which makes die temperature a pure function of dissipated
//! power with a first-order lag:
//!
//! ```text
//!   T(t+Δ) = T(t) + Δ/τ · (T_amb + R_th·P − T(t))
//! ```
//!
//! (`R_th` K/W thermal resistance at the fixed airflow, `τ` seconds of
//! thermal capacitance). When the die crosses `t_throttle`, real GPUs
//! clamp their clock to a low "thermal P-state" regardless of what the
//! operator requested — an actuation disturbance a robust power-capping
//! controller must survive. The model is optional per device and disabled
//! in the paper-reproduction scenarios (the V100s there run far below
//! their 83 °C throttle point at the evaluated caps).

use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// Thermal parameters of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance die→air at the pinned fan speed, K/W.
    pub r_th_k_per_w: f64,
    /// Thermal time constant, seconds.
    pub tau_s: f64,
    /// Die temperature at which the device hard-throttles, °C.
    pub t_throttle_c: f64,
    /// Clock the device clamps to while throttling (MHz).
    pub throttle_clock_mhz: f64,
    /// Hysteresis: throttling releases at `t_throttle_c − hysteresis_c`.
    pub hysteresis_c: f64,
}

impl ThermalSpec {
    /// Validates the parameters.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] on non-physical values.
    pub fn validate(&self) -> Result<()> {
        if self.r_th_k_per_w <= 0.0
            || self.tau_s <= 0.0
            || self.throttle_clock_mhz <= 0.0
            || self.hysteresis_c < 0.0
            || self.t_throttle_c <= self.ambient_c
        {
            return Err(SimError::BadConfig("invalid thermal parameters"));
        }
        Ok(())
    }

    /// Steady-state die temperature at constant power `p_watts`.
    pub fn steady_temperature(&self, p_watts: f64) -> f64 {
        self.ambient_c + self.r_th_k_per_w * p_watts
    }

    /// The power at which the device would eventually hit its throttle
    /// point — the thermal design power at this airflow.
    pub fn throttle_power_watts(&self) -> f64 {
        (self.t_throttle_c - self.ambient_c) / self.r_th_k_per_w
    }
}

/// V100-class thermal parameters at a pinned mid-speed fan.
pub fn v100_thermal() -> ThermalSpec {
    ThermalSpec {
        ambient_c: 30.0,
        r_th_k_per_w: 0.20,
        tau_s: 45.0,
        t_throttle_c: 83.0,
        throttle_clock_mhz: 607.5,
        hysteresis_c: 5.0,
    }
}

/// Mutable thermal state of one device.
#[derive(Debug, Clone)]
pub struct ThermalState {
    /// Current die temperature, °C.
    pub temperature_c: f64,
    /// Whether the device is currently thermal-throttling.
    pub throttling: bool,
}

impl ThermalState {
    /// Starts at ambient, not throttling.
    pub fn new(spec: &ThermalSpec) -> Self {
        ThermalState {
            temperature_c: spec.ambient_c,
            throttling: false,
        }
    }

    /// Advances one second at dissipated power `p_watts`; returns whether
    /// the device is throttling afterwards (with hysteresis).
    pub fn step(&mut self, spec: &ThermalSpec, p_watts: f64) -> bool {
        let target = spec.steady_temperature(p_watts);
        self.temperature_c += (target - self.temperature_c) / spec.tau_s;
        if self.throttling {
            if self.temperature_c <= spec.t_throttle_c - spec.hysteresis_c {
                self.throttling = false;
            }
        } else if self.temperature_c >= spec.t_throttle_c {
            self.throttling = true;
        }
        self.throttling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(v100_thermal().validate().is_ok());
        let mut bad = v100_thermal();
        bad.r_th_k_per_w = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = v100_thermal();
        bad.t_throttle_c = 20.0; // below ambient
        assert!(bad.validate().is_err());
    }

    #[test]
    fn steady_state_math() {
        let spec = v100_thermal();
        assert_eq!(spec.steady_temperature(0.0), 30.0);
        assert_eq!(spec.steady_temperature(200.0), 70.0);
        assert!((spec.throttle_power_watts() - 265.0).abs() < 1e-9);
    }

    #[test]
    fn first_order_rise_and_convergence() {
        let spec = v100_thermal();
        let mut st = ThermalState::new(&spec);
        let mut prev = st.temperature_c;
        for _ in 0..300 {
            st.step(&spec, 200.0);
            assert!(st.temperature_c >= prev - 1e-9, "monotone rise");
            prev = st.temperature_c;
        }
        // Converged near the steady value.
        assert!(
            (st.temperature_c - 70.0).abs() < 0.5,
            "{}",
            st.temperature_c
        );
        assert!(!st.throttling, "200 W must not throttle a 265 W envelope");
    }

    #[test]
    fn time_constant_meaning() {
        // After τ seconds, ~63% of the step is covered.
        let spec = v100_thermal();
        let mut st = ThermalState::new(&spec);
        for _ in 0..(spec.tau_s as usize) {
            st.step(&spec, 200.0);
        }
        let frac = (st.temperature_c - 30.0) / 40.0;
        assert!((frac - 0.63).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn throttles_above_envelope_and_releases_with_hysteresis() {
        let spec = v100_thermal();
        let mut st = ThermalState::new(&spec);
        // 300 W > 265 W envelope → eventually throttles.
        let mut throttled_at = None;
        for s in 0..600 {
            if st.step(&spec, 300.0) {
                throttled_at = Some(s);
                break;
            }
        }
        let t_on = throttled_at.expect("must throttle");
        assert!(t_on > 30, "thermal lag should delay throttling: {t_on}");
        assert!(st.throttling);
        // Cooling at 100 W: must stay throttled until below 78 °C.
        let mut released_at = None;
        for s in 0..600 {
            if !st.step(&spec, 100.0) {
                released_at = Some(s);
                break;
            }
        }
        assert!(released_at.is_some(), "must release after cooling");
        assert!(
            st.temperature_c <= spec.t_throttle_c - spec.hysteresis_c + 0.5,
            "released at {} °C",
            st.temperature_c
        );
    }

    #[test]
    fn no_chatter_at_the_boundary() {
        // Power exactly at the throttle envelope: hysteresis prevents
        // rapid on/off cycling.
        let spec = v100_thermal();
        let mut st = ThermalState::new(&spec);
        let mut transitions = 0;
        let mut prev = false;
        for _ in 0..2000 {
            let now = st.step(&spec, spec.throttle_power_watts() + 1.0);
            if now != prev {
                transitions += 1;
            }
            prev = now;
        }
        assert!(transitions <= 1, "{transitions} throttle transitions");
    }
}
