//! Device presets calibrated to the paper's hardware testbed.
//!
//! The parameters are chosen so that a server of one Xeon Gold 5215 plus
//! three Tesla V100s spans roughly 740–1220 W — covering the paper's set
//! points (800–1200 W) with the same qualitative structure: GPUs dominate
//! the controllable range, the CPU contributes a small slice, and a fixed
//! platform floor (fans pinned per §5, RAM, VRM losses) sits underneath.

use crate::device::{DeviceKind, DeviceSpec, MemThrottle, PowerLaw};
use crate::freq::FrequencyTable;

/// Intel Xeon Gold 5215 package (the paper's host CPU): DVFS 1.0–2.4 GHz
/// in 100 MHz P-state steps, ~170 W package peak.
pub fn xeon_gold_5215() -> DeviceSpec {
    DeviceSpec {
        name: "Intel Xeon Gold 5215".to_string(),
        kind: DeviceKind::Cpu,
        freq_table: FrequencyTable::uniform(1000.0, 2400.0, 100.0).expect("static table is valid"),
        power_law: PowerLaw {
            idle_watts: 50.0,
            gain_w_per_mhz: 0.05,
            util_floor: 0.35,
            quad_w_per_mhz2: 2.0e-6,
            quad_ref_mhz: 1500.0,
        },
        mem_throttle: None,
        thermal: None,
    }
}

/// NVIDIA Tesla V100-PCIE-16GB: core clock 435–1350 MHz in 15 MHz steps
/// (memory clock pinned at 877 MHz as in the paper's `nvidia-smi -ac`
/// command), ~250 W peak under inference load.
pub fn tesla_v100() -> DeviceSpec {
    DeviceSpec {
        name: "Tesla V100-PCIE-16GB".to_string(),
        kind: DeviceKind::Gpu,
        freq_table: FrequencyTable::uniform(435.0, 1350.0, 15.0).expect("static table is valid"),
        power_law: PowerLaw {
            idle_watts: 50.0,
            gain_w_per_mhz: 0.1475,
            util_floor: 0.35,
            quad_w_per_mhz2: 5.0e-6,
            quad_ref_mhz: 800.0,
        },
        // HBM2 low-clock state (877 → 810 MHz class): ~12% dynamic power
        // saved, ~20% slower memory-bound inference.
        mem_throttle: Some(MemThrottle {
            power_scale: 0.88,
            latency_penalty: 1.2,
        }),
        // Disabled for paper reproduction: at the evaluated caps the V100s
        // stay far below their 83 °C throttle point. Enable with
        // `thermal::v100_thermal()` for robustness studies.
        thermal: None,
    }
}

/// NVIDIA A100-SXM4-40GB (Ampere, 2020): core clock 210–1410 MHz in
/// 15 MHz steps (base 1065, boost 1410), HBM2e pinned, ~400 W TDP under
/// inference load. Parameters follow the same calibration recipe as the
/// V100 preset — the linear gain carries most of the controllable range,
/// the quadratic term bends the curve near the boost clock — so
/// mixed-generation fleets see a realistically *steeper* W/MHz knob on
/// newer silicon.
pub fn a100() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA A100-SXM4-40GB".to_string(),
        kind: DeviceKind::Gpu,
        freq_table: FrequencyTable::uniform(210.0, 1410.0, 15.0).expect("static table is valid"),
        power_law: PowerLaw {
            idle_watts: 55.0,
            gain_w_per_mhz: 0.24,
            util_floor: 0.35,
            quad_w_per_mhz2: 6.0e-6,
            quad_ref_mhz: 900.0,
        },
        // HBM2e low-clock state: slightly better power trade than the
        // V100's HBM2, similar latency penalty for memory-bound batches.
        mem_throttle: Some(MemThrottle {
            power_scale: 0.87,
            latency_penalty: 1.18,
        }),
        thermal: None,
    }
}

/// NVIDIA H100 (Hopper, 2022, SXM): core clock 210–1980 MHz in 15 MHz
/// steps, HBM3 pinned, ~700 W TDP. The widest frequency range and the
/// largest controllable power slice of the three generations — a fleet
/// mixing H100 servers with V100 servers gives the hierarchical
/// allocator strongly asymmetric demand ceilings to divide against.
pub fn h100() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA H100-SXM5-80GB".to_string(),
        kind: DeviceKind::Gpu,
        freq_table: FrequencyTable::uniform(210.0, 1980.0, 15.0).expect("static table is valid"),
        power_law: PowerLaw {
            idle_watts: 70.0,
            gain_w_per_mhz: 0.31,
            util_floor: 0.35,
            quad_w_per_mhz2: 4.0e-6,
            quad_ref_mhz: 1000.0,
        },
        mem_throttle: Some(MemThrottle {
            power_scale: 0.86,
            latency_penalty: 1.15,
        }),
        thermal: None,
    }
}

/// NVIDIA GeForce RTX 3090 (the motivation experiment's GPU, §3.2):
/// core clock 210–2100 MHz in 15 MHz steps, ~350 W peak.
pub fn rtx_3090() -> DeviceSpec {
    DeviceSpec {
        name: "GeForce RTX 3090".to_string(),
        kind: DeviceKind::Gpu,
        freq_table: FrequencyTable::uniform(210.0, 2100.0, 15.0).expect("static table is valid"),
        power_law: PowerLaw {
            idle_watts: 35.0,
            gain_w_per_mhz: 0.145,
            util_floor: 0.30,
            quad_w_per_mhz2: 3.0e-6,
            quad_ref_mhz: 1200.0,
        },
        mem_throttle: Some(MemThrottle {
            power_scale: 0.85,
            latency_penalty: 1.25,
        }),
        thermal: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for spec in [xeon_gold_5215(), tesla_v100(), a100(), h100(), rtx_3090()] {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn a100_range() {
        let gpu = a100();
        assert_eq!(gpu.freq_table.min(), 210.0);
        assert_eq!(gpu.freq_table.max(), 1410.0);
        // Snippet-§2 base and boost clocks are reachable table levels.
        for f in [1065.0, 1410.0] {
            assert_eq!(gpu.freq_table.quantize(f), f);
        }
        let peak = gpu.peak_watts();
        assert!((370.0..420.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn h100_range() {
        let gpu = h100();
        assert_eq!(gpu.freq_table.min(), 210.0);
        assert_eq!(gpu.freq_table.max(), 1980.0);
        let peak = gpu.peak_watts();
        assert!((650.0..730.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn generations_order_by_peak_power() {
        // V100 (~250 W) < A100 (~400 W) < H100 (~700 W): the fleet's
        // mixed-generation servers must present genuinely different
        // demand ceilings to the hierarchical allocator.
        let v = tesla_v100().peak_watts();
        let a = a100().peak_watts();
        let h = h100().peak_watts();
        assert!(v < a && a < h, "V100 {v}, A100 {a}, H100 {h}");
    }

    #[test]
    fn newer_generations_widen_the_controllable_range() {
        // The controllable slice (peak − min busy) grows per generation,
        // so capping authority per server grows too.
        for (older, newer) in [(tesla_v100(), a100()), (a100(), h100())] {
            let o = older.peak_watts() - older.min_busy_watts();
            let n = newer.peak_watts() - newer.min_busy_watts();
            assert!(
                n > o,
                "{} range {o} vs {} range {n}",
                older.name,
                newer.name
            );
        }
    }

    #[test]
    fn xeon_range() {
        let cpu = xeon_gold_5215();
        assert_eq!(cpu.freq_table.min(), 1000.0);
        assert_eq!(cpu.freq_table.max(), 2400.0);
        let peak = cpu.peak_watts();
        assert!((150.0..190.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn v100_range() {
        let gpu = tesla_v100();
        assert_eq!(gpu.freq_table.min(), 435.0);
        assert_eq!(gpu.freq_table.max(), 1350.0);
        let peak = gpu.peak_watts();
        assert!((230.0..270.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn paper_server_power_envelope() {
        // Platform 300 W + Xeon + 3× V100 must bracket the paper's
        // 800–1200 W set-point sweep.
        let platform = 300.0;
        let cpu = xeon_gold_5215();
        let gpu = tesla_v100();
        let max = platform + cpu.peak_watts() + 3.0 * gpu.peak_watts();
        let min = platform + cpu.min_busy_watts() + 3.0 * gpu.min_busy_watts();
        assert!(max > 1200.0, "max {max} must exceed 1200 W");
        assert!(min < 800.0, "min {min} must be below 800 W");
    }

    #[test]
    fn rtx3090_covers_motivation_frequencies() {
        // §3.2 uses 495, 660 and 810 MHz on the RTX 3090.
        let gpu = rtx_3090();
        for f in [495.0, 660.0, 810.0] {
            assert_eq!(gpu.freq_table.quantize(f), f);
        }
    }

    #[test]
    fn gpu_dominates_controllable_range() {
        // The premise of the paper: CPU DVFS alone cannot cap a GPU server.
        let cpu = xeon_gold_5215();
        let gpu = tesla_v100();
        let cpu_range = cpu.peak_watts() - cpu.min_busy_watts();
        let gpu_range = 3.0 * (gpu.peak_watts() - gpu.min_busy_watts());
        assert!(
            gpu_range > 4.0 * cpu_range,
            "GPU range {gpu_range} vs CPU {cpu_range}"
        );
    }
}
