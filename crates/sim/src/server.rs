//! The assembled simulated server: devices + platform power + meter.
//!
//! One [`Server`] instance stands in for the paper's hardware testbed. The
//! control loop interacts with it exactly as it would with the real
//! machine:
//!
//! 1. set per-device target frequencies (quantized to the device's clock
//!    table, like `cpupower frequency-set` / `nvidia-smi -ac`),
//! 2. advance wall-clock time one second at a time, supplying each
//!    device's utilization for that second (produced by the workload
//!    simulator),
//! 3. read the power meter's per-control-period average.
//!
//! All stochastic elements (sensor noise, platform drift phase) come from
//! a single seeded RNG, so traces are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::{DeviceSpec, DeviceState};
use crate::meter::{MeterFault, PowerMeter};
use crate::thermal::ThermalState;
use crate::{Result, SimError};

/// Injected per-device actuator fault — failures of the *command* path
/// (`nvidia-smi -ac` / `cpupower frequency-set`), as opposed to the
/// telemetry faults in [`MeterFault`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActuatorFault {
    /// The clock is frozen at its current applied value: commands are
    /// accepted (the target is recorded) but never take effect.
    StuckClock,
    /// The driver rejects set-clock commands outright; the applied clock
    /// keeps its last value. Behaviorally identical to [`StuckClock`]
    /// from the plant's perspective, kept distinct for reporting.
    ///
    /// [`StuckClock`]: ActuatorFault::StuckClock
    RejectCommands,
    /// Only a coarse clock grid is honored (degraded driver/firmware):
    /// targets quantize to multiples of `step_mhz` instead of the
    /// device's native table, clamped to the table's range.
    CoarseQuantize {
        /// Coarse quantization step (MHz); must be positive.
        step_mhz: f64,
    },
    /// The device has fallen off the bus: it draws no power, performs no
    /// work, and ignores commands. Clearing the fault models
    /// re-admission — the device re-enters at its minimum clock with
    /// throttle states reset, like a fresh hot-plug.
    Ejected,
}

/// Builder for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    seed: u64,
    devices: Vec<DeviceSpec>,
    platform_watts: f64,
    platform_drift_watts: f64,
    meter_noise_std: f64,
}

impl ServerBuilder {
    /// Starts a builder with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        ServerBuilder {
            seed,
            devices: Vec::new(),
            platform_watts: 300.0,
            platform_drift_watts: 3.0,
            meter_noise_std: 4.0,
        }
    }

    /// Adds a device (order defines device indices).
    #[must_use]
    pub fn add_device(mut self, spec: DeviceSpec) -> Self {
        self.devices.push(spec);
        self
    }

    /// Sets the constant platform power (fans pinned, RAM, PSU losses).
    #[must_use]
    pub fn platform_watts(mut self, watts: f64) -> Self {
        self.platform_watts = watts;
        self
    }

    /// Sets the amplitude of the slow sinusoidal platform drift.
    #[must_use]
    pub fn platform_drift_watts(mut self, watts: f64) -> Self {
        self.platform_drift_watts = watts;
        self
    }

    /// Sets the meter's Gaussian noise standard deviation (W).
    #[must_use]
    pub fn meter_noise_std(mut self, std: f64) -> Self {
        self.meter_noise_std = std;
        self
    }

    /// Builds the server, validating every device.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] if no devices were added or any spec is
    /// invalid.
    pub fn build(self) -> Result<Server> {
        if self.devices.is_empty() {
            return Err(SimError::BadConfig("server needs >= 1 device"));
        }
        if self.platform_watts < 0.0 || self.platform_drift_watts < 0.0 {
            return Err(SimError::BadConfig("platform power must be non-negative"));
        }
        for d in &self.devices {
            d.validate()?;
        }
        let states = self
            .devices
            .iter()
            .map(|d| DeviceState {
                applied_mhz: d.freq_table.min(),
                target_mhz: d.freq_table.min(),
                mem_throttled: false,
            })
            .collect();
        let meter = PowerMeter::new(self.meter_noise_std, 1024)?;
        let thermal_states = self
            .devices
            .iter()
            .map(|d| d.thermal.as_ref().map(ThermalState::new))
            .collect();
        // Device kinds and frequency bounds are immutable after build, so
        // the index/bound lookups the control loop hits every period are
        // computed once here and served as slices.
        let classify = |kind: crate::device::DeviceKind| -> Vec<usize> {
            self.devices
                .iter()
                .enumerate()
                .filter(|(_, d)| d.kind == kind)
                .map(|(i, _)| i)
                .collect()
        };
        let gpu_idx = classify(crate::device::DeviceKind::Gpu);
        let cpu_idx = classify(crate::device::DeviceKind::Cpu);
        let f_min = self.devices.iter().map(|d| d.freq_table.min()).collect();
        let f_max = self.devices.iter().map(|d| d.freq_table.max()).collect();
        let power_scratch = vec![0.0; self.devices.len()];
        let actuator_faults = vec![None; self.devices.len()];
        Ok(Server {
            devices: self.devices,
            states,
            thermal_states,
            platform_watts: self.platform_watts,
            platform_drift_watts: self.platform_drift_watts,
            meter,
            rng: StdRng::seed_from_u64(self.seed),
            elapsed_seconds: 0u64,
            gpu_idx,
            cpu_idx,
            f_min,
            f_max,
            power_scratch,
            actuator_faults,
            psu_limit: None,
        })
    }
}

/// The simulated server.
///
/// `Clone` snapshots the full state (device states, thermal states, meter
/// history, RNG position) so a cloned server replays the exact same
/// stochastic trajectory — the sweep engine relies on this to share one
/// identified testbed across many experiment cells.
#[derive(Debug, Clone)]
pub struct Server {
    devices: Vec<DeviceSpec>,
    states: Vec<DeviceState>,
    thermal_states: Vec<Option<ThermalState>>,
    platform_watts: f64,
    platform_drift_watts: f64,
    meter: PowerMeter,
    rng: StdRng,
    elapsed_seconds: u64,
    /// Indices of GPU devices, cached at build (device set is immutable).
    gpu_idx: Vec<usize>,
    /// Indices of CPU devices, cached at build.
    cpu_idx: Vec<usize>,
    /// Per-device minimum frequencies, cached at build.
    f_min: Vec<f64>,
    /// Per-device maximum frequencies, cached at build.
    f_max: Vec<f64>,
    /// Per-device power buffer reused by [`Server::tick_second`] so the
    /// per-second loop never allocates.
    power_scratch: Vec<f64>,
    /// Per-device injected actuator faults (`None` = healthy).
    actuator_faults: Vec<Option<ActuatorFault>>,
    /// BMC-advertised PSU power limit (W), if a power-delivery fault has
    /// derated the supply. Purely a telemetry signal: ground-truth power
    /// is unchanged, but a supervisor should shrink the feasible budget
    /// to stay under it.
    psu_limit: Option<f64>,
}

/// Period of the slow platform drift (seconds) — several control periods
/// long so it reads as unmodeled low-frequency disturbance, not noise.
const DRIFT_PERIOD_S: f64 = 240.0;

/// Electrical power of one device at effective frequency `f_eff`,
/// honoring an engaged memory-throttle state (which scales the
/// clock-proportional power only — leakage and the quadratic V/F term are
/// core-rail effects and stay).
fn device_power_at(spec: &DeviceSpec, state: &DeviceState, f_eff: f64, util: f64) -> f64 {
    let base = spec.power_law.power(f_eff, util);
    match (&spec.mem_throttle, state.mem_throttled) {
        (Some(mt), true) => {
            let dynamic = base - spec.power_law.idle_watts;
            spec.power_law.idle_watts + dynamic * mt.power_scale
        }
        _ => base,
    }
}

/// The clock the device actually runs: the commanded (quantized) clock,
/// clamped to the thermal P-state while thermal throttling is active.
fn effective_mhz(spec: &DeviceSpec, state: &DeviceState, thermal: &Option<ThermalState>) -> f64 {
    match (spec.thermal.as_ref(), thermal) {
        (Some(th), Some(st)) if st.throttling => state.applied_mhz.min(th.throttle_clock_mhz),
        _ => state.applied_mhz,
    }
}

impl Server {
    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device specification by index.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn device(&self, idx: usize) -> Result<&DeviceSpec> {
        self.devices.get(idx).ok_or(SimError::NoSuchDevice(idx))
    }

    /// All device specs in index order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Currently applied (quantized) frequency of a device.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn applied_frequency(&self, idx: usize) -> Result<f64> {
        self.states
            .get(idx)
            .map(|s| s.applied_mhz)
            .ok_or(SimError::NoSuchDevice(idx))
    }

    /// All applied frequencies in index order.
    pub fn applied_frequencies(&self) -> Vec<f64> {
        self.states.iter().map(|s| s.applied_mhz).collect()
    }

    /// Writes all applied frequencies into `out` (resized to the device
    /// count). Allocation-free variant of [`Server::applied_frequencies`]
    /// for the per-second control loop.
    pub fn applied_frequencies_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.states.iter().map(|s| s.applied_mhz));
    }

    /// Sets a device's target frequency; returns the applied (quantized)
    /// value. Mirrors `nvidia-smi -ac` / `cpupower frequency-set`.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn set_target_frequency(&mut self, idx: usize, target_mhz: f64) -> Result<f64> {
        let spec = self.devices.get(idx).ok_or(SimError::NoSuchDevice(idx))?;
        let applied = match self.actuator_faults[idx] {
            // Command path dead: the target is recorded (the tool "ran")
            // but the applied clock does not move.
            Some(ActuatorFault::StuckClock)
            | Some(ActuatorFault::RejectCommands)
            | Some(ActuatorFault::Ejected) => self.states[idx].applied_mhz,
            Some(ActuatorFault::CoarseQuantize { step_mhz }) => {
                let coarse = (target_mhz / step_mhz).round() * step_mhz;
                coarse.clamp(spec.freq_table.min(), spec.freq_table.max())
            }
            None => spec.freq_table.quantize(target_mhz),
        };
        let state = &mut self.states[idx];
        state.target_mhz = target_mhz;
        state.applied_mhz = applied;
        Ok(applied)
    }

    /// Sets all device targets at once; returns applied values.
    ///
    /// # Errors
    /// [`SimError::WrongArity`] if the length differs from the device count.
    pub fn set_all_frequencies(&mut self, targets_mhz: &[f64]) -> Result<Vec<f64>> {
        if targets_mhz.len() != self.devices.len() {
            return Err(SimError::WrongArity {
                expected: self.devices.len(),
                got: targets_mhz.len(),
            });
        }
        let mut applied = Vec::with_capacity(targets_mhz.len());
        for (i, &t) in targets_mhz.iter().enumerate() {
            applied.push(self.set_target_frequency(i, t)?);
        }
        Ok(applied)
    }

    /// Engages or releases a device's low-memory-clock state.
    ///
    /// # Errors
    /// * [`SimError::NoSuchDevice`] for an out-of-range index.
    /// * [`SimError::BadConfig`] if the device has no memory-throttle
    ///   state and `engaged` is `true`.
    pub fn set_memory_throttle(&mut self, idx: usize, engaged: bool) -> Result<()> {
        let spec = self.devices.get(idx).ok_or(SimError::NoSuchDevice(idx))?;
        if engaged && spec.mem_throttle.is_none() {
            return Err(SimError::BadConfig("device has no memory-throttle state"));
        }
        self.states[idx].mem_throttled = engaged;
        Ok(())
    }

    /// The clock a device actually runs at this instant (commanded clock
    /// clamped by any active thermal throttle).
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn effective_frequency(&self, idx: usize) -> Result<f64> {
        let spec = self.devices.get(idx).ok_or(SimError::NoSuchDevice(idx))?;
        Ok(effective_mhz(
            spec,
            &self.states[idx],
            &self.thermal_states[idx],
        ))
    }

    /// All effective frequencies in index order.
    pub fn effective_frequencies(&self) -> Vec<f64> {
        (0..self.devices.len())
            .map(|i| effective_mhz(&self.devices[i], &self.states[i], &self.thermal_states[i]))
            .collect()
    }

    /// Writes all effective frequencies into `out` (resized to the device
    /// count). Allocation-free variant of
    /// [`Server::effective_frequencies`] for per-second polling loops.
    pub fn effective_frequencies_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            (0..self.devices.len())
                .map(|i| effective_mhz(&self.devices[i], &self.states[i], &self.thermal_states[i])),
        );
    }

    /// Current die temperature of a device (°C), if it has a thermal model.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn temperature(&self, idx: usize) -> Result<Option<f64>> {
        if idx >= self.devices.len() {
            return Err(SimError::NoSuchDevice(idx));
        }
        Ok(self.thermal_states[idx].as_ref().map(|t| t.temperature_c))
    }

    /// Whether a device is currently thermal-throttling.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn thermal_throttling(&self, idx: usize) -> Result<bool> {
        if idx >= self.devices.len() {
            return Err(SimError::NoSuchDevice(idx));
        }
        Ok(self.thermal_states[idx]
            .as_ref()
            .map(|t| t.throttling)
            .unwrap_or(false))
    }

    /// Whether a device's memory throttle is currently engaged.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn memory_throttled(&self, idx: usize) -> Result<bool> {
        self.states
            .get(idx)
            .map(|s| s.mem_throttled)
            .ok_or(SimError::NoSuchDevice(idx))
    }

    /// Ground-truth instantaneous power at the given per-device
    /// utilizations — **not** what a controller should read (use the meter);
    /// exposed for tests and oracle comparisons.
    ///
    /// # Errors
    /// [`SimError::WrongArity`] on utilization length mismatch.
    pub fn true_power(&self, utils: &[f64]) -> Result<f64> {
        if utils.len() != self.devices.len() {
            return Err(SimError::WrongArity {
                expected: self.devices.len(),
                got: utils.len(),
            });
        }
        let drift = self.platform_drift_watts
            * (2.0 * std::f64::consts::PI * self.elapsed_seconds as f64 / DRIFT_PERIOD_S).sin();
        let device_power: f64 = self
            .devices
            .iter()
            .zip(self.states.iter())
            .zip(utils.iter())
            .zip(self.thermal_states.iter())
            .zip(self.actuator_faults.iter())
            .map(|((((spec, state), &u), th), fault)| {
                if matches!(fault, Some(ActuatorFault::Ejected)) {
                    0.0
                } else {
                    device_power_at(spec, state, effective_mhz(spec, state, th), u)
                }
            })
            .sum();
        Ok(self.platform_watts + drift + device_power)
    }

    /// Per-device power readings at the given utilizations — what
    /// RAPL / `nvidia-smi` would report per package/board. Used by the
    /// split-budget baseline (the paper reads GPU power via `nvidia-smi`
    /// for its baselines); CapGPU itself needs only the server meter.
    ///
    /// # Errors
    /// [`SimError::WrongArity`] on utilization length mismatch.
    pub fn per_device_power(&self, utils: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.per_device_power_into(utils, &mut out)?;
        Ok(out)
    }

    /// Writes per-device power readings into `out` (resized to the device
    /// count). Allocation-free variant of [`Server::per_device_power`] —
    /// this is called every simulated second by [`Server::tick_second`]
    /// and every control period by the runner.
    ///
    /// # Errors
    /// [`SimError::WrongArity`] on utilization length mismatch.
    pub fn per_device_power_into(&self, utils: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if utils.len() != self.devices.len() {
            return Err(SimError::WrongArity {
                expected: self.devices.len(),
                got: utils.len(),
            });
        }
        out.clear();
        out.extend(
            self.devices
                .iter()
                .zip(self.states.iter())
                .zip(utils.iter())
                .zip(self.thermal_states.iter())
                .zip(self.actuator_faults.iter())
                .map(|((((spec, state), &u), th), fault)| {
                    if matches!(fault, Some(ActuatorFault::Ejected)) {
                        0.0
                    } else {
                        device_power_at(spec, state, effective_mhz(spec, state, th), u)
                    }
                }),
        );
        Ok(())
    }

    /// Advances one second of wall-clock time: computes true power at the
    /// given utilizations and records one meter sample. Returns the meter
    /// reading (`None` during a dropout fault).
    ///
    /// # Errors
    /// [`SimError::WrongArity`] on utilization length mismatch.
    pub fn tick_second(&mut self, utils: &[f64]) -> Result<Option<f64>> {
        // Per-device powers feed both the meter total and the thermal
        // step; compute them once into the reusable scratch buffer (this
        // runs every simulated second — keep it allocation-free).
        let mut per_device = std::mem::take(&mut self.power_scratch);
        if let Err(e) = self.per_device_power_into(utils, &mut per_device) {
            self.power_scratch = per_device;
            return Err(e);
        }
        let drift = self.platform_drift_watts
            * (2.0 * std::f64::consts::PI * self.elapsed_seconds as f64 / DRIFT_PERIOD_S).sin();
        let device_power: f64 = per_device.iter().sum();
        let p = self.platform_watts + drift + device_power;
        // Advance each device's thermal state with its dissipated power;
        // throttling decisions take effect from the next second.
        for (i, th) in self.thermal_states.iter_mut().enumerate() {
            if let (Some(spec), Some(state)) = (self.devices[i].thermal.as_ref(), th.as_mut()) {
                state.step(spec, per_device[i]);
            }
        }
        self.power_scratch = per_device;
        self.elapsed_seconds += 1;
        // Standard-normal draw via Box–Muller from two uniform draws (rand
        // 0.8 has no Normal distribution without rand_distr).
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Ok(self.meter.record(p, z))
    }

    /// The power meter.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// Injects (or clears) a meter fault.
    pub fn set_meter_fault(&mut self, fault: Option<MeterFault>) {
        self.meter.set_fault(fault);
    }

    /// Injects (or clears, with `None`) an actuator fault on a device.
    ///
    /// Clearing an [`ActuatorFault::Ejected`] fault models re-admission:
    /// the device re-enters at its minimum clock with memory-throttle and
    /// thermal state reset, as after a hot-plug or driver reload.
    ///
    /// # Errors
    /// * [`SimError::NoSuchDevice`] for an out-of-range index.
    /// * [`SimError::BadConfig`] for a non-positive/non-finite
    ///   [`ActuatorFault::CoarseQuantize`] step.
    pub fn set_actuator_fault(&mut self, idx: usize, fault: Option<ActuatorFault>) -> Result<()> {
        if idx >= self.devices.len() {
            return Err(SimError::NoSuchDevice(idx));
        }
        if let Some(ActuatorFault::CoarseQuantize { step_mhz }) = fault {
            if step_mhz <= 0.0 || !step_mhz.is_finite() {
                return Err(SimError::BadConfig(
                    "coarse-quantize step must be finite and > 0",
                ));
            }
        }
        let was_ejected = matches!(self.actuator_faults[idx], Some(ActuatorFault::Ejected));
        let now_ejected = matches!(fault, Some(ActuatorFault::Ejected));
        if was_ejected && !now_ejected {
            // Re-admission: fresh hot-plug at the floor clock.
            let state = &mut self.states[idx];
            state.applied_mhz = self.f_min[idx];
            state.target_mhz = self.f_min[idx];
            state.mem_throttled = false;
            self.thermal_states[idx] = self.devices[idx].thermal.as_ref().map(ThermalState::new);
        }
        self.actuator_faults[idx] = fault;
        Ok(())
    }

    /// The active actuator fault on a device, if any.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index.
    pub fn actuator_fault(&self, idx: usize) -> Result<Option<ActuatorFault>> {
        self.actuator_faults
            .get(idx)
            .copied()
            .ok_or(SimError::NoSuchDevice(idx))
    }

    /// Whether a device is currently ejected (off the bus). Out-of-range
    /// indices read `false` — this is a hot-path probe, not a validator.
    pub fn is_ejected(&self, idx: usize) -> bool {
        matches!(
            self.actuator_faults.get(idx),
            Some(Some(ActuatorFault::Ejected))
        )
    }

    /// Sets (or clears, with `None`) the BMC-advertised PSU power limit.
    /// This is a telemetry signal only: it does not change ground-truth
    /// power, but supervisors should treat `min(set-point, limit)` as the
    /// feasible budget.
    ///
    /// # Errors
    /// [`SimError::BadConfig`] for a non-positive or non-finite limit.
    pub fn set_psu_limit(&mut self, limit_watts: Option<f64>) -> Result<()> {
        if let Some(w) = limit_watts {
            if w <= 0.0 || !w.is_finite() {
                return Err(SimError::BadConfig("psu limit must be finite and > 0"));
            }
        }
        self.psu_limit = limit_watts;
        Ok(())
    }

    /// The BMC-advertised PSU power limit, if a derating fault is active.
    pub fn psu_limit(&self) -> Option<f64> {
        self.psu_limit
    }

    /// Scales a device's dynamic power gain in place (synthetic plant
    /// drift: aging, fan/VRM degradation, driver power-management
    /// changes). The idle floor and quadratic term are untouched so the
    /// drift is purely a slope change in the frequency-power law.
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for an out-of-range index;
    /// [`SimError::BadConfig`] for a non-positive or non-finite factor.
    pub fn scale_power_gain(&mut self, idx: usize, factor: f64) -> Result<()> {
        if factor <= 0.0 || !factor.is_finite() {
            return Err(SimError::BadConfig(
                "gain drift factor must be finite and > 0",
            ));
        }
        let spec = self
            .devices
            .get_mut(idx)
            .ok_or(SimError::NoSuchDevice(idx))?;
        spec.power_law.gain_w_per_mhz *= factor;
        Ok(())
    }

    /// Seconds of simulated time elapsed.
    pub fn elapsed_seconds(&self) -> u64 {
        self.elapsed_seconds
    }

    /// Indices of all GPU devices (cached at build; the device set is
    /// immutable, so this is a plain slice read, not a scan).
    pub fn gpu_indices(&self) -> &[usize] {
        &self.gpu_idx
    }

    /// Indices of all CPU devices (cached at build).
    pub fn cpu_indices(&self) -> &[usize] {
        &self.cpu_idx
    }

    /// Per-device minimum frequencies (cached at build).
    pub fn f_min(&self) -> &[f64] {
        &self.f_min
    }

    /// Per-device maximum frequencies (cached at build).
    pub fn f_max(&self) -> &[f64] {
        &self.f_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn paper_server(seed: u64) -> Server {
        ServerBuilder::new(seed)
            .add_device(presets::xeon_gold_5215())
            .add_device(presets::tesla_v100())
            .add_device(presets::tesla_v100())
            .add_device(presets::tesla_v100())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_indices() {
        let s = paper_server(1);
        assert_eq!(s.num_devices(), 4);
        assert_eq!(s.cpu_indices(), vec![0]);
        assert_eq!(s.gpu_indices(), vec![1, 2, 3]);
        assert_eq!(s.f_min(), vec![1000.0, 435.0, 435.0, 435.0]);
        assert_eq!(s.f_max(), vec![2400.0, 1350.0, 1350.0, 1350.0]);
    }

    #[test]
    fn frequency_actuation_quantizes() {
        let mut s = paper_server(1);
        // 907 MHz is not on the 15 MHz V100 grid; 900 is.
        let applied = s.set_target_frequency(1, 907.0).unwrap();
        assert_eq!(applied, 900.0);
        assert_eq!(s.applied_frequency(1).unwrap(), 900.0);
        // CPU grid is 100 MHz.
        let applied = s.set_target_frequency(0, 1849.0).unwrap();
        assert_eq!(applied, 1800.0);
    }

    #[test]
    fn set_all_frequencies_roundtrip() {
        let mut s = paper_server(1);
        let applied = s
            .set_all_frequencies(&[2000.0, 1350.0, 435.0, 900.0])
            .unwrap();
        assert_eq!(applied, vec![2000.0, 1350.0, 435.0, 900.0]);
        assert_eq!(s.applied_frequencies(), applied);
        assert!(matches!(
            s.set_all_frequencies(&[1.0]).unwrap_err(),
            SimError::WrongArity {
                expected: 4,
                got: 1
            }
        ));
    }

    #[test]
    fn power_rises_with_frequency_and_util() {
        let mut s = paper_server(1);
        let p_low = s.true_power(&[1.0; 4]).unwrap();
        s.set_all_frequencies(&[2400.0, 1350.0, 1350.0, 1350.0])
            .unwrap();
        let p_high = s.true_power(&[1.0; 4]).unwrap();
        assert!(p_high > p_low + 300.0, "low {p_low} high {p_high}");
        let p_idle = s.true_power(&[0.0; 4]).unwrap();
        assert!(p_idle < p_high);
    }

    #[test]
    fn paper_envelope() {
        let mut s = paper_server(1);
        s.set_all_frequencies(&[2400.0, 1350.0, 1350.0, 1350.0])
            .unwrap();
        let max = s.true_power(&[1.0; 4]).unwrap();
        assert!(max > 1200.0, "max {max}");
        s.set_all_frequencies(&[1000.0, 435.0, 435.0, 435.0])
            .unwrap();
        let min = s.true_power(&[1.0; 4]).unwrap();
        assert!(min < 800.0, "min {min}");
    }

    #[test]
    fn tick_advances_time_and_feeds_meter() {
        let mut s = paper_server(7);
        for _ in 0..4 {
            let r = s.tick_second(&[1.0; 4]).unwrap();
            assert!(r.is_some());
        }
        assert_eq!(s.elapsed_seconds(), 4);
        assert_eq!(s.meter().len(), 4);
        let avg = s.meter().average_last(4).unwrap();
        let truth = s.true_power(&[1.0; 4]).unwrap();
        assert!((avg - truth).abs() < 20.0, "avg {avg} truth {truth}");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut s = paper_server(seed);
            (0..50)
                .map(|_| s.tick_second(&[0.8; 4]).unwrap().unwrap())
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn meter_fault_injection() {
        let mut s = paper_server(1);
        s.tick_second(&[1.0; 4]).unwrap();
        s.set_meter_fault(Some(MeterFault::Dropout));
        assert_eq!(s.tick_second(&[1.0; 4]).unwrap(), None);
        s.set_meter_fault(None);
        assert!(s.tick_second(&[1.0; 4]).unwrap().is_some());
    }

    #[test]
    fn drift_moves_platform_power() {
        let mut s = ServerBuilder::new(1)
            .platform_drift_watts(10.0)
            .meter_noise_std(0.0)
            .add_device(presets::tesla_v100())
            .build()
            .unwrap();
        let p0 = s.true_power(&[1.0]).unwrap();
        for _ in 0..60 {
            s.tick_second(&[1.0]).unwrap();
        }
        let p60 = s.true_power(&[1.0]).unwrap();
        assert!((p0 - p60).abs() > 1.0, "drift not visible: {p0} vs {p60}");
    }

    #[test]
    fn builder_validation() {
        assert!(ServerBuilder::new(1).build().is_err());
        assert!(ServerBuilder::new(1)
            .platform_watts(-1.0)
            .add_device(presets::tesla_v100())
            .build()
            .is_err());
    }

    #[test]
    fn true_power_arity_checked() {
        let s = paper_server(1);
        assert!(matches!(
            s.true_power(&[1.0]).unwrap_err(),
            SimError::WrongArity { .. }
        ));
    }
}

#[cfg(test)]
mod actuator_fault_tests {
    use super::*;
    use crate::presets;

    fn one_gpu() -> Server {
        ServerBuilder::new(1)
            .meter_noise_std(0.0)
            .platform_drift_watts(0.0)
            .add_device(presets::tesla_v100())
            .build()
            .unwrap()
    }

    #[test]
    fn stuck_clock_freezes_applied() {
        let mut s = one_gpu();
        s.set_target_frequency(0, 900.0).unwrap();
        s.set_actuator_fault(0, Some(ActuatorFault::StuckClock))
            .unwrap();
        let applied = s.set_target_frequency(0, 1350.0).unwrap();
        assert_eq!(applied, 900.0);
        assert_eq!(s.applied_frequency(0).unwrap(), 900.0);
        // Clearing restores normal actuation.
        s.set_actuator_fault(0, None).unwrap();
        assert_eq!(s.set_target_frequency(0, 1350.0).unwrap(), 1350.0);
    }

    #[test]
    fn reject_commands_behaves_like_stuck() {
        let mut s = one_gpu();
        s.set_target_frequency(0, 600.0).unwrap();
        s.set_actuator_fault(0, Some(ActuatorFault::RejectCommands))
            .unwrap();
        assert_eq!(s.set_target_frequency(0, 1200.0).unwrap(), 600.0);
    }

    #[test]
    fn coarse_quantize_rounds_to_step() {
        let mut s = one_gpu();
        s.set_actuator_fault(0, Some(ActuatorFault::CoarseQuantize { step_mhz: 250.0 }))
            .unwrap();
        // 900 → 1000 on a 250 MHz grid.
        assert_eq!(s.set_target_frequency(0, 900.0).unwrap(), 1000.0);
        // Clamped to the table's range (V100: 435–1350).
        assert_eq!(s.set_target_frequency(0, 100.0).unwrap(), 435.0);
        assert_eq!(s.set_target_frequency(0, 2000.0).unwrap(), 1350.0);
        assert!(s
            .set_actuator_fault(0, Some(ActuatorFault::CoarseQuantize { step_mhz: 0.0 }))
            .is_err());
    }

    #[test]
    fn ejection_zeroes_power_and_readmission_resets() {
        let mut s = one_gpu();
        s.set_target_frequency(0, 1350.0).unwrap();
        s.set_memory_throttle(0, true).unwrap();
        let p_healthy = s.true_power(&[1.0]).unwrap();
        s.set_actuator_fault(0, Some(ActuatorFault::Ejected))
            .unwrap();
        assert!(s.is_ejected(0));
        // Only the platform floor remains.
        let p_ejected = s.true_power(&[1.0]).unwrap();
        assert!(
            p_ejected < p_healthy - 50.0,
            "ejected {p_ejected} healthy {p_healthy}"
        );
        let per = s.per_device_power(&[1.0]).unwrap();
        assert_eq!(per[0], 0.0);
        // Commands are ignored while off the bus.
        assert_eq!(s.set_target_frequency(0, 900.0).unwrap(), 1350.0);
        // Re-admission: floor clock, throttle cleared.
        s.set_actuator_fault(0, None).unwrap();
        assert!(!s.is_ejected(0));
        assert_eq!(s.applied_frequency(0).unwrap(), 435.0);
        assert!(!s.memory_throttled(0).unwrap());
    }

    #[test]
    fn fault_bookkeeping_and_bounds() {
        let mut s = one_gpu();
        assert_eq!(s.actuator_fault(0).unwrap(), None);
        s.set_actuator_fault(0, Some(ActuatorFault::StuckClock))
            .unwrap();
        assert_eq!(
            s.actuator_fault(0).unwrap(),
            Some(ActuatorFault::StuckClock)
        );
        assert!(s.set_actuator_fault(5, None).is_err());
        assert!(s.actuator_fault(5).is_err());
        assert!(!s.is_ejected(5));
    }

    #[test]
    fn psu_limit_is_telemetry_only() {
        let mut s = one_gpu();
        assert_eq!(s.psu_limit(), None);
        s.set_target_frequency(0, 1350.0).unwrap();
        let p_before = s.true_power(&[1.0]).unwrap();
        s.set_psu_limit(Some(200.0)).unwrap();
        assert_eq!(s.psu_limit(), Some(200.0));
        // Ground truth unchanged: the limit is a BMC signal, not physics.
        assert_eq!(s.true_power(&[1.0]).unwrap(), p_before);
        s.set_psu_limit(None).unwrap();
        assert_eq!(s.psu_limit(), None);
        assert!(s.set_psu_limit(Some(0.0)).is_err());
        assert!(s.set_psu_limit(Some(f64::NAN)).is_err());
    }
}

#[cfg(test)]
mod mem_throttle_tests {
    use super::*;
    use crate::presets;

    #[test]
    fn throttle_cuts_power_and_is_reversible() {
        let mut s = ServerBuilder::new(1)
            .meter_noise_std(0.0)
            .platform_drift_watts(0.0)
            .add_device(presets::tesla_v100())
            .build()
            .unwrap();
        s.set_target_frequency(0, 900.0).unwrap();
        let p_hi = s.true_power(&[1.0]).unwrap();
        s.set_memory_throttle(0, true).unwrap();
        assert!(s.memory_throttled(0).unwrap());
        let p_lo = s.true_power(&[1.0]).unwrap();
        assert!(p_lo < p_hi - 5.0, "throttle saved only {} W", p_hi - p_lo);
        s.set_memory_throttle(0, false).unwrap();
        assert_eq!(s.true_power(&[1.0]).unwrap(), p_hi);
    }

    #[test]
    fn cpu_without_mem_state_rejects_engage() {
        let mut s = ServerBuilder::new(1)
            .add_device(presets::xeon_gold_5215())
            .build()
            .unwrap();
        assert!(s.set_memory_throttle(0, true).is_err());
        // Releasing is always allowed (idempotent).
        assert!(s.set_memory_throttle(0, false).is_ok());
        assert!(s.set_memory_throttle(9, true).is_err());
    }

    #[test]
    fn throttle_savings_scale_with_dynamic_power() {
        let mut s = ServerBuilder::new(1)
            .meter_noise_std(0.0)
            .platform_drift_watts(0.0)
            .add_device(presets::tesla_v100())
            .build()
            .unwrap();
        let savings_at = |s: &mut Server, f: f64| {
            s.set_target_frequency(0, f).unwrap();
            s.set_memory_throttle(0, false).unwrap();
            let hi = s.true_power(&[1.0]).unwrap();
            s.set_memory_throttle(0, true).unwrap();
            hi - s.true_power(&[1.0]).unwrap()
        };
        let low = savings_at(&mut s, 435.0);
        let high = savings_at(&mut s, 1350.0);
        assert!(high > low, "savings must grow with clock: {low} vs {high}");
    }
}

#[cfg(test)]
mod thermal_integration_tests {
    use super::*;
    use crate::presets;
    use crate::thermal;

    fn hot_v100() -> crate::device::DeviceSpec {
        let mut spec = presets::tesla_v100();
        // Tight envelope: throttles at ~150 W dissipation.
        spec.thermal = Some(thermal::ThermalSpec {
            ambient_c: 30.0,
            r_th_k_per_w: 0.35,
            tau_s: 20.0,
            t_throttle_c: 83.0,
            throttle_clock_mhz: 607.5,
            hysteresis_c: 5.0,
        });
        spec
    }

    #[test]
    fn sustained_load_triggers_thermal_throttle() {
        let mut s = ServerBuilder::new(1)
            .meter_noise_std(0.0)
            .platform_drift_watts(0.0)
            .add_device(hot_v100())
            .build()
            .unwrap();
        s.set_target_frequency(0, 1350.0).unwrap();
        let p_before = s.true_power(&[1.0]).unwrap();
        assert!(!s.thermal_throttling(0).unwrap());
        // ~250 W dissipation against a ~150 W envelope: must throttle.
        for _ in 0..200 {
            s.tick_second(&[1.0]).unwrap();
        }
        assert!(s.thermal_throttling(0).unwrap());
        assert_eq!(s.effective_frequency(0).unwrap(), 607.5);
        // Commanded clock is unchanged — the clamp is the device's doing.
        assert_eq!(s.applied_frequency(0).unwrap(), 1350.0);
        let p_after = s.true_power(&[1.0]).unwrap();
        assert!(p_after < p_before - 60.0, "{p_before} -> {p_after}");
        assert!(s.temperature(0).unwrap().unwrap() > 75.0);
    }

    #[test]
    fn moderate_load_never_throttles() {
        let mut s = ServerBuilder::new(1)
            .meter_noise_std(0.0)
            .add_device(hot_v100())
            .build()
            .unwrap();
        s.set_target_frequency(0, 600.0).unwrap(); // ~115 W < envelope
        for _ in 0..400 {
            s.tick_second(&[1.0]).unwrap();
        }
        assert!(!s.thermal_throttling(0).unwrap());
        assert_eq!(s.effective_frequency(0).unwrap(), 600.0);
    }

    #[test]
    fn devices_without_thermal_model_report_none() {
        let s = ServerBuilder::new(1)
            .add_device(presets::tesla_v100())
            .build()
            .unwrap();
        assert_eq!(s.temperature(0).unwrap(), None);
        assert!(!s.thermal_throttling(0).unwrap());
        assert!(s.temperature(5).is_err());
    }
}
