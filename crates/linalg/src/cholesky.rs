//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The condensed MPC Hessian `H = SᵀQS + R` (paper Eq. 9) is symmetric
//! positive definite by construction, so the QP solvers in `capgpu-optim`
//! factor it once per active set with Cholesky rather than LU.

use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper triangle is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (the MPC Hessian is symmetric by
    /// construction).
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is not
    ///   strictly positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky requires a square matrix",
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    // Triangular index loops are the clearest idiom here; iterator forms
    // obscure the k < i / k > i structure.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky solve rhs length",
            });
        }
        // Forward: L·y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let mut acc = y[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Log-determinant of `A` (useful for conditioning diagnostics).
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }
}

/// One-shot convenience: solve an SPD system `A·x = b`.
///
/// # Errors
/// See [`Cholesky::new`] and [`Cholesky::solve`].
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Cholesky::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::approx_eq;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 1.0], &[0.5, 1.0, 2.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.approx_eq(&a, 1e-12));
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let x_true = vec![1.0, -1.0, 2.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_negative_definite() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert_eq!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        assert_eq!(
            Cholesky::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 8.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rhs_length_checked() {
        let ch = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }
}
