//! Free functions on `&[f64]` vectors.
//!
//! CapGPU passes plain slices around (frequency vectors, power residuals),
//! so vector helpers are free functions instead of a wrapper type.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (maximum absolute entry); 0 for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Elementwise `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Elementwise `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// `a + s·b` (axpy).
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + s * y).collect()
}

/// Scales every entry by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Clamps each entry of `x` into `[lo[i], hi[i]]`.
///
/// # Panics
/// Panics if lengths differ.
pub fn clamp_box(x: &[f64], lo: &[f64], hi: &[f64]) -> Vec<f64> {
    assert!(
        x.len() == lo.len() && x.len() == hi.len(),
        "clamp_box length mismatch"
    );
    x.iter()
        .zip(lo.iter().zip(hi.iter()))
        .map(|(&v, (&l, &h))| v.clamp(l, h))
        .collect()
}

/// True when every `|a[i] - b[i]| <= tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0], &[2.0]), vec![3.0]);
        assert_eq!(sub(&[1.0], &[2.0]), vec![-1.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[3.0, 4.0]), vec![7.0, 9.0]);
        assert_eq!(scale(&[2.0, -2.0], 0.5), vec![1.0, -1.0]);
    }

    #[test]
    fn clamping() {
        let x = clamp_box(&[-1.0, 0.5, 9.0], &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn approx() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
