//! Real polynomials and complex root finding.
//!
//! Characteristic polynomials show up in the closed-loop pole analysis
//! (paper §4.4): for the scalar power loop the pole locus under gain
//! perturbation is the root locus of a low-degree polynomial in `z`. The
//! root finder is the Durand–Kerner (Weierstrass) simultaneous iteration,
//! which is simple, derivative-free, and plenty accurate for the degrees
//! (< 20) that occur here. Roots are cross-validated against the
//! eigenvalue solver via companion matrices in the test suite.

use crate::eig::Complex;
use crate::{LinalgError, Matrix, Result};

/// A real polynomial `c[0] + c[1]·x + … + c[n]·xⁿ` (ascending coefficients).
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients, trimming trailing
    /// zeros (but always keeping at least the constant term).
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut c = coeffs;
        while c.len() > 1 && c.last() == Some(&0.0) {
            c.pop();
        }
        if c.is_empty() {
            c.push(0.0);
        }
        Polynomial { coeffs: c }
    }

    /// Ascending coefficient slice.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates at a real point (Horner's scheme).
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point (Horner's scheme).
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc.mul(&z).add(&Complex::real(c)))
    }

    /// Derivative polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        let d = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| i as f64 * c)
            .collect();
        Polynomial::new(d)
    }

    /// Builds the companion matrix of a monic-normalized polynomial.
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] for degree-0 polynomials.
    /// * [`LinalgError::Singular`] if the leading coefficient is zero after
    ///   trimming (cannot happen by construction, kept for robustness).
    pub fn companion(&self) -> Result<Matrix> {
        let n = self.degree();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let lead = *self.coeffs.last().expect("non-empty");
        if lead == 0.0 {
            return Err(LinalgError::Singular);
        }
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(0, i)] = -self.coeffs[n - 1 - i] / lead;
        }
        for i in 1..n {
            m[(i, i - 1)] = 1.0;
        }
        Ok(m)
    }

    /// Finds all complex roots via Durand–Kerner iteration.
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] for degree-0 polynomials.
    /// * [`LinalgError::NoConvergence`] if the iteration fails to reach the
    ///   residual tolerance within 500 sweeps.
    #[allow(clippy::needless_range_loop)]
    pub fn roots(&self) -> Result<Vec<Complex>> {
        let n = self.degree();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let lead = *self.coeffs.last().expect("non-empty");
        // Monic coefficients.
        let monic: Vec<f64> = self.coeffs.iter().map(|c| c / lead).collect();
        let p = Polynomial {
            coeffs: monic.clone(),
        };

        // Initial guesses on a circle of radius derived from coefficient
        // magnitudes (Cauchy bound), with an irrational angle offset so no
        // guess starts on a symmetry axis.
        let bound = 1.0 + monic[..n].iter().map(|c| c.abs()).fold(0.0_f64, f64::max);
        let radius = bound.clamp(1e-3, 1e6);
        let mut roots: Vec<Complex> = (0..n)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64 + 0.4;
                Complex::new(radius * theta.cos(), radius * theta.sin())
            })
            .collect();

        const MAX_SWEEPS: usize = 500;
        const TOL: f64 = 1e-12;
        for _sweep in 0..MAX_SWEEPS {
            let mut max_step = 0.0_f64;
            for i in 0..n {
                let num = p.eval_complex(roots[i]);
                let mut den = Complex::real(1.0);
                for j in 0..n {
                    if j != i {
                        den = den.mul(&roots[i].sub(&roots[j]));
                    }
                }
                if den.abs() < 1e-300 {
                    // Two iterates collided; nudge apart.
                    roots[i] = roots[i].add(&Complex::new(1e-6, 1e-6));
                    continue;
                }
                let delta = num.div(&den);
                roots[i] = roots[i].sub(&delta);
                max_step = max_step.max(delta.abs());
            }
            if max_step < TOL {
                // Snap conjugate pairs / real roots for a real polynomial.
                for r in roots.iter_mut() {
                    if r.im.abs() < 1e-9 * (1.0 + r.re.abs()) {
                        r.im = 0.0;
                    }
                }
                return Ok(roots);
            }
        }
        Err(LinalgError::NoConvergence {
            iterations: MAX_SWEEPS,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::eigenvalues;

    fn contains_root(roots: &[Complex], target: Complex, tol: f64) -> bool {
        roots.iter().any(|r| r.approx_eq(&target, tol))
    }

    #[test]
    fn construction_trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.degree(), 0);
    }

    #[test]
    fn horner_evaluation() {
        // p(x) = 1 - 2x + 3x²
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(2.0), 9.0);
        let pz = p.eval_complex(Complex::new(0.0, 1.0));
        // 1 - 2i + 3·(i²) = -2 - 2i
        assert!(pz.approx_eq(&Complex::new(-2.0, -2.0), 1e-12));
    }

    #[test]
    fn derivative_rule() {
        let p = Polynomial::new(vec![5.0, 1.0, -2.0, 3.0]);
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[1.0, -4.0, 9.0]);
        assert_eq!(Polynomial::new(vec![7.0]).derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn roots_of_quadratic_real() {
        // (x-1)(x-4) = x² - 5x + 4
        let p = Polynomial::new(vec![4.0, -5.0, 1.0]);
        let roots = p.roots().unwrap();
        assert!(contains_root(&roots, Complex::real(1.0), 1e-8));
        assert!(contains_root(&roots, Complex::real(4.0), 1e-8));
    }

    #[test]
    fn roots_of_quadratic_complex() {
        // x² + 1 → ±i
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let roots = p.roots().unwrap();
        assert!(contains_root(&roots, Complex::new(0.0, 1.0), 1e-8));
        assert!(contains_root(&roots, Complex::new(0.0, -1.0), 1e-8));
    }

    #[test]
    fn roots_of_quintic_match_construction() {
        // (x-1)(x-2)(x-3)(x²+x+1)
        // x²+x+1 roots: -0.5 ± i·√3/2
        let p1 = Polynomial::new(vec![-6.0, 11.0, -6.0, 1.0]); // (x-1)(x-2)(x-3)
        let p2 = Polynomial::new(vec![1.0, 1.0, 1.0]);
        // multiply
        let mut c = vec![0.0; p1.degree() + p2.degree() + 1];
        for (i, a) in p1.coeffs().iter().enumerate() {
            for (j, b) in p2.coeffs().iter().enumerate() {
                c[i + j] += a * b;
            }
        }
        let p = Polynomial::new(c);
        let roots = p.roots().unwrap();
        assert!(contains_root(&roots, Complex::real(1.0), 1e-6));
        assert!(contains_root(&roots, Complex::real(2.0), 1e-6));
        assert!(contains_root(&roots, Complex::real(3.0), 1e-6));
        assert!(contains_root(
            &roots,
            Complex::new(-0.5, 0.75_f64.sqrt()),
            1e-6
        ));
        assert!(contains_root(
            &roots,
            Complex::new(-0.5, -(0.75_f64.sqrt())),
            1e-6
        ));
    }

    #[test]
    fn companion_eigenvalues_equal_roots() {
        let p = Polynomial::new(vec![4.0, -5.0, 1.0]);
        let comp = p.companion().unwrap();
        let eigs = eigenvalues(&comp).unwrap();
        let roots = p.roots().unwrap();
        for e in &eigs {
            assert!(
                roots.iter().any(|r| r.approx_eq(e, 1e-6)),
                "eig {e:?} not among roots {roots:?}"
            );
        }
    }

    #[test]
    fn non_monic_polynomial_roots() {
        // 2x² - 6x + 4 = 2(x-1)(x-2)
        let p = Polynomial::new(vec![4.0, -6.0, 2.0]);
        let roots = p.roots().unwrap();
        assert!(contains_root(&roots, Complex::real(1.0), 1e-8));
        assert!(contains_root(&roots, Complex::real(2.0), 1e-8));
    }

    #[test]
    fn degree_zero_errors() {
        let p = Polynomial::new(vec![3.0]);
        assert!(p.roots().is_err());
        assert!(p.companion().is_err());
    }

    #[test]
    fn repeated_roots_converge() {
        // (x-2)² = x² -4x +4 — Durand-Kerner converges linearly here but
        // still lands within loose tolerance.
        let p = Polynomial::new(vec![4.0, -4.0, 1.0]);
        let roots = p.roots().unwrap();
        for r in &roots {
            assert!((r.re - 2.0).abs() < 1e-4 && r.im.abs() < 1e-4, "{r:?}");
        }
    }
}
