//! LU decomposition with partial pivoting.
//!
//! Used for general square solves (closed-loop gain computation, matrix
//! inversion in the stability analysis) where the system is not known to be
//! symmetric positive definite.

use crate::{LinalgError, Matrix, Result};

/// LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// `L` has an implicit unit diagonal and is stored, together with `U`, in a
/// single packed matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (strictly lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of A.
    perm: Vec<usize>,
    /// Sign of the permutation, used by `det`.
    perm_sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "LU requires a square matrix",
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = lu.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= PIVOT_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let m = lu[(r, k)] / pivot;
                lu[(r, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let v = lu[(k, c)];
                    lu[(r, c)] -= m * v;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "LU solve rhs length",
            });
        }
        // Apply permutation, then forward substitution (unit lower).
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for r in 1..n {
            let mut acc = y[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * y[c];
            }
            y[r] = acc;
        }
        // Backward substitution (upper).
        for r in (0..n).rev() {
            let mut acc = y[r];
            for c in (r + 1)..n {
                acc -= self.lu[(r, c)] * y[c];
            }
            y[r] = acc / self.lu[(r, r)];
        }
        Ok(y)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `B` has a wrong row count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "LU solve_matrix rhs rows",
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = self.solve(&b.col_vec(c))?;
            for r in 0..n {
                x[(r, c)] = col[r];
            }
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    /// Propagates solve errors (cannot occur after successful factorization).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// One-shot convenience: solve `A·x = b` via LU.
///
/// # Errors
/// See [`Lu::new`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::approx_eq;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        // 2x + y = 3, x + 3y = 5 -> x = 0.8, y = 1.4
        assert!(approx_eq(&x, &[0.8, 1.4], 1e-12));
    }

    #[test]
    fn solve_recovers_random_rhs() {
        let a = Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(approx_eq(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(Lu::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::new(&a).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(Lu::new(&a).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn determinant_of_permuted_identity() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((Lu::new(&a).unwrap().det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 3.0]]);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]);
        let x = Lu::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(x.approx_eq(&Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]), 1e-12));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(2);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
