//! High-level least-squares fitting with goodness-of-fit metrics.
//!
//! This is the regression entry point used by system identification
//! (paper §4.2: "solve for **A** via least square regression", Fig. 2a
//! reports R² = 0.96) and by the latency-model fit (Fig. 2b, R² ≈ 0.91).

use crate::{qr::Qr, stats, LinalgError, Matrix, Result};

/// Result of a least-squares fit.
#[derive(Debug, Clone)]
pub struct LstsqFit {
    /// Fitted coefficient vector (one per design-matrix column).
    pub coefficients: Vec<f64>,
    /// Coefficient of determination R² against the observed targets.
    pub r_squared: f64,
    /// Residual sum of squares.
    pub rss: f64,
    /// Number of observations used.
    pub n_obs: usize,
}

impl LstsqFit {
    /// Predicts the target for a single design row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the coefficient count.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.coefficients.len(), "predict row length");
        row.iter()
            .zip(self.coefficients.iter())
            .map(|(x, c)| x * c)
            .sum()
    }

    /// Root-mean-square error of the fit.
    pub fn rmse(&self) -> f64 {
        (self.rss / self.n_obs as f64).sqrt()
    }
}

/// Solves `min ‖X·β − y‖₂` via Householder QR and reports fit quality.
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] if `y.len() != X.rows()`.
/// * [`LinalgError::Singular`] if `X` is rank deficient.
/// * QR factorization errors for degenerate shapes.
pub fn solve(x: &Matrix, y: &[f64]) -> Result<LstsqFit> {
    if y.len() != x.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "lstsq target length",
        });
    }
    let qr = Qr::new(x)?;
    let coefficients = qr.solve_lstsq(y)?;
    let rss = qr.residual_sq(y)?;
    let r_squared = stats::r_squared_from_rss(y, rss);
    Ok(LstsqFit {
        coefficients,
        r_squared,
        rss,
        n_obs: y.len(),
    })
}

/// Ridge-regularized least squares: `min ‖X·β − y‖² + λ‖β‖²`.
///
/// Used when excitation data is nearly collinear (e.g. a stuck actuator
/// during system identification). Solved via the augmented QR
/// `[X; √λ·I]·β = [y; 0]`, which stays well conditioned for any λ > 0.
///
/// # Errors
/// Same as [`solve`]; additionally λ must be non-negative (checked by
/// `debug_assert`).
pub fn solve_ridge(x: &Matrix, y: &[f64], lambda: f64) -> Result<LstsqFit> {
    debug_assert!(lambda >= 0.0, "ridge penalty must be non-negative");
    if lambda == 0.0 {
        return solve(x, y);
    }
    if y.len() != x.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "ridge target length",
        });
    }
    let n = x.cols();
    let aug = x.vstack(&Matrix::from_diag(&vec![lambda.sqrt(); n]));
    let mut y_aug = y.to_vec();
    y_aug.extend(std::iter::repeat_n(0.0, n));
    let qr = Qr::new(&aug)?;
    let coefficients = qr.solve_lstsq(&y_aug)?;
    // Report RSS/R² against the *original* data, not the augmented system.
    let pred = x.matvec(&coefficients);
    let rss: f64 = y
        .iter()
        .zip(pred.iter())
        .map(|(yi, pi)| (yi - pi) * (yi - pi))
        .sum();
    Ok(LstsqFit {
        coefficients,
        r_squared: stats::r_squared_from_rss(y, rss),
        rss,
        n_obs: y.len(),
    })
}

/// Fits the power-law latency model `e = e_min · (f_max / f)^γ` (paper Eq. 8)
/// by linear regression in log space:
/// `ln e = ln e_min + γ · ln(f_max / f)`.
///
/// Returns `(e_min, gamma, r_squared)` where R² is computed in the original
/// (non-log) latency domain, matching how the paper reports model accuracy.
///
/// # Errors
/// * [`LinalgError::Empty`] for fewer than 2 samples.
/// * Propagates regression errors (e.g. all frequencies identical).
pub fn fit_latency_power_law(
    freqs: &[f64],
    latencies: &[f64],
    f_max: f64,
) -> Result<(f64, f64, f64)> {
    if freqs.len() != latencies.len() {
        return Err(LinalgError::DimensionMismatch {
            context: "latency fit input lengths",
        });
    }
    if freqs.len() < 2 {
        return Err(LinalgError::Empty);
    }
    let rows: Vec<Vec<f64>> = freqs.iter().map(|&f| vec![(f_max / f).ln(), 1.0]).collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Matrix::from_rows(&row_refs);
    let y_log: Vec<f64> = latencies.iter().map(|&e| e.ln()).collect();
    let fit = solve(&x, &y_log)?;
    let gamma = fit.coefficients[0];
    let e_min = fit.coefficients[1].exp();
    // R² in the latency domain.
    let pred: Vec<f64> = freqs
        .iter()
        .map(|&f| e_min * (f_max / f).powf(gamma))
        .collect();
    let rss: f64 = latencies
        .iter()
        .zip(pred.iter())
        .map(|(e, p)| (e - p) * (e - p))
        .sum();
    let r2 = stats::r_squared_from_rss(latencies, rss);
    Ok((e_min, gamma, r2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(xs: &[f64]) -> Matrix {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&row_refs)
    }

    #[test]
    fn exact_line_fit_has_unit_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 2.0).collect();
        let fit = solve(&design(&xs), &y).unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-10);
        assert!((fit.coefficients[1] + 2.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!(fit.rmse() < 1e-9);
    }

    #[test]
    fn noisy_fit_reports_sub_unit_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let noise = [0.3, -0.2, 0.25, -0.3, 0.1, -0.15];
        let y: Vec<f64> = xs
            .iter()
            .zip(noise.iter())
            .map(|(&x, &n)| 2.0 * x + 1.0 + n)
            .collect();
        let fit = solve(&design(&xs), &y).unwrap();
        assert!(fit.r_squared > 0.97 && fit.r_squared < 1.0);
        assert!((fit.coefficients[0] - 2.0).abs() < 0.1);
    }

    #[test]
    fn predict_applies_coefficients() {
        let fit = LstsqFit {
            coefficients: vec![2.0, -1.0],
            r_squared: 1.0,
            rss: 0.0,
            n_obs: 3,
        };
        assert_eq!(fit.predict(&[3.0, 1.0]), 5.0);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 * x).collect();
        let plain = solve(&design(&xs), &y).unwrap();
        let ridge = solve_ridge(&design(&xs), &y, 10.0).unwrap();
        assert!(ridge.coefficients[0].abs() < plain.coefficients[0].abs());
        assert!(ridge.r_squared < plain.r_squared);
    }

    #[test]
    fn ridge_zero_equals_plain() {
        let xs = [0.0, 1.0, 2.0];
        let y = vec![1.0, 3.0, 5.0];
        let a = solve(&design(&xs), &y).unwrap();
        let b = solve_ridge(&design(&xs), &y, 0.0).unwrap();
        assert!((a.coefficients[0] - b.coefficients[0]).abs() < 1e-12);
    }

    #[test]
    fn ridge_handles_collinear_design() {
        // Perfectly collinear columns: plain LS fails, ridge succeeds.
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&row_refs);
        let y: Vec<f64> = (0..5).map(|i| 3.0 * i as f64).collect();
        assert!(solve(&x, &y).is_err());
        let fit = solve_ridge(&x, &y, 1e-6).unwrap();
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn latency_power_law_recovers_parameters() {
        // Paper Eq. 8 with e_min = 0.05 s, gamma = 0.91, f_max = 1350 MHz.
        let f_max = 1350.0;
        let freqs: Vec<f64> = (0..12).map(|i| 435.0 + 80.0 * i as f64).collect();
        let lats: Vec<f64> = freqs
            .iter()
            .map(|&f| 0.05 * (f_max / f).powf(0.91))
            .collect();
        let (e_min, gamma, r2) = fit_latency_power_law(&freqs, &lats, f_max).unwrap();
        assert!((e_min - 0.05).abs() < 1e-6);
        assert!((gamma - 0.91).abs() < 1e-6);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn latency_fit_rejects_bad_inputs() {
        assert!(fit_latency_power_law(&[1.0], &[1.0], 2.0).is_err());
        assert!(fit_latency_power_law(&[1.0, 2.0], &[1.0], 2.0).is_err());
    }

    #[test]
    fn target_length_checked() {
        let x = design(&[0.0, 1.0]);
        assert!(solve(&x, &[1.0]).is_err());
        assert!(solve_ridge(&x, &[1.0], 1.0).is_err());
    }
}
