//! Singular values via one-sided Jacobi rotations.
//!
//! System identification solves a least-squares problem whose reliability
//! is governed by the *conditioning* of the excitation design matrix: a
//! sweep that barely moves one device produces a nearly rank-deficient
//! design and garbage gains. The condition number `σ_max/σ_min` is the
//! right diagnostic, and it needs singular values.
//!
//! The one-sided Jacobi method orthogonalizes the columns of `A` by plane
//! rotations; the singular values are the resulting column norms. It is
//! slower than bidiagonalization-based SVD but simple, remarkably
//! accurate for small matrices (every σ to nearly full precision), and
//! entirely adequate for CapGPU's design matrices (≤ a few dozen rows,
//! ≤ 10 columns).

use crate::{LinalgError, Matrix, Result};

/// Convergence threshold on the normalized off-diagonal inner product.
const JACOBI_TOL: f64 = 1e-14;
/// Sweep limit (each sweep rotates every column pair once).
const MAX_SWEEPS: usize = 60;

/// Computes the singular values of an `m × n` matrix with `m ≥ n`,
/// in descending order.
///
/// # Errors
/// * [`LinalgError::Empty`] for an empty matrix.
/// * [`LinalgError::DimensionMismatch`] when `m < n` (transpose first —
///   singular values are transpose-invariant).
/// * [`LinalgError::NoConvergence`] if Jacobi sweeps stall (does not occur
///   for finite inputs at these sizes).
pub fn singular_values(a: &Matrix) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            context: "singular_values requires rows >= cols (transpose first)",
        });
    }
    // Work on a column-major copy: u[j] is column j.
    let mut u: Vec<Vec<f64>> = (0..n).map(|j| a.col_vec(j)).collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for (up, uq) in u[p].iter().zip(&u[q]) {
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                let denom = (alpha * beta).sqrt();
                if denom > 0.0 {
                    off = off.max(gamma.abs() / denom);
                }
                if gamma.abs() <= JACOBI_TOL * denom || denom == 0.0 {
                    continue;
                }
                // Jacobi rotation zeroing the (p, q) inner product.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let (left, right) = u.split_at_mut(q);
                for (up, uq) in left[p].iter_mut().zip(right[0].iter_mut()) {
                    let a = *up;
                    let b = *uq;
                    *up = c * a - s * b;
                    *uq = s * a + c * b;
                }
            }
        }
        if off <= JACOBI_TOL {
            let mut sigmas: Vec<f64> = u
                .iter()
                .map(|col| col.iter().map(|v| v * v).sum::<f64>().sqrt())
                .collect();
            sigmas.sort_by(|a, b| b.partial_cmp(a).expect("finite singular values"));
            return Ok(sigmas);
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: MAX_SWEEPS,
    })
}

/// 2-norm condition number `σ_max / σ_min`; `f64::INFINITY` when the
/// smallest singular value is (numerically) zero.
///
/// # Errors
/// Propagates [`singular_values`] errors.
pub fn condition_number(a: &Matrix) -> Result<f64> {
    let sigmas = singular_values(a)?;
    let s_max = sigmas[0];
    let s_min = *sigmas.last().expect("non-empty");
    if s_min <= f64::EPSILON * s_max * (a.rows().max(a.cols()) as f64) {
        Ok(f64::INFINITY)
    } else {
        Ok(s_max / s_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let s = singular_values(&a).unwrap();
        assert!((s[0] - 3.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_matrix_has_unit_sigmas() {
        let th = 0.8_f64;
        let a = Matrix::from_rows(&[&[th.cos(), -th.sin()], &[th.sin(), th.cos()]]);
        let s = singular_values(&a).unwrap();
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
        assert!((condition_number(&a).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // A = [[3, 0], [4, 5]]: singular values √45 and √5.
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]);
        let s = singular_values(&a).unwrap();
        assert!((s[0] - 45.0_f64.sqrt()).abs() < 1e-10, "{s:?}");
        assert!((s[1] - 5.0_f64.sqrt()).abs() < 1e-10, "{s:?}");
    }

    #[test]
    fn tall_matrix_frobenius_identity() {
        // Σ σᵢ² = ‖A‖_F².
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[-1.0, 0.5]]);
        let s = singular_values(&a).unwrap();
        let sum_sq: f64 = s.iter().map(|v| v * v).sum();
        let fro = a.frobenius_norm();
        assert!((sum_sq - fro * fro).abs() < 1e-9);
        // Largest singular value bounds the matvec gain.
        let y = a.matvec(&[1.0, 0.0]);
        let gain = crate::vector::norm2(&y);
        assert!(gain <= s[0] + 1e-9);
    }

    #[test]
    fn rank_deficient_matrix_is_infinitely_conditioned() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let s = singular_values(&a).unwrap();
        assert!(s[1] < 1e-12, "{s:?}");
        assert!(condition_number(&a).unwrap().is_infinite());
    }

    #[test]
    fn matches_eigenvalues_of_gram_matrix() {
        // σᵢ(A)² are the eigenvalues of AᵀA.
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.3, 1.7, -0.2],
            &[1.1, 0.4, 2.2],
            &[-0.6, 0.9, 0.7],
        ]);
        let s = singular_values(&a).unwrap();
        let mut eigs: Vec<f64> = crate::eig::eigenvalues(&a.gram())
            .unwrap()
            .iter()
            .map(|e| e.re)
            .collect();
        eigs.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (sv, ev) in s.iter().zip(eigs.iter()) {
            assert!((sv * sv - ev).abs() < 1e-8, "σ²={} vs λ={}", sv * sv, ev);
        }
    }

    #[test]
    fn shape_validation() {
        assert!(singular_values(&Matrix::zeros(0, 0)).is_err());
        assert!(singular_values(&Matrix::zeros(2, 3)).is_err());
        // Wide matrices work after transposing.
        let wide = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        let s = singular_values(&wide.transpose()).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn well_conditioned_excitation_vs_stuck_actuator() {
        // The diagnostic this module exists for: a proper one-knob-at-a-
        // time excitation design is well conditioned; a design where one
        // device never moves is (numerically) singular.
        let good_rows: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![1000.0 + 200.0 * i as f64, 495.0, 1.0])
            .chain((0..8).map(|i| vec![1400.0, 435.0 + 130.0 * i as f64, 1.0]))
            .collect();
        let refs: Vec<&[f64]> = good_rows.iter().map(|r| r.as_slice()).collect();
        let good = Matrix::from_rows(&refs);
        let cond_good = condition_number(&good).unwrap();
        assert!(cond_good.is_finite());

        let stuck_rows: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![1000.0 + 100.0 * i as f64, 495.0, 1.0])
            .collect();
        let refs: Vec<&[f64]> = stuck_rows.iter().map(|r| r.as_slice()).collect();
        let stuck = Matrix::from_rows(&refs);
        let cond_stuck = condition_number(&stuck).unwrap();
        assert!(
            cond_stuck > 1e6 * cond_good || cond_stuck.is_infinite(),
            "stuck {cond_stuck} vs good {cond_good}"
        );
    }
}
