//! Row-major dense matrix type and elementwise / product operations.

use crate::{LinalgError, Result};
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major `f64` matrix.
///
/// All CapGPU matrices are small (device counts, MPC horizons), so the
/// representation is a single contiguous `Vec<f64>` without blocking or
/// strides. Indexing is `(row, col)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a single-column matrix from a vector.
    pub fn column(v: &[f64]) -> Self {
        Matrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Creates a single-row matrix from a vector.
    pub fn row(v: &[f64]) -> Self {
        Matrix::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Read-only view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col_vec(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = self.row_slice(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[r] = acc;
        }
        y
    }

    /// Vector–matrix product `xᵀ·A` returning a row vector.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vecmat dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xv = x[r];
            if xv == 0.0 {
                continue;
            }
            for c in 0..self.cols {
                y[c] += xv * self[(r, c)];
            }
        }
        y
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row_slice(k);
                let orow = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Computes `AᵀA` — the Gram matrix used by normal-equation solvers.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row_slice(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        // mirror the upper triangle
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|v| v * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds `s · I` to a square matrix in place (Tikhonov / Levenberg shift).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn add_diagonal(&mut self, s: f64) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: "add_diagonal requires a square matrix",
            });
        }
        for i in 0..self.rows {
            self[(i, i)] += s;
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Elementwise approximate comparison within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns the horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row_slice(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols]
                .copy_from_slice(other.row_slice(r));
        }
        out
    }

    /// Returns the vertical concatenation of `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Extracts the sub-matrix `rows × cols` starting at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                out[(r, c)] = self[(r0 + r, c0 + c)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.diag(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row_slice(1), &[3.0, 4.0]);
        assert_eq!(m.col_vec(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gram_equals_at_a() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a);
        assert!(g.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::identity(2);
        assert_eq!(a.hstack(&b).shape(), (2, 5));
        let c = Matrix::zeros(4, 3);
        assert_eq!(a.vstack(&c).shape(), (6, 3));
    }

    #[test]
    fn block_extraction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b, Matrix::from_rows(&[&[5.0, 6.0], &[8.0, 9.0]]));
    }

    #[test]
    fn add_diagonal_requires_square() {
        let mut m = Matrix::zeros(2, 3);
        assert!(m.add_diagonal(1.0).is_err());
        let mut s = Matrix::zeros(2, 2);
        s.add_diagonal(2.5).unwrap();
        assert_eq!(s.diag(), vec![2.5, 2.5]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!((&a).neg(), Matrix::from_rows(&[&[-1.0, -2.0]]));
    }

    #[test]
    fn display_renders() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert!(s.contains("1.000000"));
    }
}
