//! Eigenvalues of real dense matrices.
//!
//! The CapGPU stability analysis (paper §4.4) checks that all poles of the
//! closed-loop system lie strictly inside the unit circle while the model
//! gains `A_i` are perturbed. Poles of a discrete-time linear system are the
//! eigenvalues of its closed-loop state matrix, which is real but generally
//! non-symmetric, so we need the full real-Schur machinery:
//!
//! 1. **balancing** (diagonal similarity scaling) to improve conditioning,
//! 2. **Hessenberg reduction** by stabilized elementary similarity
//!    transforms,
//! 3. the **Francis double-shift QR iteration** with exceptional shifts and
//!    aggressive deflation (the classic EISPACK `hqr` scheme).
//!
//! Only eigenvalues are computed; CapGPU never needs eigenvectors.

use crate::{LinalgError, Matrix, Result};

/// A complex number (eigenvalues of real matrices come in conjugate pairs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real complex number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Modulus `|z|`, computed hypot-style to avoid overflow.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Complex multiplication.
    pub fn mul(&self, other: &Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    /// Complex subtraction.
    pub fn sub(&self, other: &Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }

    /// Complex addition.
    pub fn add(&self, other: &Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    /// Complex division (Smith's algorithm for robustness).
    pub fn div(&self, other: &Complex) -> Complex {
        if other.re.abs() >= other.im.abs() {
            let r = other.im / other.re;
            let d = other.re + other.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = other.re / other.im;
            let d = other.re * r + other.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }

    /// True when `|self - other| <= tol` componentwise.
    pub fn approx_eq(&self, other: &Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// `sign(|a|, b)`: magnitude of `a` with the sign of `b` (Fortran SIGN).
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Balances a matrix in place with diagonal similarity transforms so that
/// row and column norms are comparable (EISPACK `balanc`, powers of two so
/// no rounding error is introduced).
fn balance(a: &mut Matrix) {
    const RADIX: f64 = 2.0;
    let n = a.rows();
    let sqrdx = RADIX * RADIX;
    let mut done = false;
    // Bounded loop: balancing converges quickly; the bound is a safety net.
    let mut guard = 0;
    while !done && guard < 100 {
        guard += 1;
        done = true;
        for i in 0..n {
            let mut r = 0.0;
            let mut c = 0.0;
            for j in 0..n {
                if j != i {
                    c += a[(j, i)].abs();
                    r += a[(i, j)].abs();
                }
            }
            if c != 0.0 && r != 0.0 {
                let mut g = r / RADIX;
                let mut f = 1.0;
                let s = c + r;
                let mut c_scaled = c;
                while c_scaled < g {
                    f *= RADIX;
                    c_scaled *= sqrdx;
                }
                g = r * RADIX;
                while c_scaled > g {
                    f /= RADIX;
                    c_scaled /= sqrdx;
                }
                if (c_scaled + r) / f < 0.95 * s {
                    done = false;
                    let g = 1.0 / f;
                    for j in 0..n {
                        a[(i, j)] *= g;
                    }
                    for j in 0..n {
                        a[(j, i)] *= f;
                    }
                }
            }
        }
    }
}

/// Reduces a matrix to upper Hessenberg form in place by stabilized
/// elementary similarity transforms (EISPACK `elmhes`), then zeroes the
/// garbage below the first subdiagonal.
fn hessenberg(a: &mut Matrix) {
    let n = a.rows();
    if n < 3 {
        return;
    }
    for m in 1..(n - 1) {
        // Pivot: largest magnitude in column m-1 at or below row m.
        let mut x = 0.0_f64;
        let mut piv = m;
        for i in m..n {
            if a[(i, m - 1)].abs() > x.abs() {
                x = a[(i, m - 1)];
                piv = i;
            }
        }
        if piv != m {
            for j in (m - 1)..n {
                let tmp = a[(piv, j)];
                a[(piv, j)] = a[(m, j)];
                a[(m, j)] = tmp;
            }
            for j in 0..n {
                let tmp = a[(j, piv)];
                a[(j, piv)] = a[(j, m)];
                a[(j, m)] = tmp;
            }
        }
        if x != 0.0 {
            for i in (m + 1)..n {
                let mut y = a[(i, m - 1)];
                if y != 0.0 {
                    y /= x;
                    a[(i, m - 1)] = y;
                    for j in m..n {
                        let v = a[(m, j)];
                        a[(i, j)] -= y * v;
                    }
                    for j in 0..n {
                        let v = a[(j, i)];
                        a[(j, m)] += y * v;
                    }
                }
            }
        }
    }
    // Multipliers were stashed below the subdiagonal; clear them.
    for i in 2..n {
        for j in 0..(i - 1) {
            a[(i, j)] = 0.0;
        }
    }
}

/// Computes all eigenvalues of a real square matrix.
///
/// # Errors
/// * [`LinalgError::DimensionMismatch`] if the matrix is not square.
/// * [`LinalgError::Empty`] for a 0×0 matrix.
/// * [`LinalgError::NoConvergence`] if the QR iteration stalls (does not
///   happen for the well-scaled matrices CapGPU produces; the limit is
///   30 iterations per eigenvalue as in EISPACK).
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            context: "eigenvalues requires a square matrix",
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if n == 1 {
        return Ok(vec![Complex::real(a[(0, 0)])]);
    }
    let mut h = a.clone();
    balance(&mut h);
    hessenberg(&mut h);
    hqr(&mut h)
}

/// Francis double-shift QR on an upper Hessenberg matrix (EISPACK `hqr`,
/// translated to 0-based indexing). Consumes `h`, returns eigenvalues.
#[allow(clippy::many_single_char_names)]
fn hqr(h: &mut Matrix) -> Result<Vec<Complex>> {
    let n = h.rows();
    let mut eigs = vec![Complex::ZERO; n];

    // Norm of the Hessenberg part, used as the deflation scale.
    let mut anorm = 0.0;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += h[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        // Zero matrix: all eigenvalues are zero.
        return Ok(eigs);
    }

    let eps = f64::EPSILON;
    let mut nn = n as isize - 1; // index of the last row of the active block
    let mut t = 0.0; // accumulated exceptional shift
    let mut total_iters = 0usize;
    let iter_cap = 60 * n; // generous global cap

    while nn >= 0 {
        let mut its = 0;
        loop {
            // Find l: smallest index such that h[l, l-1] is negligible.
            let mut l = nn;
            while l > 0 {
                let s =
                    h[(l as usize - 1, l as usize - 1)].abs() + h[(l as usize, l as usize)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if h[(l as usize, l as usize - 1)].abs() <= eps * s {
                    break;
                }
                l -= 1;
            }

            let x = h[(nn as usize, nn as usize)];
            if l == nn {
                // One real eigenvalue deflated.
                eigs[nn as usize] = Complex::real(x + t);
                nn -= 1;
                break;
            }

            let y = h[(nn as usize - 1, nn as usize - 1)];
            let w = h[(nn as usize, nn as usize - 1)] * h[(nn as usize - 1, nn as usize)];
            if l == nn - 1 {
                // A 2x2 block deflated: real pair or complex-conjugate pair.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x_sh = x + t;
                if q >= 0.0 {
                    let z = p + sign(z, p);
                    let lam1 = x_sh + z;
                    let lam2 = if z != 0.0 { x_sh - w / z } else { lam1 };
                    eigs[nn as usize - 1] = Complex::real(lam1);
                    eigs[nn as usize] = Complex::real(lam2);
                } else {
                    eigs[nn as usize - 1] = Complex::new(x_sh + p, z);
                    eigs[nn as usize] = Complex::new(x_sh + p, -z);
                }
                nn -= 2;
                break;
            }

            // No deflation yet: perform a Francis QR step.
            if total_iters >= iter_cap {
                return Err(LinalgError::NoConvergence {
                    iterations: total_iters,
                });
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 {
                // Exceptional shift to break symmetry-induced cycles.
                t += x;
                for i in 0..=(nn as usize) {
                    h[(i, i)] -= x;
                }
                let s = h[(nn as usize, nn as usize - 1)].abs()
                    + h[(nn as usize - 1, nn as usize - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;
            total_iters += 1;

            // Look for two consecutive small subdiagonal elements.
            let (mut p, mut q, mut r);
            let mut m = nn - 2;
            loop {
                let z = h[(m as usize, m as usize)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / h[(m as usize + 1, m as usize)]
                    + h[(m as usize, m as usize + 1)];
                q = h[(m as usize + 1, m as usize + 1)] - z - rr - ss;
                r = h[(m as usize + 2, m as usize + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = h[(m as usize, m as usize - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs()
                    * (h[(m as usize - 1, m as usize - 1)].abs()
                        + z.abs()
                        + h[(m as usize + 1, m as usize + 1)].abs());
                if u <= eps * v {
                    break;
                }
                m -= 1;
            }

            for i in (m + 2)..=nn {
                h[(i as usize, i as usize - 2)] = 0.0;
                if i != m + 2 {
                    h[(i as usize, i as usize - 3)] = 0.0;
                }
            }

            // Double QR sweep over rows l..=nn and columns l..=nn.
            for k in m..nn {
                if k != m {
                    p = h[(k as usize, k as usize - 1)];
                    q = h[(k as usize + 1, k as usize - 1)];
                    r = if k != nn - 1 {
                        h[(k as usize + 2, k as usize - 1)]
                    } else {
                        0.0
                    };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s != 0.0 {
                    if k == m {
                        if l != m {
                            h[(k as usize, k as usize - 1)] = -h[(k as usize, k as usize - 1)];
                        }
                    } else {
                        h[(k as usize, k as usize - 1)] = -s * x;
                    }
                    p += s;
                    x = p / s;
                    y = q / s;
                    let z = r / s;
                    q /= p;
                    r /= p;
                    // Row modification.
                    for j in (k as usize)..=(nn as usize) {
                        let mut pp = h[(k as usize, j)] + q * h[(k as usize + 1, j)];
                        if k != nn - 1 {
                            pp += r * h[(k as usize + 2, j)];
                            h[(k as usize + 2, j)] -= pp * z;
                        }
                        h[(k as usize + 1, j)] -= pp * y;
                        h[(k as usize, j)] -= pp * x;
                    }
                    let mmin = if nn < k + 3 { nn } else { k + 3 };
                    // Column modification.
                    for i in (l as usize)..=(mmin as usize) {
                        let mut pp = x * h[(i, k as usize)] + y * h[(i, k as usize + 1)];
                        if k != nn - 1 {
                            pp += z * h[(i, k as usize + 2)];
                            h[(i, k as usize + 2)] -= pp * r;
                        }
                        h[(i, k as usize + 1)] -= pp * q;
                        h[(i, k as usize)] -= pp;
                    }
                }
            }
        }
    }
    Ok(eigs)
}

/// Spectral radius: `max |λ_i|` over all eigenvalues.
///
/// A discrete-time linear system is asymptotically stable iff its state
/// matrix has spectral radius strictly less than 1 — the criterion used by
/// the CapGPU pole analysis.
///
/// # Errors
/// Propagates [`eigenvalues`] errors.
pub fn spectral_radius(a: &Matrix) -> Result<f64> {
    Ok(eigenvalues(a)?
        .iter()
        .map(Complex::abs)
        .fold(0.0_f64, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(mut eigs: Vec<Complex>) -> Vec<f64> {
        assert!(
            eigs.iter().all(|e| e.im.abs() < 1e-8),
            "expected real spectrum: {eigs:?}"
        );
        eigs.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        eigs.into_iter().map(|e| e.re).collect()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a.mul(&b), Complex::new(5.0, 5.0));
        assert_eq!(a.add(&b), Complex::new(4.0, 1.0));
        assert_eq!(a.sub(&b), Complex::new(-2.0, 3.0));
        let q = a.div(&b);
        let back = q.mul(&b);
        assert!(back.approx_eq(&a, 1e-12));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 0.5]);
        let eigs = sorted_real(eigenvalues(&a).unwrap());
        assert!((eigs[0] + 1.0).abs() < 1e-10);
        assert!((eigs[1] - 0.5).abs() < 1e-10);
        assert!((eigs[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn triangular_matrix() {
        let a = Matrix::from_rows(&[&[2.0, 5.0, 1.0], &[0.0, -3.0, 2.0], &[0.0, 0.0, 7.0]]);
        let eigs = sorted_real(eigenvalues(&a).unwrap());
        assert!((eigs[0] + 3.0).abs() < 1e-9);
        assert!((eigs[1] - 2.0).abs() < 1e-9);
        assert!((eigs[2] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_matrix_has_unit_complex_pair() {
        let th = 0.7_f64;
        let a = Matrix::from_rows(&[&[th.cos(), -th.sin()], &[th.sin(), th.cos()]]);
        let eigs = eigenvalues(&a).unwrap();
        for e in &eigs {
            assert!((e.abs() - 1.0).abs() < 1e-10);
        }
        // cos ± i·sin
        let mut ims: Vec<f64> = eigs.iter().map(|e| e.im).collect();
        ims.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ims[0] + th.sin()).abs() < 1e-10);
        assert!((ims[1] - th.sin()).abs() < 1e-10);
    }

    #[test]
    fn symmetric_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eigs = sorted_real(eigenvalues(&a).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-10);
        assert!((eigs[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn companion_matrix_of_cubic() {
        // p(x) = x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
        let a = Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let eigs = sorted_real(eigenvalues(&a).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-8);
        assert!((eigs[1] - 2.0).abs() < 1e-8);
        assert!((eigs[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn trace_and_det_invariants_5x5() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5, -1.0, 0.2],
            &[0.3, -2.0, 1.5, 0.7, -0.4],
            &[2.2, 0.1, 3.0, -0.6, 1.1],
            &[-0.9, 1.4, 0.0, 0.5, 2.3],
            &[0.6, -1.1, 0.8, 1.9, -1.5],
        ]);
        let eigs = eigenvalues(&a).unwrap();
        let trace: f64 = a.diag().iter().sum();
        let eig_sum: f64 = eigs.iter().map(|e| e.re).sum();
        assert!((trace - eig_sum).abs() < 1e-8, "trace {trace} vs {eig_sum}");
        let det = crate::Lu::new(&a).unwrap().det();
        let eig_prod = eigs.iter().fold(Complex::real(1.0), |acc, e| acc.mul(e));
        assert!(eig_prod.im.abs() < 1e-7);
        assert!((det - eig_prod.re).abs() < 1e-6 * det.abs().max(1.0));
    }

    #[test]
    fn spectral_radius_of_stable_system() {
        // Closed-loop-like matrix with poles at 0.5 and 0.25.
        let a = Matrix::from_rows(&[&[0.5, 0.1], &[0.0, 0.25]]);
        let rho = spectral_radius(&a).unwrap();
        assert!((rho - 0.5).abs() < 1e-10);
        assert!(rho < 1.0);
    }

    #[test]
    fn spectral_radius_of_unstable_system() {
        let a = Matrix::from_rows(&[&[1.2, 0.0], &[0.3, 0.4]]);
        assert!(spectral_radius(&a).unwrap() > 1.0);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[42.0]]);
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 1);
        assert!((eigs[0].re - 42.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 4);
        let eigs = eigenvalues(&a).unwrap();
        assert!(eigs.iter().all(|e| e.abs() < 1e-12));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(eigenvalues(&Matrix::zeros(2, 3)).is_err());
        assert_eq!(
            eigenvalues(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn badly_scaled_matrix_benefits_from_balancing() {
        // Similar to diag(1e6, 1e-6)-conjugated 2x2 with eigenvalues 1, 2.
        let a = Matrix::from_rows(&[&[1.0, 1e6], &[0.5e-6, 2.0]]);
        let eigs = eigenvalues(&a).unwrap();
        let mut res: Vec<f64> = eigs.iter().map(|e| e.re).collect();
        res.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // char poly: λ² − 3λ + (2 − 0.5) = 0 → λ = (3 ± √(9−6))/2
        let d = (3.0_f64 * 3.0 - 4.0 * 1.5).sqrt();
        assert!((res[0] - (3.0 - d) / 2.0).abs() < 1e-6);
        assert!((res[1] - (3.0 + d) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn repeated_eigenvalues() {
        // Jordan-like block with repeated eigenvalue 2.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        let eigs = sorted_real(eigenvalues(&a).unwrap());
        assert!((eigs[0] - 2.0).abs() < 1e-7);
        assert!((eigs[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1.000000+2.000000i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.000000-2.000000i");
    }
}
