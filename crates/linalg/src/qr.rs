//! Householder QR factorization and least-squares solves.
//!
//! QR is the numerically preferred route for the over-determined regression
//! problems in system identification (paper §4.2): it avoids squaring the
//! condition number the way the normal equations do.

use crate::{LinalgError, Matrix, Result};

/// Householder QR factorization `A = Q·R` of an `m × n` matrix with `m ≥ n`.
///
/// `Q` is stored implicitly as a sequence of Householder reflectors; `R` is
/// the upper-triangular `n × n` block.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed reflectors (below diagonal) and R (upper triangle).
    qr: Matrix,
    /// Scalar `beta` coefficients of the reflectors.
    betas: Vec<f64>,
    rows: usize,
    cols: usize,
}

/// Relative threshold on diagonal entries of R for rank detection.
const RANK_TOL: f64 = 1e-12;

impl Qr {
    /// Factorizes an `m × n` matrix with `m ≥ n`.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] if `m < n`.
    /// * [`LinalgError::Empty`] for an empty matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                context: "QR requires rows >= cols",
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        let mut v = vec![0.0; m]; // reflector scratch buffer
        for k in 0..n {
            // Build the Householder vector for column k, rows k..m, in a
            // scratch buffer (it cannot live in the column being updated).
            let len = m - k;
            for (i, r) in (k..m).enumerate() {
                v[i] = qr[(r, k)];
            }
            let norm = v[..len].iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if v[0] >= 0.0 { -norm } else { norm };
            v[0] -= alpha; // v = x − α·e₁
            let vtv: f64 = v[..len].iter().map(|x| x * x).sum();
            if vtv == 0.0 {
                betas[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vtv;
            // Apply H = I − β·v·vᵀ to columns k..n of the trailing block.
            for c in k..n {
                let mut dot = 0.0;
                for (i, r) in (k..m).enumerate() {
                    dot += v[i] * qr[(r, c)];
                }
                let s = beta * dot;
                for (i, r) in (k..m).enumerate() {
                    qr[(r, c)] -= s * v[i];
                }
            }
            // Column k is now [α, ~0, …]; enforce exactness and stash the
            // reflector normalized so its leading entry is 1 (β is rescaled
            // accordingly: v' = v/v₀ ⇒ β' = β·v₀²).
            qr[(k, k)] = alpha;
            let v0 = v[0];
            for (i, r) in (k..m).enumerate().skip(1) {
                qr[(r, k)] = v[i] / v0;
            }
            betas[k] = beta * v0 * v0;
        }
        Ok(Qr {
            qr,
            betas,
            rows: m,
            cols: n,
        })
    }

    /// Applies `Qᵀ` to a vector in place.
    #[allow(clippy::needless_range_loop)]
    fn apply_qt(&self, y: &mut [f64]) {
        let (m, n) = (self.rows, self.cols);
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v = [1, qr[(k+1..m, k)]]
            let mut dot = y[k];
            for r in (k + 1)..m {
                dot += self.qr[(r, k)] * y[r];
            }
            let s = beta * dot;
            y[k] -= s;
            for r in (k + 1)..m {
                y[r] -= s * self.qr[(r, k)];
            }
        }
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.cols;
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// Numerical rank estimated from diagonal entries of `R`.
    pub fn rank(&self) -> usize {
        let scale = (0..self.cols)
            .map(|i| self.qr[(i, i)].abs())
            .fold(0.0_f64, f64::max)
            .max(1.0);
        (0..self.cols)
            .filter(|&i| self.qr[(i, i)].abs() > RANK_TOL * scale)
            .count()
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != m`.
    /// * [`LinalgError::Singular`] if `A` is rank deficient.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "QR solve rhs length",
            });
        }
        if self.rank() < self.cols {
            return Err(LinalgError::Singular);
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on R x = y[..n].
        let n = self.cols;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            x[i] = acc / self.qr[(i, i)];
        }
        Ok(x)
    }

    /// Squared residual norm `‖A·x − b‖₂²` of the least-squares solution,
    /// computed from the projected tail of `Qᵀb` without forming `x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != m`.
    pub fn residual_sq(&self, b: &[f64]) -> Result<f64> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "QR residual rhs length",
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        Ok(y[self.cols..].iter().map(|v| v * v).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::approx_eq;

    #[test]
    fn r_is_upper_triangular_and_reconstructs_norms() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r[(1, 0)], 0.0);
        // Column norms are preserved by orthogonal transforms:
        // ‖R e1‖ = ‖A e1‖.
        let a_col0: f64 = a.col_vec(0).iter().map(|v| v * v).sum::<f64>();
        let r_col0: f64 = r.col_vec(0).iter().map(|v| v * v).sum::<f64>();
        assert!((a_col0 - r_col0).abs() < 1e-10);
    }

    #[test]
    fn exact_solve_square() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = vec![0.5, -1.5];
        let b = a.matvec(&x_true);
        let x = Qr::new(&a).unwrap().solve_lstsq(&b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn overdetermined_regression_matches_normal_equations() {
        // y = 2x + 1 with noise-free samples: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let x = Qr::new(&a).unwrap().solve_lstsq(&b).unwrap();
        assert!(approx_eq(&x, &[2.0, 1.0], 1e-10));
        let res = Qr::new(&a).unwrap().residual_sq(&b).unwrap();
        assert!(res < 1e-18);
    }

    #[test]
    fn residual_of_inconsistent_system() {
        // x = 0 and x = 2 simultaneously: LS solution x = 1, residual 2.
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_lstsq(&[0.0, 2.0]).unwrap();
        assert!(approx_eq(&x, &[1.0], 1e-12));
        assert!((qr.residual_sq(&[0.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        assert_eq!(qr.rank(), 1);
        assert_eq!(
            qr.solve_lstsq(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Qr::new(&a).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Qr::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.solve_lstsq(&[1.0]).is_err());
        assert!(qr.residual_sq(&[1.0]).is_err());
    }

    #[test]
    fn tall_random_system_residual_orthogonality() {
        // For LS solution, residual must be orthogonal to the column space.
        let a = Matrix::from_rows(&[&[1.0, 0.3], &[0.7, 2.0], &[-1.2, 0.4], &[0.1, -0.9]]);
        let b = vec![1.0, -2.0, 0.5, 3.0];
        let x = Qr::new(&a).unwrap().solve_lstsq(&b).unwrap();
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect();
        let atr = a.transpose().matvec(&r);
        assert!(atr.iter().all(|v| v.abs() < 1e-10));
    }
}
