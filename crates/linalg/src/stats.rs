//! Descriptive statistics used by monitors and experiment summaries.
//!
//! The paper's evaluation reports steady-state means and standard deviations
//! over the last 80 of 100 control periods (Fig. 6), tail-latency
//! percentiles for SLO levels (Fig. 8/9: 30%/50%/80% tail), and R² values
//! for model fits (Fig. 2). These helpers implement exactly those
//! computations.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for slices with fewer than 2 entries.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample standard deviation (n−1 denominator); 0.0 for < 2 entries.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linear-interpolation percentile, `q ∈ [0, 100]`.
///
/// Matches the common "linear" method: `p50` of `[1, 2, 3, 4]` is 2.5.
/// Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 100.0);
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The "`q`% tail latency" as the paper uses it: the latency threshold such
/// that `q`% of requests are *slower* — i.e. the `(100 − q)`-th percentile.
/// A 30% tail latency is a tight SLO, an 80% tail latency is loose.
pub fn tail_latency(xs: &[f64], tail_pct: f64) -> f64 {
    percentile(xs, 100.0 - tail_pct)
}

/// Coefficient of determination given observed targets and a residual sum
/// of squares. Returns 1.0 when the target variance is zero and the RSS is
/// also (near) zero, 0.0 when variance is zero but RSS is not.
pub fn r_squared_from_rss(y: &[f64], rss: f64) -> f64 {
    let m = mean(y);
    let tss: f64 = y.iter().map(|v| (v - m) * (v - m)).sum();
    if tss <= f64::EPSILON * y.len() as f64 {
        return if rss <= 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - rss / tss
}

/// R² between observations and predictions.
///
/// # Panics
/// Panics if lengths differ.
pub fn r_squared(y: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(y.len(), pred.len(), "r_squared length mismatch");
    let rss: f64 = y
        .iter()
        .zip(pred.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    r_squared_from_rss(y, rss)
}

/// Exponentially weighted moving average state.
///
/// Throughput monitors smooth per-period readings with an EWMA before they
/// feed the weight-assignment algorithm, so a single noisy period does not
/// flip the weights.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Feeds an observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current value, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Root-mean-square error between two equal-length series.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse length mismatch");
    assert!(!a.is_empty(), "rmse of empty series");
    let ss: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Mean absolute error of a series against a scalar set point — the power
/// "control accuracy" metric of Fig. 6.
pub fn mae_to_setpoint(xs: &[f64], setpoint: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|x| (x - setpoint).abs()).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!(sample_std_dev(&xs) > std_dev(&xs));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 30.0), 7.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn tail_latency_semantics() {
        // 30% tail = 70th percentile: tighter than 80% tail = 20th pct.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let tight = tail_latency(&xs, 30.0);
        let loose = tail_latency(&xs, 80.0);
        assert!(tight > loose);
        assert!((tight - 70.3).abs() < 0.5);
        assert!((loose - 20.8).abs() < 0.5);
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let y = [1.0, 2.0, 3.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&y, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn r_squared_degenerate_targets() {
        let y = [5.0, 5.0, 5.0];
        assert_eq!(r_squared(&y, &y), 1.0);
        assert_eq!(r_squared(&y, &[5.0, 5.0, 6.0]), 0.0);
    }

    #[test]
    fn ewma_smoothing() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(20.0), 15.0);
        assert_eq!(e.update(20.0), 17.5);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn rmse_and_mae() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 4.0]), 2.0_f64.sqrt());
        assert_eq!(mae_to_setpoint(&[899.0, 901.0, 905.0], 900.0), 7.0 / 3.0);
        assert_eq!(mae_to_setpoint(&[], 900.0), 0.0);
    }
}
