//! Dense linear algebra kernels for the CapGPU power-capping framework.
//!
//! The CapGPU controller stack needs a small but complete set of dense
//! numerical routines:
//!
//! * least-squares regression for power-model **system identification**
//!   (paper §4.2, Fig. 2a) and for the cross-validated linear models inside
//!   the CPU feature-selection workload,
//! * positive-definite solves for the condensed **MPC quadratic program**
//!   (paper Eq. 9),
//! * eigenvalue computation for the closed-loop **stability analysis**
//!   (paper §4.4, pole analysis),
//! * basic descriptive statistics for throughput monitors and experiment
//!   summaries.
//!
//! Everything is implemented from scratch on `f64`, favouring clarity and
//! numerical robustness over asymptotic tricks: every matrix in this system
//! is small (a server has at most a handful of CPUs and GPUs, and the MPC
//! decision vector has `M · N` entries with `M = 2`).
//!
//! # Quick example
//!
//! ```
//! use capgpu_linalg::{Matrix, lstsq};
//!
//! // Fit p = a·f_c + b·f_g + c from three observations.
//! let x = Matrix::from_rows(&[
//!     &[1.0, 0.5, 1.0],
//!     &[2.0, 0.5, 1.0],
//!     &[1.0, 1.5, 1.0],
//! ]);
//! let y = vec![10.0, 14.0, 16.0];
//! let fit = lstsq::solve(&x, &y).unwrap();
//! assert!((fit.coefficients[0] - 4.0).abs() < 1e-9);
//! assert!((fit.coefficients[1] - 6.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod cholesky;
pub mod eig;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod poly;
pub mod qr;
pub mod rls;
pub mod stats;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use eig::{eigenvalues, spectral_radius, Complex};
pub use lstsq::{solve as lstsq_solve, LstsqFit};
pub use lu::Lu;
pub use matrix::Matrix;
pub use poly::Polynomial;
pub use qr::Qr;
pub use rls::RlsFactor;
pub use svd::{condition_number, singular_values};

/// Error type shared by all factorization and solve routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The input is empty where a non-empty input is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch in {context}")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration failed to converge after {iterations} steps")
            }
            LinalgError::Empty => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias for linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
