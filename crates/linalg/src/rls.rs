//! Recursive least squares via Givens rank-1 R-factor updating.
//!
//! System identification (paper §4.2) is a least-squares regression, and
//! §6.4's online re-identification wants it *continuously*: one new
//! `(F, p)` sample per control period, a refreshed model right after.
//! Refitting from scratch costs `O(m·n²)` per sample (QR over all `m`
//! rows); this module maintains the square-root information form instead
//! — the upper-triangular factor `R` of the (exponentially weighted)
//! normal equations together with the rotated right-hand side `d` — and
//! folds each new row in with one sweep of Givens rotations in `O(n²)`.
//!
//! The invariant after any number of updates is
//!
//! ```text
//!   RᵀR = Σₖ λ^{m-k} · xₖ xₖᵀ        Rᵀd = Σₖ λ^{m-k} · xₖ yₖ
//! ```
//!
//! so `R·β = d` (back substitution) yields exactly the solution of the
//! exponentially weighted least-squares problem. With forgetting
//! `λ = 1` the factor is, up to row signs, the same `R` a batch
//! Householder QR of the full design matrix produces, and the solution
//! matches [`crate::lstsq::solve`] to machine precision.
//!
//! The scalar rotated out of each incoming row is the a-priori residual
//! in the rotated frame; the running sum of its squares equals the
//! (weighted) residual sum of squares of the current fit — R²/RMSE come
//! for free, without a second pass over the data.

use crate::{cholesky, svd, LinalgError, Matrix, Result};

/// Relative threshold on diagonal entries of `R` for rank detection,
/// matching [`crate::qr::Qr::rank`].
const RANK_TOL: f64 = 1e-12;

/// Square-root-information recursive least-squares state for `dim`
/// coefficients, with exponential forgetting.
#[derive(Debug, Clone)]
pub struct RlsFactor {
    /// Upper-triangular `dim × dim` factor of the information matrix.
    r: Matrix,
    /// Rotated right-hand side (`R·β = d` solves the problem).
    d: Vec<f64>,
    /// Forgetting factor `λ ∈ (0, 1]`.
    forgetting: f64,
    /// Number of samples folded in since the last [`RlsFactor::reset`].
    n_updates: usize,
    /// Exponentially weighted residual sum of squares.
    weighted_rss: f64,
    /// Exponentially weighted sample count `Σ λ^k`.
    weight_sum: f64,
    /// Exponentially weighted `Σ y` (for the total sum of squares).
    y_sum: f64,
    /// Exponentially weighted `Σ y²`.
    y2_sum: f64,
    /// Row scratch so updates never allocate.
    scratch: Vec<f64>,
}

impl RlsFactor {
    /// Creates an empty factor for `dim` coefficients with forgetting
    /// factor `forgetting`.
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] when `dim == 0`.
    /// * [`LinalgError::DimensionMismatch`] when `forgetting` is outside
    ///   `(0, 1]` (reusing the nearest existing error kind keeps the
    ///   error enum closed).
    pub fn new(dim: usize, forgetting: f64) -> Result<Self> {
        if dim == 0 {
            return Err(LinalgError::Empty);
        }
        if !(forgetting > 0.0 && forgetting <= 1.0 && forgetting.is_finite()) {
            return Err(LinalgError::DimensionMismatch {
                context: "RLS forgetting factor must be in (0, 1]",
            });
        }
        Ok(RlsFactor {
            r: Matrix::zeros(dim, dim),
            d: vec![0.0; dim],
            forgetting,
            n_updates: 0,
            weighted_rss: 0.0,
            weight_sum: 0.0,
            y_sum: 0.0,
            y2_sum: 0.0,
            scratch: vec![0.0; dim],
        })
    }

    /// Number of coefficients.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// The forgetting factor `λ`.
    pub fn forgetting(&self) -> f64 {
        self.forgetting
    }

    /// Number of samples folded in since construction or the last reset.
    pub fn len(&self) -> usize {
        self.n_updates
    }

    /// True before the first update.
    pub fn is_empty(&self) -> bool {
        self.n_updates == 0
    }

    /// Exponentially weighted effective sample count `Σ λ^k`; equals
    /// [`RlsFactor::len`] when `λ = 1`.
    pub fn effective_samples(&self) -> f64 {
        self.weight_sum
    }

    /// The upper-triangular factor `R` (for conditioning diagnostics).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Discards all state, keeping dimensions and forgetting factor.
    pub fn reset(&mut self) {
        self.r.as_mut_slice().fill(0.0);
        self.d.iter_mut().for_each(|v| *v = 0.0);
        self.n_updates = 0;
        self.weighted_rss = 0.0;
        self.weight_sum = 0.0;
        self.y_sum = 0.0;
        self.y2_sum = 0.0;
    }

    /// Applies one step of exponential forgetting *without* folding in an
    /// observation: scales the information by `λ` exactly as
    /// [`RlsFactor::update`] would before its Givens sweep. Forgetting
    /// models plant variation over *time*, so callers that skip an
    /// observation interval (meter dropout, transient gating) should
    /// still decay — otherwise stale data keeps full weight across the
    /// gap. No-op when `λ = 1`.
    pub fn decay(&mut self) {
        if self.forgetting >= 1.0 {
            return;
        }
        let n = self.dim();
        let sqrt_lambda = self.forgetting.sqrt();
        for i in 0..n {
            for j in i..n {
                self.r[(i, j)] *= sqrt_lambda;
            }
            self.d[i] *= sqrt_lambda;
        }
        self.weighted_rss *= self.forgetting;
        self.weight_sum *= self.forgetting;
        self.y_sum *= self.forgetting;
        self.y2_sum *= self.forgetting;
    }

    /// Folds one observation `(row, y)` into the factor: scales the
    /// existing information by `λ`, then annihilates the new row with one
    /// Givens sweep. `O(dim²)`, allocation-free.
    ///
    /// # Panics
    /// Panics if `row.len() != dim` (programming error, like the other
    /// fixed-arity hot-path entry points in this workspace).
    pub fn update(&mut self, row: &[f64], y: f64) {
        let n = self.dim();
        assert_eq!(row.len(), n, "RLS update row length");
        self.decay();
        let mut x = std::mem::take(&mut self.scratch);
        x.copy_from_slice(row);
        let mut rhs = y;
        for k in 0..n {
            if x[k] == 0.0 {
                continue;
            }
            let a = self.r[(k, k)];
            let b = x[k];
            let rad = a.hypot(b);
            let c = a / rad;
            let s = b / rad;
            self.r[(k, k)] = rad;
            for (j, xj) in x.iter_mut().enumerate().skip(k + 1) {
                let rkj = self.r[(k, j)];
                let old = *xj;
                self.r[(k, j)] = c * rkj + s * old;
                *xj = c * old - s * rkj;
            }
            let dk = self.d[k];
            self.d[k] = c * dk + s * rhs;
            rhs = c * rhs - s * dk;
        }
        // The fully rotated-out scalar is the residual of this sample in
        // the orthogonal complement of the design's column space; its
        // square is the sample's exact contribution to the RSS.
        self.weighted_rss += rhs * rhs;
        self.weight_sum += 1.0;
        self.y_sum += y;
        self.y2_sum += y * y;
        self.n_updates += 1;
        self.scratch = x;
    }

    /// Numerical rank of `R`, estimated like [`crate::qr::Qr::rank`].
    pub fn rank(&self) -> usize {
        let n = self.dim();
        let scale = (0..n)
            .map(|i| self.r[(i, i)].abs())
            .fold(0.0_f64, f64::max)
            .max(1.0);
        (0..n)
            .filter(|&i| self.r[(i, i)].abs() > RANK_TOL * scale)
            .count()
    }

    /// Solves `R·β = d` by back substitution — the exponentially weighted
    /// least-squares solution over all folded-in samples. `O(dim²)`.
    ///
    /// # Errors
    /// [`LinalgError::Singular`] when `R` is numerically rank deficient
    /// (use [`RlsFactor::solve_ridge`] then).
    pub fn solve(&self) -> Result<Vec<f64>> {
        let n = self.dim();
        if self.rank() < n {
            return Err(LinalgError::Singular);
        }
        let mut beta = self.d.clone();
        for i in (0..n).rev() {
            let mut acc = beta[i];
            for (j, bj) in beta.iter().enumerate().skip(i + 1) {
                acc -= self.r[(i, j)] * bj;
            }
            beta[i] = acc / self.r[(i, i)];
        }
        Ok(beta)
    }

    /// Ridge-regularized solve: `(RᵀR + λᵣ·I)·β = Rᵀd`. Because
    /// `RᵀR = XᵀWX` and `Rᵀd = XᵀWy`, this is *exactly* the solution of
    /// the weighted ridge problem `min ‖W^½(X·β − y)‖² + λᵣ‖β‖²` — the
    /// same normal equations [`crate::lstsq::solve_ridge`] solves for the
    /// batch (unweighted) case.
    ///
    /// # Errors
    /// Propagates Cholesky failure for non-positive `lambda` on a
    /// singular factor.
    pub fn solve_ridge(&self, lambda: f64) -> Result<Vec<f64>> {
        debug_assert!(lambda >= 0.0, "ridge penalty must be non-negative");
        let n = self.dim();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // (RᵀR)ᵢⱼ = Σₖ Rₖᵢ·Rₖⱼ, k ≤ min(i, j) since R is upper.
                let mut acc = 0.0;
                for k in 0..=i.min(j) {
                    acc += self.r[(k, i)] * self.r[(k, j)];
                }
                a[(i, j)] = acc;
            }
            a[(i, i)] += lambda;
        }
        let mut b = vec![0.0; n];
        for (j, bj) in b.iter_mut().enumerate() {
            for k in 0..=j {
                *bj += self.r[(k, j)] * self.d[k];
            }
        }
        cholesky::solve_spd(&a, &b)
    }

    /// 2-norm condition number of `R` — identical to the condition number
    /// of the (weighted) design matrix itself, at `O(dim³)` instead of the
    /// `O(m·dim²)` SVD of the full design. Infinite for a rank-deficient
    /// factor.
    pub fn condition(&self) -> f64 {
        svd::condition_number(&self.r).unwrap_or(f64::INFINITY)
    }

    /// Exponentially weighted residual sum of squares of the current
    /// solution (exact RSS when `λ = 1`).
    pub fn weighted_rss(&self) -> f64 {
        self.weighted_rss
    }

    /// Weighted coefficient of determination
    /// `R² = 1 − RSS / Σw(y − ȳ_w)²` (exact batch R² when `λ = 1`).
    pub fn r_squared(&self) -> f64 {
        if self.weight_sum == 0.0 {
            return 0.0;
        }
        let tss = self.y2_sum - self.y_sum * self.y_sum / self.weight_sum;
        if tss <= 0.0 {
            return if self.weighted_rss <= f64::EPSILON {
                1.0
            } else {
                0.0
            };
        }
        1.0 - self.weighted_rss / tss
    }

    /// Weighted root-mean-square residual (exact batch RMSE when `λ = 1`).
    pub fn rmse(&self) -> f64 {
        if self.weight_sum == 0.0 {
            return 0.0;
        }
        (self.weighted_rss / self.weight_sum).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq;
    use crate::vector::approx_eq;

    fn design(rows: &[Vec<f64>]) -> Matrix {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    /// Deterministic pseudo-random well-conditioned sample stream
    /// (simple LCG so columns are uncorrelated).
    fn stream(n: usize, m: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let coeffs: Vec<f64> = (0..n).map(|j| 0.5 + 0.3 * j as f64).collect();
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut unit = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::with_capacity(m);
        let mut ys = Vec::with_capacity(m);
        for _ in 0..m {
            let row: Vec<f64> = (0..n).map(|j| 6.0 * unit() - 3.0 + j as f64).collect();
            let y: f64 =
                row.iter().zip(&coeffs).map(|(x, c)| x * c).sum::<f64>() + 0.1 * (unit() - 0.5);
            rows.push(row);
            ys.push(y);
        }
        (rows, ys)
    }

    #[test]
    fn matches_batch_qr_solution() {
        for (n, m) in [(2, 6), (3, 10), (5, 40)] {
            let (rows, ys) = stream(n, m);
            let mut rls = RlsFactor::new(n, 1.0).unwrap();
            for (row, &y) in rows.iter().zip(ys.iter()) {
                rls.update(row, y);
            }
            let batch = lstsq::solve(&design(&rows), &ys).unwrap();
            let incr = rls.solve().unwrap();
            assert!(
                approx_eq(&incr, &batch.coefficients, 1e-10),
                "n={n} m={m}: {incr:?} vs {:?}",
                batch.coefficients
            );
            assert!((rls.weighted_rss() - batch.rss).abs() < 1e-9);
            assert!((rls.r_squared() - batch.r_squared).abs() < 1e-9);
            assert!((rls.rmse() - batch.rmse()).abs() < 1e-9);
        }
    }

    #[test]
    fn condition_matches_design_condition() {
        let (rows, ys) = stream(3, 12);
        let mut rls = RlsFactor::new(3, 1.0).unwrap();
        for (row, &y) in rows.iter().zip(ys.iter()) {
            rls.update(row, y);
        }
        let direct = svd::condition_number(&design(&rows)).unwrap();
        assert!(
            (rls.condition() - direct).abs() / direct < 1e-9,
            "{} vs {direct}",
            rls.condition()
        );
    }

    #[test]
    fn forgetting_tracks_coefficient_change() {
        let mut rls = RlsFactor::new(2, 0.9).unwrap();
        // First regime: y = 1·x + 0.
        for i in 0..60 {
            let x = (i as f64 * 0.7).sin() * 2.0;
            rls.update(&[x, 1.0], x);
        }
        // Second regime: y = 3·x + 1.
        for i in 0..60 {
            let x = (i as f64 * 0.7 + 0.3).sin() * 2.0;
            rls.update(&[x, 1.0], 3.0 * x + 1.0);
        }
        // Old-regime data retains total weight ≈ λ⁶⁰·Σλᵏ ≈ 0.018 of the
        // ≈ 10 units of new-regime weight, so a few-per-mille bias remains.
        let beta = rls.solve().unwrap();
        assert!((beta[0] - 3.0).abs() < 0.05, "slope {}", beta[0]);
        assert!((beta[1] - 1.0).abs() < 0.05, "intercept {}", beta[1]);
    }

    #[test]
    fn singular_factor_rejected_and_ridge_recovers() {
        // Only one direction excited: x[1] = 2·x[0].
        let mut rls = RlsFactor::new(2, 1.0).unwrap();
        for i in 0..8 {
            let x0 = i as f64;
            rls.update(&[x0, 2.0 * x0], 3.0 * x0);
        }
        assert_eq!(rls.solve().unwrap_err(), LinalgError::Singular);
        assert!(rls.condition() > 1e12);
        let beta = rls.solve_ridge(1e-6).unwrap();
        // Prediction on the excited direction is still right.
        assert!((beta[0] + 2.0 * beta[1] - 3.0).abs() < 1e-3, "{beta:?}");
    }

    #[test]
    fn ridge_matches_batch_ridge() {
        let (rows, ys) = stream(3, 20);
        let mut rls = RlsFactor::new(3, 1.0).unwrap();
        for (row, &y) in rows.iter().zip(ys.iter()) {
            rls.update(row, y);
        }
        let lambda = 0.75;
        let batch = lstsq::solve_ridge(&design(&rows), &ys, lambda).unwrap();
        let incr = rls.solve_ridge(lambda).unwrap();
        assert!(
            approx_eq(&incr, &batch.coefficients, 1e-9),
            "{incr:?} vs {:?}",
            batch.coefficients
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut rls = RlsFactor::new(2, 1.0).unwrap();
        rls.update(&[1.0, 1.0], 2.0);
        assert_eq!(rls.len(), 1);
        rls.reset();
        assert!(rls.is_empty());
        assert_eq!(rls.effective_samples(), 0.0);
        assert_eq!(rls.weighted_rss(), 0.0);
        assert_eq!(rls.rank(), 0);
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(RlsFactor::new(0, 1.0).unwrap_err(), LinalgError::Empty);
        assert!(RlsFactor::new(2, 0.0).is_err());
        assert!(RlsFactor::new(2, 1.5).is_err());
        assert!(RlsFactor::new(2, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "RLS update row length")]
    fn update_checks_arity() {
        let mut rls = RlsFactor::new(3, 1.0).unwrap();
        rls.update(&[1.0], 1.0);
    }
}
