//! Property-based tests for the linear-algebra kernels.
//!
//! These exercise invariants that must hold for *any* well-conditioned
//! input, not just hand-picked examples: factorizations reconstruct,
//! solvers invert, eigenvalue sums match traces.

use capgpu_linalg::{eig, lstsq, stats, Cholesky, Lu, Matrix, Qr};
use proptest::prelude::*;

/// Strategy: vector of `n` floats in a tame range.
fn vec_f64(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

/// Strategy: a diagonally dominant n×n matrix (guaranteed non-singular and
/// well conditioned enough for tight tolerances).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data);
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0 + m[(i, i)].abs();
        }
        m
    })
}

/// Strategy: an SPD matrix built as `BᵀB + I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut g = b.gram();
        g.add_diagonal(1.0).unwrap();
        g
    })
}

proptest! {
    #[test]
    fn lu_solve_recovers_solution(a in dominant_matrix(4), x in vec_f64(4)) {
        let b = a.matvec(&x);
        let solved = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (s, t) in solved.iter().zip(x.iter()) {
            prop_assert!((s - t).abs() < 1e-7, "{s} vs {t}");
        }
    }

    #[test]
    fn lu_det_sign_consistent_with_inverse(a in dominant_matrix(3)) {
        let lu = Lu::new(&a).unwrap();
        let det = lu.det();
        prop_assert!(det.abs() > 1e-9);
        let inv = lu.inverse().unwrap();
        let prod = a.matmul(&inv);
        prop_assert!(prod.approx_eq(&Matrix::identity(3), 1e-7));
    }

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(4)) {
        let ch = Cholesky::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        prop_assert!(rec.approx_eq(&a, 1e-8));
    }

    #[test]
    fn cholesky_solve_matches_lu(a in spd_matrix(4), b in vec_f64(4)) {
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (c, l) in x_ch.iter().zip(x_lu.iter()) {
            prop_assert!((c - l).abs() < 1e-7);
        }
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        data in prop::collection::vec(-5.0..5.0f64, 12),
        b in vec_f64(6),
    ) {
        // 6x2 design matrix with an intercept column to avoid rank issues.
        let mut rows = Vec::new();
        for i in 0..6 {
            rows.push(vec![data[2 * i], data[2 * i + 1] + 20.0 * (i as f64 + 1.0), 1.0]);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let qr = Qr::new(&a).unwrap();
        if qr.rank() < 3 {
            return Ok(()); // skip degenerate draws
        }
        let x = qr.solve_lstsq(&b).unwrap();
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect();
        let atr = a.transpose().matvec(&r);
        for v in atr {
            prop_assert!(v.abs() < 1e-6, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn eigenvalue_sum_matches_trace(a in dominant_matrix(5)) {
        let eigs = eig::eigenvalues(&a).unwrap();
        let trace: f64 = a.diag().iter().sum();
        let sum: f64 = eigs.iter().map(|e| e.re).sum();
        let imag_sum: f64 = eigs.iter().map(|e| e.im).sum();
        prop_assert!((trace - sum).abs() < 1e-6 * trace.abs().max(1.0));
        prop_assert!(imag_sum.abs() < 1e-6, "conjugate pairs must cancel");
    }

    #[test]
    fn eigenvalue_product_matches_det(a in dominant_matrix(4)) {
        let eigs = eig::eigenvalues(&a).unwrap();
        let det = Lu::new(&a).unwrap().det();
        let prod = eigs
            .iter()
            .fold(eig::Complex::real(1.0), |acc, e| acc.mul(e));
        prop_assert!(prod.im.abs() < 1e-5 * det.abs().max(1.0));
        prop_assert!((prod.re - det).abs() < 1e-5 * det.abs().max(1.0));
    }

    #[test]
    fn lstsq_r2_bounded(xs in prop::collection::vec(-5.0..5.0f64, 8), noise in prop::collection::vec(-0.5..0.5f64, 8)) {
        // Fit y = 2x + 1 + noise; R² must be ≤ 1 and predictions sane.
        prop_assume!(stats::std_dev(&xs) > 0.5);
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let y: Vec<f64> = xs.iter().zip(noise.iter()).map(|(&x, &n)| 2.0 * x + 1.0 + n).collect();
        let fit = lstsq::solve(&a, &y).unwrap();
        prop_assert!(fit.r_squared <= 1.0 + 1e-12);
        prop_assert!((fit.coefficients[0] - 2.0).abs() < 1.5);
    }

    #[test]
    fn percentile_monotone(xs in prop::collection::vec(0.0..100.0f64, 1..50), q1 in 0.0..100.0f64, q2 in 0.0..100.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::percentile(&xs, lo) <= stats::percentile(&xs, hi) + 1e-12);
    }

    #[test]
    fn ewma_stays_within_observed_range(vals in prop::collection::vec(0.0..100.0f64, 1..30), alpha in 0.01..1.0f64) {
        let mut e = stats::Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &vals {
            lo = lo.min(v);
            hi = hi.max(v);
            let out = e.update(v);
            prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9);
        }
    }

    #[test]
    fn matmul_associative(a in dominant_matrix(3), b in dominant_matrix(3), c in dominant_matrix(3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-6 * left.max_abs().max(1.0)));
    }

    #[test]
    fn transpose_of_product_reverses(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
    }
}
