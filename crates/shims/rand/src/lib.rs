//! Offline drop-in replacement for the subset of `rand` 0.8 that CapGPU
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over float and integer ranges.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the exact algorithms of `rand` 0.8 / `rand_chacha` 0.3 /
//! `rand_core` 0.6 rather than approximating them:
//!
//! * `StdRng` is ChaCha with 12 rounds, a 64-bit block counter and the
//!   standard IETF constants, exactly as in `rand_chacha::ChaCha12Rng`.
//! * `seed_from_u64` expands the `u64` with the PCG32 output function,
//!   exactly as `rand_core` 0.6 does.
//! * `gen_range` on floats draws `[1, 2)` from the top 52 bits of a
//!   `u64` and rescales; on integers it uses widening-multiply rejection
//!   sampling — both exactly as `rand` 0.8's `UniformFloat`/`UniformInt`
//!   `sample_single`.
//!
//! The streams are therefore bit-identical to the real crate for every
//! call pattern the workspace exercises, so simulations calibrated
//! against `rand` 0.8 seeds reproduce unchanged.

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator seedable from reproducible state.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with the PCG32
    /// output function (`rand_core` 0.6's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Core RNG interface: raw 32- and 64-bit draws.
pub trait RngCore {
    /// Next raw `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next raw `u64`.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling interface (the subset of `rand::Rng` in use).
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range, matching `rand` 0.8's
    /// `sample_single` algorithms bit-for-bit.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<Range<T>>,
    {
        let r = range.into();
        T::sample_single(r.start, r.end, self)
    }

    /// Samples a value of type `T` (only `u64`/`f64` are implemented).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R where R: Sized {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53-bit multiply into [0, 1).
        let x = rng.next_u64() >> 11;
        x as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

/// Types uniformly samplable over a half-open range.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform draw from `[low, high)` (`rand` 0.8 `sample_single`).
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        debug_assert!(low < high, "gen_range: low >= high");
        let scale = high - low;
        // Value in [1, 2) from the top 52 bits, then rescale — exactly
        // rand 0.8's UniformFloat::<f64>::sample_single.
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        (value1_2 - 1.0) * scale + low
    }
}

impl SampleUniform for f32 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        debug_assert!(low < high, "gen_range: low >= high");
        let scale = high - low;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
        (value1_2 - 1.0) * scale + low
    }
}

macro_rules! uniform_int_64 {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let range = (high as u64).wrapping_sub(low as u64);
                // rand 0.8 UniformInt::sample_single for 64-bit types:
                // widening multiply with a bit-shifted rejection zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let wide = (v as u128).wrapping_mul(range as u128);
                    let hi = (wide >> 64) as u64;
                    let lo = wide as u64;
                    if lo <= zone {
                        return (low as u64).wrapping_add(hi) as $ty;
                    }
                }
            }
        }
    )*};
}

uniform_int_64!(u64, i64, usize, isize);

macro_rules! uniform_int_32 {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let range = (high as u32).wrapping_sub(low as u32);
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u32();
                    let wide = (v as u64).wrapping_mul(range as u64);
                    let hi = (wide >> 32) as u32;
                    let lo = wide as u32;
                    if lo <= zone {
                        return (low as u32).wrapping_add(hi) as $ty;
                    }
                }
            }
        }
    )*};
}

uniform_int_32!(u32, i32);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    /// The standard generator of `rand` 0.8: ChaCha with 12 rounds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// Key words (state words 4..12).
        key: [u32; 8],
        /// 64-bit block counter (state words 12, 13).
        counter: u64,
        /// Stream id (state words 14, 15) — 0 for seeded construction.
        stream: [u32; 2],
        /// Current output block.
        buffer: [u32; 16],
        /// Next unread word in `buffer`; 16 = exhausted.
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            let input: [u32; 16] = [
                CHACHA_CONSTANTS[0],
                CHACHA_CONSTANTS[1],
                CHACHA_CONSTANTS[2],
                CHACHA_CONSTANTS[3],
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                self.counter as u32,
                (self.counter >> 32) as u32,
                self.stream[0],
                self.stream[1],
            ];
            let mut x = input;
            for _ in 0..6 {
                // Column round.
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                // Diagonal round.
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            for (o, i) in x.iter_mut().zip(input.iter()) {
                *o = o.wrapping_add(*i);
            }
            self.buffer = x;
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    #[inline(always)]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes([
                    seed[4 * i],
                    seed[4 * i + 1],
                    seed[4 * i + 2],
                    seed[4 * i + 3],
                ]);
            }
            StdRng {
                key,
                counter: 0,
                stream: [0, 0],
                buffer: [0; 16],
                index: 16,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let v = self.buffer[self.index];
            self.index += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core::block::BlockRng pairing: low word first. All
            // callers in this workspace draw u64s in aligned pairs, and
            // the buffer length is even, so the straddling case of the
            // real implementation is unreachable; handle it identically
            // anyway (last word + first word of the next block).
            if self.index >= 16 {
                self.refill();
            }
            if self.index == 15 {
                let lo = u64::from(self.buffer[15]);
                self.refill();
                let hi = u64::from(self.buffer[0]);
                self.index = 1;
                return (hi << 32) | lo;
            }
            let lo = u64::from(self.buffer[self.index]);
            let hi = u64::from(self.buffer[self.index + 1]);
            self.index += 2;
            (hi << 32) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        // Same seed, same stream.
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different seeds diverge.
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    /// The IETF ChaCha20 test vector (RFC 7539 §2.3.2) exercises the same
    /// quarter-round/block structure with 20 rounds; here we pin the
    /// 12-round keystream for the all-zero key so accidental changes to
    /// the round count or word order are caught.
    #[test]
    fn chacha_block_structure_stable() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let w0 = r.next_u32();
        let mut r2 = StdRng::from_seed([0u8; 32]);
        assert_eq!(w0, r2.next_u32());
        // First block and second block must differ (counter increments).
        let block0: Vec<u32> = (0..16).map(|_| r2.next_u32()).collect();
        assert!(block0.iter().any(|&w| w != w0));
    }

    #[test]
    fn gen_range_f64_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_f64_covers_range() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_usize_uniformish() {
        let mut r = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[r.gen_range(0..6usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn seed_from_u64_uses_pcg_expansion() {
        // The PCG expansion must differentiate adjacent seeds strongly.
        let a = StdRng::seed_from_u64(1).next_u64();
        let b = StdRng::seed_from_u64(2).next_u64();
        assert_ne!(a, b);
        assert_ne!(a.count_ones().abs_diff(32), 32); // not degenerate
    }
}
