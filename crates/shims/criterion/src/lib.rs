//! Offline shim for the `criterion` API subset the bench targets use:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark is
//! warmed up briefly and then timed for a fixed wall-clock budget; the
//! mean, min, and max per-iteration times are printed. Good enough to
//! compare orders of magnitude and to keep `cargo bench` compiling and
//! running without network access.

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark, e.g. `group/4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    /// Total measured time and iteration count for the last `iter` call.
    elapsed: Duration,
    iterations: u64,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Self {
            elapsed: Duration::ZERO,
            iterations: 0,
            measure_for,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few calls to populate caches and resolve lazy init.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            std::hint::black_box(routine());
            iterations += 1;
            if start.elapsed() >= self.measure_for {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iterations == 0 {
        println!("{name:<48} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    println!(
        "{name:<48} {:>12} /iter   ({} iters in {:.2?})",
        format_time(per_iter),
        b.iterations,
        b.elapsed
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CAPGPU_BENCH_MS overrides the per-benchmark time budget.
        let ms = std::env::var("CAPGPU_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Self {
            measure_for: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_for);
        f(&mut b);
        report(name, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measure_for: self.measure_for,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks (`group_name/bench_name` labels).
pub struct BenchmarkGroup<'a> {
    name: String,
    measure_for: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.measure_for);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.measure_for);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    pub fn finish(&mut self) {}
}

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        compile_error!("criterion shim: config-form criterion_group! is not supported");
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iterations > 0);
        assert!(n >= b.iterations);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-5).ends_with("µs"));
        assert!(format_time(5e-2).ends_with("ms"));
        assert!(format_time(2.0).ends_with('s'));
    }
}
