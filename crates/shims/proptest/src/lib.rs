//! Offline mini property-testing framework.
//!
//! Implements the exact `proptest` 1.x API subset the workspace's tests
//! use — `proptest! { #[test] fn name(x in strategy, ...) { .. } }`,
//! range strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop_map`, `prop_assert*`, `prop_assume!`, and
//! `ProptestConfig::with_cases` — on top of the workspace rand shim.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case reports its inputs via the assertion
//!   message and the case index instead of a minimized counterexample;
//! - case generation is seeded from the test's module path + name +
//!   case index, so runs are fully deterministic (no `PROPTEST_CASES`
//!   or regression-file machinery).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic per-case RNG: seeded from the fully qualified test name
/// and the case index, so every `cargo test` run sees identical inputs.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        let seed = h
            .finish()
            .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }
}

/// A generator of values for one test argument.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws a single concrete value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_range(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.f64_range(self.start as f64, self.end as f64) as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.u64_range(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}
int_range_strategy!(u64, u32, usize, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.u64_range(0, span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i64, i32, isize);

/// `prop::*` namespace mirroring the real crate's module layout.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specifier for [`vec`]: a fixed length or a length range.
        pub trait SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize;
        }
        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }
        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.usize_range(self.start, self.end)
            }
        }

        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};

        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.usize_range(0, self.options.len());
                self.options[i].clone()
            }
        }

        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty option list");
            Select { options }
        }
    }
}

/// Everything the tests glob-import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // Leading `#![proptest_config(..)]` selects the case count.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };

    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut case: u32 = 0;
            // Cap total draws so a too-strict `prop_assume!` terminates.
            let max_draws = config.cases.saturating_mul(20).max(100);
            while accepted < config.cases && case < max_draws {
                let mut test_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                case += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut test_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {}: {}", case - 1, stringify!($name), msg);
                    }
                }
            }
            assert!(
                accepted > 0,
                "proptest {}: every generated case was rejected",
                stringify!($name)
            );
        }
    )*};

    // No config attribute: run with the default case count.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(-1.0..1.0f64, 8);
        let a = Strategy::generate(&s, &mut crate::TestRng::for_case("t", 3));
        let b = Strategy::generate(&s, &mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c = Strategy::generate(&s, &mut crate::TestRng::for_case("t", 4));
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(2.0..3.0f64), &mut rng);
            assert!((2.0..3.0).contains(&v));
            let u = Strategy::generate(&(5u64..9), &mut rng);
            assert!((5..9).contains(&u));
            let i = Strategy::generate(&(-4i32..4), &mut rng);
            assert!((-4..4).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_accepts_config_and_multiple_args(
            x in 0.0..1.0f64,
            n in prop::collection::vec(0.0..1.0f64, 1..5),
        ) {
            prop_assert!(x >= 0.0 && x < 1.0);
            prop_assert!(!n.is_empty() && n.len() < 5);
            prop_assert_eq!(n.len(), n.len());
        }

        #[test]
        fn assume_rejects_without_failing(v in 0.0..1.0f64) {
            prop_assume!(v > 0.2);
            prop_assert!(v > 0.2);
        }
    }

    proptest! {
        #[test]
        fn macro_works_without_config(choice in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!((1..=3).contains(&choice));
        }
    }
}
