//! Offline shim for the subset of `serde` this workspace uses: the two
//! derive macros, re-exported so `use serde::{Deserialize, Serialize}`
//! resolves. The derives expand to nothing (see `serde_derive` shim) —
//! sufficient because no code in the tree performs runtime
//! (de)serialization.

pub use serde_derive::{Deserialize, Serialize};
