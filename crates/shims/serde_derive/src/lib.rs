//! No-op stand-ins for serde's derive macros.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing actually serializes at runtime (there is no
//! serde_json in the tree), so accepting the syntax and emitting no code
//! is behaviour-preserving. If runtime serialization lands later, replace
//! this shim with the real crates (see crates/shims/README.md).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
