//! Property tests for the metric registry: histogram bucket
//! monotonicity and merge algebra (the sweep engine's worker-registry
//! aggregation relies on merge being order-independent).

use capgpu_telemetry::registry::{Registry, Snapshot};
use proptest::prelude::*;

const EDGES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Build a snapshot from a batch of observations. Values are dyadic
/// rationals (k/4), so float sums are exact and merge order cannot
/// perturb them — mirroring the integer-valued state the runner records.
fn snap_from(observations: &[u32], counter_bumps: u64, gauge_value: f64) -> Snapshot {
    let mut reg = Registry::new();
    let c = reg.counter("events_total", &[("device", "gpu0")]);
    let g = reg.gauge("power_watts", &[("device", "gpu0")]);
    let h = reg.histogram("latency_s", &[("device", "gpu0")], &EDGES);
    reg.inc(c, counter_bumps);
    if gauge_value >= 0.0 {
        reg.set(g, gauge_value);
    }
    for &o in observations {
        reg.observe(h, o as f64 * 0.25);
    }
    reg.snapshot()
}

fn merged(parts: &[Snapshot]) -> Snapshot {
    let mut acc = Snapshot::default();
    for p in parts {
        acc.merge(p).expect("identical layouts always merge");
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cumulative bucket counts are non-decreasing and end at `count`,
    /// for any observation stream.
    #[test]
    fn histogram_cumulative_counts_are_monotone(
        obs in prop::collection::vec(0u32..24, 0..60),
    ) {
        let snap = snap_from(&obs, 0, -1.0);
        let h = snap.histogram("latency_s", &[("device", "gpu0")]).unwrap();
        prop_assert_eq!(h.bucket_counts.len(), EDGES.len() + 1);
        let mut cum = 0u64;
        let mut prev = 0u64;
        for &c in &h.bucket_counts {
            cum += c;
            prop_assert!(cum >= prev);
            prev = cum;
        }
        prop_assert_eq!(cum, obs.len() as u64);
        prop_assert_eq!(h.count, obs.len() as u64);
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u32..24, 0..40),
        b in prop::collection::vec(0u32..24, 0..40),
        c in prop::collection::vec(0u32..24, 0..40),
        bumps in prop::collection::vec(0u64..100, 3),
        gauges in prop::collection::vec(0.0..400.0f64, 3),
    ) {
        let sa = snap_from(&a, bumps[0], gauges[0]);
        let sb = snap_from(&b, bumps[1], gauges[1]);
        let sc = snap_from(&c, bumps[2], gauges[2]);

        let mut left = sa.clone();
        left.merge(&sb).unwrap();
        left.merge(&sc).unwrap();

        let mut bc = sb.clone();
        bc.merge(&sc).unwrap();
        let mut right = sa.clone();
        right.merge(&bc).unwrap();

        prop_assert_eq!(left, right);
    }

    /// Merge is order-independent: any permutation of worker snapshots
    /// folds to the same aggregate (what sweep thread-count independence
    /// needs).
    #[test]
    fn merge_is_order_independent(
        batches in prop::collection::vec(prop::collection::vec(0u32..24, 0..30), 2..5),
        rot in 0usize..4,
    ) {
        let parts: Vec<Snapshot> = batches
            .iter()
            .enumerate()
            .map(|(i, obs)| snap_from(obs, (i as u64 + 1) * 3, 100.0 + i as f64))
            .collect();
        let forward = merged(&parts);
        let mut reversed_parts = parts.clone();
        reversed_parts.reverse();
        let reversed = merged(&reversed_parts);
        prop_assert_eq!(&forward, &reversed);
        let mut rotated_parts = parts.clone();
        rotated_parts.rotate_left(rot % parts.len().max(1));
        let rotated = merged(&rotated_parts);
        prop_assert_eq!(&forward, &rotated);
    }

    /// Merging disjoint metric sets is a union, and merging with an
    /// empty snapshot is the identity.
    #[test]
    fn empty_merge_is_identity(obs in prop::collection::vec(0u32..24, 0..40)) {
        let s = snap_from(&obs, 5, 250.0);
        let mut via_empty = Snapshot::default();
        via_empty.merge(&s).unwrap();
        prop_assert_eq!(&via_empty, &s);
        let mut other_way = s.clone();
        other_way.merge(&Snapshot::default()).unwrap();
        prop_assert_eq!(&other_way, &s);
    }
}
