//! Metric registry: counters, gauges, fixed-bucket histograms.
//!
//! Recording goes through interior-mutable [`Cell`]s so the hot path is
//! a load+store with no locking — each closed-loop runner (and each
//! sweep cell) owns its own registry, and aggregation happens on
//! immutable [`Snapshot`]s after the fact. Snapshot [`merge`]
//! (`Snapshot::merge`) is the cross-worker combiner: counters and
//! histogram buckets add, gauges resolve by a total order on
//! `(updates, value bits)`, so integer-valued state merges to the same
//! aggregate in any order. Callers that need *bitwise* determinism for
//! floating-point sums (the sweep engine) merge per-cell snapshots in
//! grid order, which is independent of thread count by construction.
//!
//! [`merge`]: Snapshot::merge

use crate::TelemetryError;
use std::cell::Cell;
use std::fmt::Write as _;

/// Handle to a registered counter (cheap `Copy` index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct Meta {
    name: String,
    labels: Vec<(String, String)>,
}

impl Meta {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        Meta {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn matches(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((k, v), (k2, v2))| k == k2 && v == v2)
    }
}

#[derive(Debug, Clone)]
struct HistogramCells {
    /// Upper bucket edges, strictly increasing; an implicit `+Inf`
    /// overflow bucket follows the last edge.
    edges: Vec<f64>,
    counts: Vec<Cell<u64>>,
    sum: Cell<f64>,
    count: Cell<u64>,
}

/// A registry of counters, gauges, and fixed-bucket histograms.
///
/// Registration (`counter`/`gauge`/`histogram`) is cold and idempotent:
/// re-registering the same name+labels returns the existing handle.
/// Recording (`inc`/`set`/`observe`) takes `&self` and is a handful of
/// instructions — cheap enough for the per-second runner hot path.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counter_meta: Vec<Meta>,
    counters: Vec<Cell<u64>>,
    gauge_meta: Vec<Meta>,
    /// (update count, value) per gauge.
    gauges: Vec<Cell<(u64, f64)>>,
    histogram_meta: Vec<Meta>,
    histograms: Vec<HistogramCells>,
    /// `metric name → help text`, rendered as `# HELP` exposition lines.
    help: Vec<(String, String)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        if let Some(i) = self
            .counter_meta
            .iter()
            .position(|m| m.matches(name, labels))
        {
            return CounterId(i);
        }
        self.counter_meta.push(Meta::new(name, labels));
        self.counters.push(Cell::new(0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        if let Some(i) = self.gauge_meta.iter().position(|m| m.matches(name, labels)) {
            return GaugeId(i);
        }
        self.gauge_meta.push(Meta::new(name, labels));
        self.gauges.push(Cell::new((0, 0.0)));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram with the given upper bucket
    /// edges (finite, strictly increasing; an implicit `+Inf` overflow
    /// bucket is appended).
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], edges: &[f64]) -> HistogramId {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]) && edges.iter().all(|e| e.is_finite()),
            "histogram edges must be finite and strictly increasing"
        );
        if let Some(i) = self
            .histogram_meta
            .iter()
            .position(|m| m.matches(name, labels))
        {
            return HistogramId(i);
        }
        self.histogram_meta.push(Meta::new(name, labels));
        self.histograms.push(HistogramCells {
            edges: edges.to_vec(),
            counts: vec![Cell::new(0); edges.len() + 1],
            sum: Cell::new(0.0),
            count: Cell::new(0),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Attach (or replace) the help text for a metric name, rendered as
    /// a `# HELP` line above the metric's `# TYPE` header in the
    /// Prometheus exposition. Metrics without registered help render no
    /// `# HELP` line, so callers that never use this see byte-identical
    /// output.
    pub fn set_help(&mut self, name: &str, help: &str) {
        match self.help.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => *h = help.to_string(),
            None => self.help.push((name.to_string(), help.to_string())),
        }
    }

    /// Increment a counter.
    #[inline]
    pub fn inc(&self, id: CounterId, by: u64) {
        let c = &self.counters[id.0];
        c.set(c.get().wrapping_add(by));
    }

    /// Set a gauge to `value` (bumps its update count).
    #[inline]
    pub fn set(&self, id: GaugeId, value: f64) {
        let g = &self.gauges[id.0];
        let (updates, _) = g.get();
        g.set((updates + 1, value));
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&self, id: HistogramId, value: f64) {
        let h = &self.histograms[id.0];
        // Small fixed bucket sets (≤ ~16 edges): a linear scan beats a
        // branchy binary search at this size and keeps the record path
        // allocation- and lock-free.
        let mut bucket = h.edges.len();
        for (i, e) in h.edges.iter().enumerate() {
            if value <= *e {
                bucket = i;
                break;
            }
        }
        let c = &h.counts[bucket];
        c.set(c.get() + 1);
        h.sum.set(h.sum.get() + value);
        h.count.set(h.count.get() + 1);
    }

    /// Freeze the registry into an immutable, mergeable snapshot with
    /// entries sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<CounterSnap> = self
            .counter_meta
            .iter()
            .zip(&self.counters)
            .map(|(m, c)| CounterSnap {
                name: m.name.clone(),
                labels: m.labels.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| key_cmp(&a.name, &a.labels, &b.name, &b.labels));
        let mut gauges: Vec<GaugeSnap> = self
            .gauge_meta
            .iter()
            .zip(&self.gauges)
            .map(|(m, g)| {
                let (updates, value) = g.get();
                GaugeSnap {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    updates,
                    value,
                }
            })
            .collect();
        gauges.sort_by(|a, b| key_cmp(&a.name, &a.labels, &b.name, &b.labels));
        let mut histograms: Vec<HistogramSnap> = self
            .histogram_meta
            .iter()
            .zip(&self.histograms)
            .map(|(m, h)| HistogramSnap {
                name: m.name.clone(),
                labels: m.labels.clone(),
                edges: h.edges.clone(),
                bucket_counts: h.counts.iter().map(Cell::get).collect(),
                sum: h.sum.get(),
                count: h.count.get(),
            })
            .collect();
        histograms.sort_by(|a, b| key_cmp(&a.name, &a.labels, &b.name, &b.labels));
        let mut help = self.help.clone();
        help.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
            help,
        }
    }
}

fn key_cmp(
    an: &str,
    al: &[(String, String)],
    bn: &str,
    bl: &[(String, String)],
) -> std::cmp::Ordering {
    an.cmp(bn).then_with(|| al.cmp(bl))
}

/// A frozen counter value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Accumulated count.
    pub value: u64,
}

/// A frozen gauge value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnap {
    /// Metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// How many times the gauge was set (merge tie-breaker).
    pub updates: u64,
    /// Last value set.
    pub value: f64,
}

/// A frozen histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnap {
    /// Metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Upper bucket edges (the `+Inf` overflow bucket is implicit).
    pub edges: Vec<f64>,
    /// Per-bucket counts; `len() == edges.len() + 1`.
    pub bucket_counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observation count.
    pub count: u64,
}

impl HistogramSnap {
    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// inside the bucket containing the target rank (the classic
    /// Prometheus `histogram_quantile` scheme). Returns `None` when the
    /// histogram is empty; the overflow bucket clamps to its lower edge.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) >= target && c > 0 {
                let lo = if i == 0 { 0.0 } else { self.edges[i - 1] };
                if i == self.edges.len() {
                    return Some(lo);
                }
                let hi = self.edges[i];
                let frac = (target - prev as f64) / c as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(*self.edges.last().unwrap_or(&0.0))
    }
}

/// An immutable, mergeable view of a [`Registry`]'s state.
///
/// Entries are sorted by `(name, labels)`, so equal registry states
/// produce equal snapshots and snapshot equality is meaningful in
/// bit-identity tests (sweep cells across thread counts).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counters, sorted by key.
    pub counters: Vec<CounterSnap>,
    /// Gauges, sorted by key.
    pub gauges: Vec<GaugeSnap>,
    /// Histograms, sorted by key.
    pub histograms: Vec<HistogramSnap>,
    /// Registered `metric name → help text` pairs, sorted by name.
    pub help: Vec<(String, String)>,
}

impl Snapshot {
    /// Fold `other` into `self`.
    ///
    /// Counters and histogram buckets add; gauges resolve to the entry
    /// with the lexicographically largest `(updates, value bits)` pair —
    /// a total order, so gauge merging is commutative and associative.
    /// Histogram `sum` uses float addition, which is exact (hence
    /// order-independent) for dyadic-rational observations; callers
    /// needing bitwise determinism on arbitrary floats merge in a fixed
    /// order (the sweep merges per-cell snapshots in grid order).
    pub fn merge(&mut self, other: &Snapshot) -> Result<(), TelemetryError> {
        for c in &other.counters {
            match self
                .counters
                .binary_search_by(|probe| key_cmp(&probe.name, &probe.labels, &c.name, &c.labels))
            {
                Ok(i) => self.counters[i].value += c.value,
                Err(i) => self.counters.insert(i, c.clone()),
            }
        }
        for g in &other.gauges {
            match self
                .gauges
                .binary_search_by(|probe| key_cmp(&probe.name, &probe.labels, &g.name, &g.labels))
            {
                Ok(i) => {
                    let mine = &mut self.gauges[i];
                    if (g.updates, g.value.to_bits()) > (mine.updates, mine.value.to_bits()) {
                        mine.updates = g.updates;
                        mine.value = g.value;
                    }
                }
                Err(i) => self.gauges.insert(i, g.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|probe| key_cmp(&probe.name, &probe.labels, &h.name, &h.labels))
            {
                Ok(i) => {
                    let mine = &mut self.histograms[i];
                    if mine.edges != h.edges {
                        return Err(TelemetryError::MergeShapeMismatch(format!(
                            "{}{}",
                            h.name,
                            render_labels(&h.labels)
                        )));
                    }
                    for (a, b) in mine.bucket_counts.iter_mut().zip(&h.bucket_counts) {
                        *a += b;
                    }
                    mine.sum += h.sum;
                    mine.count += h.count;
                }
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
        // Help is metadata: union, first writer wins on conflicts (all
        // writers register identical text in practice).
        for (name, text) in &other.help {
            if !self.help.iter().any(|(n, _)| n == name) {
                let i = self.help.partition_point(|(n, _)| n < name);
                self.help.insert(i, (name.clone(), text.clone()));
            }
        }
        Ok(())
    }

    /// Look up a counter's value by name and labels.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| meta_matches(&c.name, &c.labels, name, labels))
            .map(|c| c.value)
    }

    /// Look up a gauge's value by name and labels.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| meta_matches(&g.name, &g.labels, name, labels))
            .map(|g| g.value)
    }

    /// Look up a histogram by name and labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnap> {
        self.histograms
            .iter()
            .find(|h| meta_matches(&h.name, &h.labels, name, labels))
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render in the Prometheus text exposition format (0.0.4):
    /// `# TYPE` headers, cumulative `_bucket{le=...}` series with a
    /// `+Inf` terminator, `_sum`/`_count` companions. Output is fully
    /// determined by the snapshot contents.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for c in &self.counters {
            if c.name != last_name {
                self.write_help(&mut out, &c.name);
                let _ = writeln!(out, "# TYPE {} counter", c.name);
                last_name = &c.name;
            }
            let _ = writeln!(out, "{}{} {}", c.name, render_labels(&c.labels), c.value);
        }
        last_name = "";
        for g in &self.gauges {
            if g.name != last_name {
                self.write_help(&mut out, &g.name);
                let _ = writeln!(out, "# TYPE {} gauge", g.name);
                last_name = &g.name;
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                g.name,
                render_labels(&g.labels),
                fmt_f64(g.value)
            );
        }
        last_name = "";
        for h in &self.histograms {
            if h.name != last_name {
                self.write_help(&mut out, &h.name);
                let _ = writeln!(out, "# TYPE {} histogram", h.name);
                last_name = &h.name;
            }
            let mut cum = 0u64;
            for (i, &c) in h.bucket_counts.iter().enumerate() {
                cum += c;
                let le = if i == h.edges.len() {
                    "+Inf".to_string()
                } else {
                    fmt_f64(h.edges[i])
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    render_labels_with(&h.labels, "le", &le),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                h.name,
                render_labels(&h.labels),
                fmt_f64(h.sum)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                h.name,
                render_labels(&h.labels),
                h.count
            );
        }
        out
    }

    /// Emit the `# HELP` line for `name`, if help text is registered.
    fn write_help(&self, out: &mut String, name: &str) {
        if let Ok(i) = self.help.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&self.help[i].1));
        }
    }

    /// Render a human-readable report table: one section per metric
    /// kind, aligned columns, histogram rows with count/mean/p50/p99.
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters");
            let width = self
                .counters
                .iter()
                .map(|c| c.name.len() + render_labels(&c.labels).len())
                .max()
                .unwrap_or(0);
            for c in &self.counters {
                let key = format!("{}{}", c.name, render_labels(&c.labels));
                let _ = writeln!(out, "  {key:<width$}  {}", c.value);
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges");
            let width = self
                .gauges
                .iter()
                .map(|g| g.name.len() + render_labels(&g.labels).len())
                .max()
                .unwrap_or(0);
            for g in &self.gauges {
                let key = format!("{}{}", g.name, render_labels(&g.labels));
                let _ = writeln!(out, "  {key:<width$}  {:.4}", g.value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms");
            let width = self
                .histograms
                .iter()
                .map(|h| h.name.len() + render_labels(&h.labels).len())
                .max()
                .unwrap_or(0);
            for h in &self.histograms {
                let key = format!("{}{}", h.name, render_labels(&h.labels));
                let mean = if h.count > 0 {
                    h.sum / h.count as f64
                } else {
                    0.0
                };
                let p50 = h.quantile(0.50).unwrap_or(0.0);
                let p99 = h.quantile(0.99).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {key:<width$}  count={} mean={mean:.4} p50~{p50:.4} p99~{p99:.4}",
                    h.count
                );
            }
        }
        out
    }
}

fn meta_matches(name: &str, labels: &[(String, String)], n: &str, l: &[(&str, &str)]) -> bool {
    name == n
        && labels.len() == l.len()
        && labels
            .iter()
            .zip(l)
            .all(|((k, v), (k2, v2))| k == k2 && v == v2)
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_labels_with(labels: &[(String, String)], extra_k: &str, extra_v: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("{extra_k}=\"{}\"", escape_label(extra_v)));
    format!("{{{}}}", body.join(","))
}

/// Escape a label value per the text exposition format 0.0.4:
/// backslash, double-quote, and line-feed.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape `# HELP` text per the exposition format: backslash and
/// line-feed only (quotes are legal in help text).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Prometheus-style float rendering: integral values drop the fraction.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut reg = Registry::new();
        let a = reg.counter("hits", &[("device", "gpu0")]);
        let b = reg.counter("hits", &[("device", "gpu0")]);
        let c = reg.counter("hits", &[("device", "gpu1")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        reg.inc(a, 2);
        reg.inc(b, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("hits", &[("device", "gpu0")]), Some(5));
        assert_eq!(snap.counter_value("hits", &[("device", "gpu1")]), Some(0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut reg = Registry::new();
        let h = reg.histogram("lat", &[], &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 10.0] {
            reg.observe(h, v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat", &[]).unwrap();
        assert_eq!(hs.bucket_counts, vec![1, 2, 1, 1]);
        assert_eq!(hs.count, 5);
        assert!((hs.sum - 16.5).abs() < 1e-12);
        // p100 lands in the overflow bucket, which clamps to its lower edge.
        assert_eq!(hs.quantile(1.0), Some(4.0));
        assert!(hs.quantile(0.5).unwrap() <= 2.0);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for reg in [&mut a, &mut b] {
            let c = reg.counter("n", &[]);
            let h = reg.histogram("lat", &[], &[1.0]);
            reg.inc(c, 1);
            reg.observe(h, 0.5);
        }
        let extra = b.counter("only_b", &[]);
        b.inc(extra, 7);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot()).unwrap();
        assert_eq!(snap.counter_value("n", &[]), Some(2));
        assert_eq!(snap.counter_value("only_b", &[]), Some(7));
        assert_eq!(snap.histogram("lat", &[]).unwrap().count, 2);
    }

    #[test]
    fn merge_rejects_mismatched_edges() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.histogram("lat", &[], &[1.0]);
        b.histogram("lat", &[], &[2.0]);
        let mut snap = a.snapshot();
        assert!(snap.merge(&b.snapshot()).is_err());
    }

    #[test]
    fn gauge_merge_is_a_total_order() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let ga = a.gauge("power", &[]);
        let gb = b.gauge("power", &[]);
        a.set(ga, 100.0);
        b.set(gb, 50.0);
        b.set(gb, 60.0); // more updates wins regardless of value
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot()).unwrap();
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot()).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.gauge_value("power", &[]), Some(60.0));
    }

    /// Pins label-value escaping: backslash, double-quote, and newline
    /// must survive a scrape round-trip per the exposition format 0.0.4.
    #[test]
    fn prometheus_label_values_are_escaped() {
        let mut reg = Registry::new();
        let c = reg.counter("events_total", &[("path", "C:\\tmp\\\"run\"\nnext")]);
        reg.inc(c, 1);
        let text = reg.snapshot().to_prometheus_text();
        assert!(
            text.contains("events_total{path=\"C:\\\\tmp\\\\\\\"run\\\"\\nnext\"} 1"),
            "unexpected exposition: {text}"
        );
        // The physical line must not be broken by the raw newline.
        assert_eq!(text.lines().count(), 2, "raw newline leaked: {text}");
    }

    /// Pins `# HELP` rendering: emitted above `# TYPE`, escaped
    /// (backslash, newline), and only for metrics that registered help.
    #[test]
    fn prometheus_help_lines() {
        let mut reg = Registry::new();
        let c = reg.counter("requests_total", &[("tier", "0")]);
        let g = reg.gauge("power_watts", &[]);
        reg.inc(c, 4);
        reg.set(g, 898.5);
        reg.set_help("requests_total", "Requests served\nsince start \\ total");
        let text = reg.snapshot().to_prometheus_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "# HELP requests_total Requests served\\nsince start \\\\ total"
        );
        assert_eq!(lines[1], "# TYPE requests_total counter");
        // No help registered for the gauge: no # HELP line for it.
        assert!(!text.contains("# HELP power_watts"));
        assert!(text.contains("# TYPE power_watts gauge"));
        // Help survives snapshot merging (union, first writer wins).
        let mut merged = reg.snapshot();
        let mut other = Registry::new();
        let oc = other.counter("requests_total", &[("tier", "0")]);
        other.inc(oc, 1);
        other.set_help("requests_total", "conflicting text loses");
        other.set_help("power_watts", "Server power (W)");
        merged.merge(&other.snapshot()).unwrap();
        let mtext = merged.to_prometheus_text();
        assert!(mtext.contains("# HELP requests_total Requests served\\n"));
        assert!(mtext.contains("# HELP power_watts Server power (W)"));
    }

    #[test]
    fn prometheus_text_shape() {
        let mut reg = Registry::new();
        let c = reg.counter("requests_total", &[("tier", "0")]);
        let h = reg.histogram("latency_s", &[], &[0.5, 1.0]);
        reg.inc(c, 4);
        reg.observe(h, 0.25);
        reg.observe(h, 2.0);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{tier=\"0\"} 4"));
        assert!(text.contains("latency_s_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("latency_s_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("latency_s_sum 2.25"));
        assert!(text.contains("latency_s_count 2"));
    }
}
