//! Structured event journal for discrete control-plane events.
//!
//! The journal records *what happened and when on the sim clock* —
//! supervisor tier changes, device quarantines, fault onsets/clears,
//! SLO-bound activations, RLS refit pushes, delta-sigma carry wraps —
//! as ordered [`Event`]s rendered to JSON Lines. Because every field is
//! derived from the seeded simulation (period index, sim seconds,
//! watts), the JSONL output is byte-identical across reruns and safe to
//! commit as a golden.

use std::fmt::Write as _;

/// Journal schema version, rendered as the leading `"v"` field of every
/// JSONL record. Bump the value on any change a version-1 reader would
/// misinterpret (renamed fields, changed units, re-keyed kinds);
/// readers (`capgpu-obs`) reject records whose version they do not
/// understand rather than guessing. Purely additive fields do **not**
/// require a bump — readers ignore keys they do not know.
pub const SCHEMA_VERSION: u32 = 1;

/// A journal field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with Rust's shortest-roundtrip formatting).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on render).
    Str(String),
}

/// One discrete event, stamped with the deterministic sim clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Control period index at which the event fired.
    pub period: u64,
    /// Sim time in seconds.
    pub sim_time_s: f64,
    /// Wall-clock stamp (Unix milliseconds) for events produced by a
    /// live backend; `None` in simulation, where stamping wall time
    /// would break byte-identical reruns. Rendered as a `wall_ms` field
    /// only when present, so sim-mode JSONL output is unchanged.
    pub wall_unix_ms: Option<u64>,
    /// Event kind, e.g. `"tier_change"` or `"fault_onset"`.
    pub kind: &'static str,
    /// Additional key/value fields, in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event with no extra fields.
    pub fn new(period: u64, sim_time_s: f64, kind: &'static str) -> Self {
        Event {
            period,
            sim_time_s,
            wall_unix_ms: None,
            kind,
            fields: Vec::new(),
        }
    }

    /// Stamp the event with a live wall clock (Unix milliseconds).
    /// `None` is a no-op, so callers can pass a backend's
    /// `wall_clock_unix_ms()` straight through: deterministic backends
    /// keep the journal byte-stable, live ones get real timestamps.
    pub fn wall_ms(mut self, unix_ms: Option<u64>) -> Self {
        self.wall_unix_ms = unix_ms;
        self
    }

    /// Attach an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, Value::U64(v)));
        self
    }

    /// Attach a signed-integer field.
    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, Value::I64(v)));
        self
    }

    /// Attach a float field.
    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, Value::F64(v)));
        self
    }

    /// Attach a boolean field.
    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, Value::Bool(v)));
        self
    }

    /// Attach a string field.
    pub fn str(mut self, key: &'static str, v: &str) -> Self {
        self.fields.push((key, Value::Str(v.to_string())));
        self
    }

    /// Render this event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"v\":{},\"period\":{},\"t_s\":{},\"kind\":\"{}\"",
            SCHEMA_VERSION,
            self.period,
            fmt_json_f64(self.sim_time_s),
            self.kind
        );
        if let Some(ms) = self.wall_unix_ms {
            let _ = write!(out, ",\"wall_ms\":{ms}");
        }
        for (k, v) in &self.fields {
            let _ = write!(out, ",\"{k}\":");
            match v {
                Value::U64(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::I64(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::F64(x) => {
                    let _ = write!(out, "{}", fmt_json_f64(*x));
                }
                Value::Bool(x) => {
                    let _ = write!(out, "{x}");
                }
                Value::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape_json(s));
                }
            }
        }
        out.push('}');
        out
    }
}

/// An append-only, sim-clock-ordered event log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Journal {
    events: Vec<Event>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All recorded events, in append order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, in append order.
    pub fn of_kind<'a>(&'a self, kind: &str) -> impl Iterator<Item = &'a Event> {
        let kind = kind.to_string();
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Render the whole journal as JSON Lines (one event per line,
    /// trailing newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Write the JSONL rendering to a file.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

/// JSON-compatible float rendering: integral values stay integral
/// (JSON has no distinct int type, so `48` parses fine as a number),
/// non-finite values — which valid events never carry — degrade to
/// `null`.
fn fmt_json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_jsonl_in_order() {
        let mut j = Journal::new();
        j.push(
            Event::new(3, 12.0, "tier_change")
                .u64("from", 0)
                .u64("to", 1)
                .str("reason", "stale_meter"),
        );
        j.push(
            Event::new(5, 20.0, "quarantine")
                .u64("device", 2)
                .bool("on", true),
        );
        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"v\":1,\"period\":3,\"t_s\":12,\"kind\":\"tier_change\",\"from\":0,\"to\":1,\"reason\":\"stale_meter\"}"
        );
        assert_eq!(
            lines[1],
            "{\"v\":1,\"period\":5,\"t_s\":20,\"kind\":\"quarantine\",\"device\":2,\"on\":true}"
        );
        assert_eq!(j.of_kind("tier_change").count(), 1);
    }

    #[test]
    fn wall_clock_stamp_is_opt_in() {
        // Sim mode: no stamp, rendering unchanged.
        let sim = Event::new(1, 4.0, "period").wall_ms(None);
        assert_eq!(
            sim.to_json(),
            "{\"v\":1,\"period\":1,\"t_s\":4,\"kind\":\"period\"}"
        );
        // Live mode: stamped right after the sim clock.
        let live = Event::new(1, 4.0, "period")
            .wall_ms(Some(1_754_000_000_123))
            .f64("watts", 900.0);
        assert_eq!(
            live.to_json(),
            "{\"v\":1,\"period\":1,\"t_s\":4,\"kind\":\"period\",\"wall_ms\":1754000000123,\"watts\":900}"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        let e = Event::new(0, 0.5, "note").str("msg", "a\"b\\c\nd");
        assert_eq!(
            e.to_json(),
            "{\"v\":1,\"period\":0,\"t_s\":0.5,\"kind\":\"note\",\"msg\":\"a\\\"b\\\\c\\nd\"}"
        );
    }
}
