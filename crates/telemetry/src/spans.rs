//! Nested wall-clock spans for the control loop.
//!
//! A [`SpanStack`] times nested scopes — the runner wraps each control
//! period in a `period` span containing `sense`/`identify`/`solve`/
//! `actuate`/`serve-drain` children — and accumulates per-phase totals.
//! Phases are pre-registered to a [`SpanId`] so `enter`/`exit` on the
//! hot path is an index push/pop plus one `Instant` read (gated in
//! `perf_snapshot` as `span_enter_exit_ns`).
//!
//! Wall-clock nanoseconds are inherently non-deterministic: span data
//! must never feed a published number or a bit-identity-compared
//! artifact. Reports render them in a clearly separated section.

use std::fmt::Write as _;
use std::time::Instant;

/// Handle to a registered span phase (cheap `Copy` index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug, Clone)]
struct Slot {
    name: String,
    /// Stack depth observed at the phase's first entry, for report
    /// indentation.
    depth: usize,
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// A stack of nested timed scopes with per-phase accumulators.
#[derive(Debug, Clone, Default)]
pub struct SpanStack {
    slots: Vec<Slot>,
    active: Vec<(usize, Instant)>,
}

impl SpanStack {
    /// An empty stack.
    pub fn new() -> Self {
        SpanStack::default()
    }

    /// Register (or look up) a phase by name. Cold path.
    pub fn span(&mut self, name: &str) -> SpanId {
        if let Some(i) = self.slots.iter().position(|s| s.name == name) {
            return SpanId(i);
        }
        self.slots.push(Slot {
            name: name.to_string(),
            depth: usize::MAX,
            count: 0,
            total_ns: 0,
            max_ns: 0,
        });
        SpanId(self.slots.len() - 1)
    }

    /// Open a scope for `id`. Pairs with [`exit`](SpanStack::exit).
    #[inline]
    pub fn enter(&mut self, id: SpanId) {
        let slot = &mut self.slots[id.0];
        if slot.depth == usize::MAX {
            slot.depth = self.active.len();
        }
        self.active.push((id.0, Instant::now()));
    }

    /// Close the innermost open scope, folding its elapsed wall time
    /// into the phase accumulator and returning it (ns). No-op (0) on
    /// an empty stack.
    #[inline]
    pub fn exit(&mut self) -> u64 {
        if let Some((idx, start)) = self.active.pop() {
            let ns = start.elapsed().as_nanos() as u64;
            let slot = &mut self.slots[idx];
            slot.count += 1;
            slot.total_ns += ns;
            slot.max_ns = slot.max_ns.max(ns);
            ns
        } else {
            0
        }
    }

    /// Current nesting depth (open scopes).
    pub fn depth(&self) -> usize {
        self.active.len()
    }

    /// Freeze the accumulated per-phase statistics.
    pub fn summary(&self) -> SpanSummary {
        SpanSummary {
            phases: self
                .slots
                .iter()
                .filter(|s| s.count > 0)
                .map(|s| SpanStat {
                    name: s.name.clone(),
                    depth: if s.depth == usize::MAX { 0 } else { s.depth },
                    count: s.count,
                    total_ns: s.total_ns,
                    max_ns: s.max_ns,
                })
                .collect(),
        }
    }
}

/// Accumulated statistics for one span phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Phase name.
    pub name: String,
    /// Nesting depth at first entry (0 = outermost).
    pub depth: usize,
    /// Number of completed scopes.
    pub count: u64,
    /// Total wall time across all scopes (ns).
    pub total_ns: u64,
    /// Longest single scope (ns).
    pub max_ns: u64,
}

impl SpanStat {
    /// Mean wall time per scope (ns).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Per-run span summary, phases in registration order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanSummary {
    /// One entry per phase that completed at least one scope.
    pub phases: Vec<SpanStat>,
}

impl SpanSummary {
    /// Render an indented wall-clock table. Callers must keep this out
    /// of deterministic artifacts (the timings vary run to run).
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "span summary (wall clock, non-deterministic)");
        let width = self
            .phases
            .iter()
            .map(|p| 2 * p.depth + p.name.len())
            .max()
            .unwrap_or(0);
        for p in &self.phases {
            let indent = "  ".repeat(p.depth);
            let key = format!("{indent}{}", p.name);
            let _ = writeln!(
                out,
                "  {key:<width$}  count={:<6} total={:>10} ns  mean={:>9.1} ns  max={:>8} ns",
                p.count,
                p.total_ns,
                p.mean_ns(),
                p.max_ns
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_accumulates_per_phase() {
        let mut spans = SpanStack::new();
        let period = spans.span("period");
        let solve = spans.span("solve");
        for _ in 0..3 {
            spans.enter(period);
            spans.enter(solve);
            spans.exit();
            spans.exit();
        }
        assert_eq!(spans.depth(), 0);
        let sum = spans.summary();
        let p = sum.phases.iter().find(|p| p.name == "period").unwrap();
        let s = sum.phases.iter().find(|p| p.name == "solve").unwrap();
        assert_eq!((p.count, p.depth), (3, 0));
        assert_eq!((s.count, s.depth), (3, 1));
        // A parent scope encloses its children's wall time.
        assert!(p.total_ns >= s.total_ns);
        assert!(p.max_ns >= s.max_ns / 3);
        let report = sum.to_report();
        assert!(report.contains("period"));
        assert!(report.contains("  solve"));
    }

    #[test]
    fn exit_on_empty_stack_is_a_noop() {
        let mut spans = SpanStack::new();
        assert_eq!(spans.exit(), 0);
        assert_eq!(spans.summary().phases.len(), 0);
    }
}
