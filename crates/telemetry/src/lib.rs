//! Dependency-free observability primitives for the CapGPU stack.
//!
//! Three building blocks, each usable on its own:
//!
//! - [`registry`] — a metric [`Registry`](registry::Registry) of counters,
//!   gauges, and fixed-bucket histograms with `Cell`-based recording cheap
//!   enough for the runner hot path, plus an immutable
//!   [`Snapshot`](registry::Snapshot) with a deterministic,
//!   order-independent merge (so per-worker sweep registries combine to
//!   the same aggregate regardless of thread count or completion order),
//!   a Prometheus-text-format renderer, and a human report table.
//! - [`spans`] — nested wall-clock timed scopes
//!   (`period` → `sense`/`identify`/`solve`/`actuate`/`serve-drain`)
//!   with nanosecond totals and a per-run summary. Wall timings are
//!   *non-deterministic by nature* and must never feed a published
//!   number; callers keep them in a separate report section.
//! - [`journal`] — a structured event journal for discrete control-plane
//!   events (tier changes, quarantines, fault onsets, SLO-bound
//!   activations, RLS refits, delta-sigma carry wraps), keyed on the
//!   deterministic sim clock and rendered as JSONL.
//!
//! The determinism contract: everything a [`Snapshot`](registry::Snapshot)
//! or [`Journal`](journal::Journal) contains is derived from the seeded
//! simulation (sim-clock values, counts, watts), so two runs of the same
//! scenario produce byte-identical expositions. Only
//! [`SpanSummary`](spans::SpanSummary) carries wall-clock nanoseconds.
//!
//! ```
//! use capgpu_telemetry::registry::Registry;
//!
//! let mut reg = Registry::new();
//! let hits = reg.counter("cache_hits", &[("device", "gpu0")]);
//! let power = reg.gauge("power_watts", &[("device", "gpu0")]);
//! reg.inc(hits, 3);
//! reg.set(power, 212.5);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter_value("cache_hits", &[("device", "gpu0")]), Some(3));
//! ```

#![warn(missing_docs)]

pub mod journal;
pub mod registry;
pub mod spans;

/// Errors from telemetry operations (snapshot merging, rendering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// Two snapshots disagree on a metric's shape (kind or histogram
    /// bucket edges) under the same name+labels key.
    MergeShapeMismatch(String),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::MergeShapeMismatch(key) => {
                write!(f, "snapshot merge: incompatible metric shapes for `{key}`")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Run-level telemetry switches, embedded in a scenario as
/// `Scenario::telemetry: Option<TelemetryConfig>`.
///
/// `None` (the default everywhere) records nothing and leaves every
/// published trace byte-identical. `Some(TelemetryConfig::default())`
/// turns on the deterministic layers only — the metric registry and the
/// event journal — which are safe inside bit-identity-compared sweep
/// results. `trace_spans` additionally arms the wall-clock span stack
/// and the per-period `solve_ns`/`actuate_ns` record fields; those are
/// non-deterministic and must stay out of published artifacts, so it
/// defaults to off even when telemetry is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Also collect wall-clock control-loop spans (non-deterministic).
    pub trace_spans: bool,
}

impl TelemetryConfig {
    /// Deterministic layers only (registry + journal); spans off.
    pub fn deterministic() -> Self {
        TelemetryConfig { trace_spans: false }
    }

    /// Everything on, including wall-clock spans.
    pub fn with_spans() -> Self {
        TelemetryConfig { trace_spans: true }
    }
}
