//! Property tests for the streaming RLS identification path: the
//! incremental QR factor must agree with a one-shot batch least-squares
//! solve on the same samples whenever no forgetting is applied, because
//! with `forgetting = 1.0` both minimize the identical sum of squared
//! residuals.

use capgpu_control::sysid::{RlsIdentifier, SystemIdentifier};
use capgpu_linalg::rls::RlsFactor;
use capgpu_linalg::{lstsq, Matrix};
use proptest::prelude::*;

/// Maximum device count exercised by the random streams below.
const MAX_DEVICES: usize = 5;

/// Assembles a well-conditioned random sample stream from independently
/// drawn ingredients: `m` frequency rows of width `n` cut from a flat
/// pool spanning 435–2400 MHz (so columns are excited independently),
/// and matching power readings from an affine law plus bounded noise.
fn make_stream(
    n: usize,
    m: usize,
    flat: &[f64],
    gains: &[f64],
    offset: f64,
    noise: &[f64],
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let freqs: Vec<Vec<f64>> = (0..m)
        .map(|i| flat[i * MAX_DEVICES..i * MAX_DEVICES + n].to_vec())
        .collect();
    let powers: Vec<f64> = freqs
        .iter()
        .zip(noise.iter())
        .map(|(f, e)| {
            offset
                + f.iter()
                    .zip(gains.iter())
                    .map(|(fi, g)| fi * g)
                    .sum::<f64>()
                + e
        })
        .collect();
    (freqs, powers)
}

/// Builds the `[F | 1]` design matrix the identifiers use internally.
fn design(rows: &[Vec<f64>]) -> Matrix {
    let n = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * (n + 1));
    for r in rows {
        data.extend_from_slice(r);
        data.push(1.0);
    }
    Matrix::from_vec(rows.len(), n + 1, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With `forgetting = 1.0`, the raw QR-RLS factor reproduces the
    /// batch `lstsq::solve` coefficients, RSS and R² to 1e-9.
    #[test]
    fn rls_factor_matches_batch_lstsq(
        n in 2usize..6,
        flat in prop::collection::vec(435.0..2400.0f64, 24 * MAX_DEVICES),
        gains in prop::collection::vec(0.02..0.3f64, MAX_DEVICES),
        offset in 100.0..400.0f64,
        noise in prop::collection::vec(-3.0..3.0f64, 24),
    ) {
        let (freqs, powers) = make_stream(n, 24, &flat, &gains, offset, &noise);
        let mut factor = RlsFactor::new(n + 1, 1.0).unwrap();
        let mut row = vec![0.0; n + 1];
        for (f, p) in freqs.iter().zip(powers.iter()) {
            row[..n].copy_from_slice(f);
            row[n] = 1.0;
            factor.update(&row, *p);
        }
        let batch = lstsq::solve(&design(&freqs), &powers).unwrap();
        let streamed = factor.solve().unwrap();
        for (a, b) in streamed.iter().zip(batch.coefficients.iter()) {
            prop_assert!((a - b).abs() < 1e-9, "coeff {a} vs {b}");
        }
        prop_assert!((factor.weighted_rss() - batch.rss).abs() < 1e-9,
            "rss {} vs {}", factor.weighted_rss(), batch.rss);
        prop_assert!((factor.r_squared() - batch.r_squared).abs() < 1e-9);
    }

    /// The streaming identifier agrees with the batch identifier on the
    /// same recorded samples: same gains, offset, R², RMSE, and the same
    /// design condition number (both report σ_max/σ_min of `[F | 1]`).
    #[test]
    fn rls_identifier_matches_batch_identifier(
        n in 2usize..5,
        flat in prop::collection::vec(435.0..2400.0f64, 30 * MAX_DEVICES),
        gains in prop::collection::vec(0.02..0.3f64, MAX_DEVICES),
        offset in 100.0..400.0f64,
        noise in prop::collection::vec(-3.0..3.0f64, 30),
    ) {
        let (freqs, powers) = make_stream(n, 30, &flat, &gains, offset, &noise);
        let mut batch = SystemIdentifier::new(n);
        let mut rls = RlsIdentifier::new(n).unwrap();
        for (f, p) in freqs.iter().zip(powers.iter()) {
            batch.record(f, *p);
            rls.record(f, *p);
        }
        let a = batch.fit().unwrap();
        let b = rls.fit().unwrap();
        for (ga, gb) in a.model.gains().iter().zip(b.model.gains().iter()) {
            prop_assert!((ga - gb).abs() < 1e-9, "gain {ga} vs {gb}");
        }
        prop_assert!((a.model.offset() - b.model.offset()).abs() < 1e-7,
            "offset {} vs {}", a.model.offset(), b.model.offset());
        prop_assert!((a.r_squared - b.r_squared).abs() < 1e-9);
        prop_assert!((a.rmse_watts - b.rmse_watts).abs() < 1e-9);
        prop_assert!(
            (a.design_condition - b.design_condition).abs()
                <= 1e-6 * a.design_condition,
            "condition {} vs {}", a.design_condition, b.design_condition
        );
    }

    /// A forgetting round-trip: running with `forgetting = 1.0` through
    /// `clear()` and a second stream still matches the batch solve on the
    /// second stream alone — no state leaks across the reset.
    #[test]
    fn forgetting_one_round_trips_through_clear(
        flat1 in prop::collection::vec(435.0..2400.0f64, 16 * MAX_DEVICES),
        noise1 in prop::collection::vec(-3.0..3.0f64, 16),
        flat2 in prop::collection::vec(435.0..2400.0f64, 20 * MAX_DEVICES),
        noise2 in prop::collection::vec(-3.0..3.0f64, 20),
        gains in prop::collection::vec(0.02..0.3f64, MAX_DEVICES),
        offset in 100.0..400.0f64,
    ) {
        let (first, p_first) = make_stream(3, 16, &flat1, &gains, offset, &noise1);
        let (second, p_second) = make_stream(3, 20, &flat2, &gains, offset, &noise2);
        let mut rls = RlsIdentifier::with_forgetting(3, 1.0).unwrap();
        for (f, p) in first.iter().zip(p_first.iter()) {
            rls.record(f, *p);
        }
        rls.fit().unwrap();
        rls.clear();
        prop_assert!(rls.is_empty());
        for (f, p) in second.iter().zip(p_second.iter()) {
            rls.record(f, *p);
        }
        let fit = rls.fit().unwrap();
        let batch = lstsq::solve(&design(&second), &p_second).unwrap();
        let coeffs = fit
            .model
            .gains()
            .iter()
            .copied()
            .chain(std::iter::once(fit.model.offset()));
        for (a, b) in coeffs.zip(batch.coefficients.iter()) {
            prop_assert!((a - b).abs() < 1e-9, "coeff {a} vs {b}");
        }
    }
}
