//! Property tests for the control layer: delta-sigma averaging, system
//! identification recovery, MPC feasibility and monotonicity, stability of
//! pole-placed designs.

use capgpu_control::model::LinearPowerModel;
use capgpu_control::modulator::{uniform_levels, DeltaSigmaModulator};
use capgpu_control::mpc::{MpcConfig, MpcController};
use capgpu_control::pid::ProportionalController;
use capgpu_control::sysid::{ExcitationPlan, SystemIdentifier};
use capgpu_control::{metrics, stability};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_sigma_time_average_converges(
        target in 440.0..1340.0f64,
        step in prop::sample::select(vec![7.5, 15.0, 45.0, 90.0]),
    ) {
        let levels = uniform_levels(435.0, 1350.0, step).unwrap();
        let mut m = DeltaSigmaModulator::new(levels).unwrap();
        let n = 2000;
        let sum: f64 = (0..n).map(|_| m.next_level(target)).sum();
        let avg = sum / n as f64;
        prop_assert!((avg - target).abs() < step / 20.0,
            "avg {avg} target {target} step {step}");
    }

    #[test]
    fn delta_sigma_accumulator_bounded(
        targets in prop::collection::vec(435.0..1350.0f64, 1..200),
    ) {
        let levels = uniform_levels(435.0, 1350.0, 15.0).unwrap();
        let mut m = DeltaSigmaModulator::new(levels).unwrap();
        for t in targets {
            m.next_level(t);
            prop_assert!(m.accumulator().abs() <= m.max_gap() + 1e-9);
        }
    }

    #[test]
    fn sysid_recovers_random_gains(
        cpu_gain in 0.02..0.12f64,
        gpu_gain in 0.1..0.3f64,
        offset in 100.0..400.0f64,
    ) {
        let plan = ExcitationPlan::new(
            vec![1000.0, 435.0],
            vec![2400.0, 1350.0],
            vec![1400.0, 495.0],
            10,
        ).unwrap();
        let truth = LinearPowerModel::new(vec![cpu_gain, gpu_gain], offset).unwrap();
        let mut ident = SystemIdentifier::new(2);
        for f in plan.points() {
            ident.record(&f, truth.predict(&f));
        }
        let fit = ident.fit().unwrap();
        prop_assert!((fit.model.gains()[0] - cpu_gain).abs() < 1e-8);
        prop_assert!((fit.model.gains()[1] - gpu_gain).abs() < 1e-8);
        prop_assert!((fit.model.offset() - offset).abs() < 1e-5);
        prop_assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn mpc_step_always_within_bounds(
        f_cpu in 1000.0..2400.0f64,
        f_g1 in 435.0..1350.0f64,
        f_g2 in 435.0..1350.0f64,
        err in -300.0..300.0f64,
        w1 in 0.1..2.0f64,
        w2 in 0.1..2.0f64,
    ) {
        let model = LinearPowerModel::new(vec![0.06, 0.18, 0.18], 250.0).unwrap();
        let config = MpcConfig::paper_defaults(
            vec![1000.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0],
        );
        let c = MpcController::new(config, model).unwrap();
        let f = [f_cpu, f_g1, f_g2];
        let p = c.model().predict(&f);
        let step = c.step(p, p - err, &f, &[1.0, w1, w2], &[1000.0, 435.0, 435.0]).unwrap();
        for (j, t) in step.target_freqs.iter().enumerate() {
            prop_assert!(*t >= c.config().f_min[j] - 1e-6, "device {j} below min: {t}");
            prop_assert!(*t <= c.config().f_max[j] + 1e-6, "device {j} above max: {t}");
        }
        // The first move must (essentially) reduce |predicted error| vs
        // doing nothing. A sub-watt transient in the wrong direction is
        // legitimate: when the tracking error is already ~0, the optimizer
        // trades a tiny Q-cost for a reduction of the R-penalty
        // (frequency redistribution along nearly power-neutral
        // directions), bounded by the r_base/Q ratio.
        // The transient's worst case scales with r_base · w_max · Δf_max
        // (≈ 2e-4 · 2 · 1400 ≈ 0.6 W of penalty gradient): 2 W is a safe,
        // still-meaningful envelope.
        let err_before = err.abs();
        let err_after = (step.predicted_power - (p - err)).abs();
        prop_assert!(err_after <= err_before + 2.0,
            "error grew: {err_before} -> {err_after}");
    }

    #[test]
    fn mpc_slo_floor_always_enforced(
        floor in 500.0..1350.0f64,
        f_gpu in 435.0..1350.0f64,
        err in -100.0..100.0f64,
    ) {
        let model = LinearPowerModel::new(vec![0.18], 250.0).unwrap();
        let config = MpcConfig::paper_defaults(vec![435.0], vec![1350.0]);
        let c = MpcController::new(config, model).unwrap();
        let f = [f_gpu];
        let p = c.model().predict(&f);
        let step = c.step(p, p - err, &f, &[1.0], &[floor]).unwrap();
        prop_assert!(step.target_freqs[0] >= floor - 1e-6,
            "target {} below floor {floor}", step.target_freqs[0]);
    }

    #[test]
    fn pole_placed_controller_converges_for_any_valid_pole(
        pole in 0.0..0.95f64,
        plant_gain in 0.1..1.0f64,
    ) {
        let c = ProportionalController::pole_placed(plant_gain, pole, 0.0, 1.0e9).unwrap();
        let setpoint = 900.0;
        let mut f = 1000.0;
        let mut p = 500.0;
        let mut trace = vec![];
        for _ in 0..400 {
            let f_new = c.step(p, setpoint, f);
            p += plant_gain * (f_new - f);
            f = f_new;
            trace.push(p);
        }
        prop_assert!(metrics::settling_time(&trace, setpoint, 1.0).is_some(),
            "did not settle: final p = {p}");
    }

    #[test]
    fn mpc_unconstrained_gains_stable_for_random_models(
        a1 in 0.02..0.1f64,
        a2 in 0.1..0.3f64,
        a3 in 0.1..0.3f64,
        g in 0.4..1.6f64,
    ) {
        let model = LinearPowerModel::new(vec![a1, a2, a3], 250.0).unwrap();
        let config = MpcConfig::paper_defaults(
            vec![1000.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0],
        );
        let c = MpcController::new(config, model).unwrap();
        let (k_p, k_f) = c.unconstrained_gains().unwrap();
        let actual: Vec<f64> = c.model().gains().iter().map(|a| a * g).collect();
        prop_assert!(
            stability::is_stable(&actual, &k_p, &k_f, 0.0).unwrap(),
            "unstable at g = {g} for gains {:?}", c.model().gains()
        );
    }
}
