//! Explicit (multi-parametric) MPC fast path.
//!
//! Paper §4.3: "the computational complexity and runtime overhead of the
//! MPC controller can be further reduced by using a multi-parametric
//! approach that 1) divides the MPC control problem into an offline part
//! and an online part, and 2) solves the online part incrementally as a
//! piecewise linear function."
//!
//! For a fixed weight configuration the MPC law is piecewise affine in the
//! parameter vector `θ = [e₀; w] = [p − P_s; f − f_ref]`: within each
//! *critical region* (a fixed optimal active set) the solution is
//!
//! ```text
//!   d₀(θ) = F_A·θ + g_A
//! ```
//!
//! This module implements the online half of that scheme as a **region
//! cache**: the first time an active set `A` is encountered (via the exact
//! QP), the affine law `(F_A, g_A)` is derived by solving the equality-
//! constrained QP for basis parameters, and subsequent queries that still
//! satisfy the KKT conditions under `A` are answered with one matrix
//! multiply — microseconds instead of a full active-set solve. Any KKT
//! violation falls back to the exact QP and refreshes the cache entry.
//!
//! The exactness contract is enforced by tests: cached answers must equal
//! the exact QP's answers to numerical precision, for any parameter.

use capgpu_linalg::{vector, Matrix};

use crate::model::LinearPowerModel;
use crate::mpc::{MpcConfig, MpcController, MpcStep};
use crate::{ControlError, Result};

/// Cache key: the optimal active set, as a sorted list of constraint
/// descriptors `(cumulative step i, device j, is_upper)`.
type ActiveSet = Vec<(usize, usize, bool)>;

/// One cached critical region: the affine law valid while its active set
/// stays optimal.
#[derive(Debug, Clone)]
struct Region {
    active_set: ActiveSet,
    /// d₀ = f_matrix·θ + g_vector, θ = [e₀, w₁ … w_N].
    f_matrix: Matrix,
    g_vector: Vec<f64>,
    /// Hit counter (diagnostics).
    hits: u64,
}

/// Statistics of the explicit-MPC cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmpcStats {
    /// Queries answered by a cached affine law.
    pub fast_hits: u64,
    /// Queries that required the exact QP (cold or KKT-invalidated).
    pub exact_solves: u64,
    /// Number of cached regions.
    pub regions: usize,
}

/// Explicit-MPC wrapper around [`MpcController`].
///
/// Semantics are identical to calling [`MpcController::step`] with uniform
/// weights; the wrapper only changes the *cost* of the computation. Weight
/// or floor changes invalidate the cache (they change the QP itself, not
/// just the parameter θ).
#[derive(Debug)]
pub struct ExplicitMpc {
    inner: MpcController,
    regions: Vec<Region>,
    /// The weight/floor configuration the cache was built for.
    cached_weights: Vec<f64>,
    cached_floors: Vec<f64>,
    stats: EmpcStats,
}

/// KKT tolerance for accepting a cached region's answer.
const KKT_TOL: f64 = 1e-7;
/// Cap on cached regions (the MPC visits only a handful in practice).
const MAX_REGIONS: usize = 64;

impl ExplicitMpc {
    /// Wraps a controller.
    pub fn new(config: MpcConfig, model: LinearPowerModel) -> Result<Self> {
        let n = config.f_min.len();
        Ok(ExplicitMpc {
            inner: MpcController::new(config, model)?,
            regions: Vec::new(),
            cached_weights: vec![1.0; n],
            cached_floors: vec![f64::NEG_INFINITY; n],
            stats: EmpcStats::default(),
        })
    }

    /// The wrapped exact controller.
    pub fn inner(&self) -> &MpcController {
        &self.inner
    }

    /// Cache statistics.
    pub fn stats(&self) -> &EmpcStats {
        &self.stats
    }

    /// Clears the region cache (e.g. after re-identification).
    pub fn invalidate(&mut self) {
        self.regions.clear();
    }

    /// Replaces the power model (online re-identification) and flushes the
    /// region cache — every cached affine law was derived from the old
    /// model's gain matrix and is invalid under the new one.
    ///
    /// # Errors
    /// Propagates [`MpcController::set_model`] validation errors (device
    /// count mismatch); the cache is left untouched in that case.
    pub fn set_model(&mut self, model: LinearPowerModel) -> Result<()> {
        self.inner.set_model(model)?;
        self.invalidate();
        Ok(())
    }

    /// Computes the control step, via the cache when possible.
    ///
    /// # Errors
    /// Propagates exact-MPC errors on the slow path.
    pub fn step(
        &mut self,
        p_measured: f64,
        setpoint: f64,
        current_freqs: &[f64],
        r_weights: &[f64],
        floors: &[f64],
    ) -> Result<MpcStep> {
        // Weight or floor changes alter the QP — flush.
        if r_weights != self.cached_weights.as_slice() || floors != self.cached_floors.as_slice() {
            self.regions.clear();
            self.cached_weights = r_weights.to_vec();
            self.cached_floors = floors.to_vec();
        }

        // Fast path: try cached regions (most-recently-hit first).
        let theta = self.theta(p_measured, setpoint, current_freqs);
        for idx in 0..self.regions.len() {
            if let Some(step) = self.try_region(idx, &theta, p_measured, current_freqs, floors) {
                self.stats.fast_hits += 1;
                self.regions[idx].hits += 1;
                // Move-to-front for temporal locality.
                if idx > 0 {
                    self.regions.swap(idx, idx - 1);
                }
                return Ok(step);
            }
        }

        // Slow path: exact QP, then derive and cache the affine law.
        self.stats.exact_solves += 1;
        let step = self
            .inner
            .step(p_measured, setpoint, current_freqs, r_weights, floors)?;
        let active = self.active_set_of(&step, current_freqs, floors);
        if !self.regions.iter().any(|r| r.active_set == active) {
            if let Ok(region) = self.derive_region(active, r_weights) {
                if self.regions.len() >= MAX_REGIONS {
                    // Evict the least-hit region.
                    let min_idx = self
                        .regions
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, r)| r.hits)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    self.regions.swap_remove(min_idx);
                }
                self.regions.push(region);
                self.stats.regions = self.regions.len();
            }
        }
        Ok(step)
    }

    /// Parameter vector θ = [e₀, w₁ … w_N].
    fn theta(&self, p_measured: f64, setpoint: f64, freqs: &[f64]) -> Vec<f64> {
        let mut theta = vec![p_measured - setpoint];
        theta.extend(
            freqs
                .iter()
                .zip(self.inner.config().f_ref.iter())
                .map(|(f, r)| f - r),
        );
        theta
    }

    /// Determines which bound constraints are active at a solved step.
    fn active_set_of(&self, step: &MpcStep, freqs: &[f64], floors: &[f64]) -> ActiveSet {
        let cfg = self.inner.config();
        let n = freqs.len();
        let mut active = Vec::new();
        // Only the first cumulative position matters for d₀'s law when
        // M = 2 and later moves are free; we key on first-move saturation.
        for j in 0..n {
            let target = freqs[j] + step.first_move[j];
            let lo = floors[j].max(cfg.f_min[j]);
            if (target - cfg.f_max[j]).abs() < 1e-6 {
                active.push((0, j, true));
            } else if (target - lo).abs() < 1e-6 {
                active.push((0, j, false));
            }
        }
        active.sort_unstable();
        active
    }

    /// Derives the affine law for an active set by solving the equality-
    /// constrained QP at basis parameters (θ = 0 and each unit vector).
    fn derive_region(&self, active: ActiveSet, r_weights: &[f64]) -> Result<Region> {
        let n = self.inner.config().f_min.len();
        let n_params = 1 + n;
        // Solve at θ = 0 → g, then at each eᵢ → column i of F.
        let g_vector = self.solve_equality(&active, &vec![0.0; n_params], r_weights)?;
        let mut f_matrix = Matrix::zeros(n, n_params);
        for p in 0..n_params {
            let mut theta = vec![0.0; n_params];
            theta[p] = 1.0;
            let d = self.solve_equality(&active, &theta, r_weights)?;
            for r in 0..n {
                f_matrix[(r, p)] = d[r] - g_vector[r];
            }
        }
        Ok(Region {
            active_set: active,
            f_matrix,
            g_vector,
            hits: 0,
        })
    }

    /// Solves the MPC's equality-constrained QP for a given parameter:
    /// minimize the condensed cost subject to the active first-move bound
    /// constraints held at equality, returning d₀.
    fn solve_equality(
        &self,
        active: &ActiveSet,
        theta: &[f64],
        r_weights: &[f64],
    ) -> Result<Vec<f64>> {
        let cfg = self.inner.config();
        let model = self.inner.model();
        let n = cfg.f_min.len();
        let m = cfg.control_horizon;
        let p_h = cfg.prediction_horizon;
        let dim = m * n;
        let e0 = theta[0];
        let w = &theta[1..];

        let r_diag: Vec<f64> = (0..n)
            .map(|j| cfg.r_base * r_weights[j].max(1e-9))
            .collect();
        let mut h = Matrix::zeros(dim, dim);
        let mut g = vec![0.0; dim];
        for i in 1..=p_h {
            let q = cfg.q_weights[i - 1];
            if q == 0.0 {
                continue;
            }
            let blocks = i.min(m);
            let mut s = vec![0.0; dim];
            for l in 0..blocks {
                for j in 0..n {
                    s[l * n + j] = model.gains()[j];
                }
            }
            for a in 0..dim {
                if s[a] == 0.0 {
                    continue;
                }
                g[a] += 2.0 * q * e0 * s[a];
                for b in 0..dim {
                    h[(a, b)] += 2.0 * q * s[a] * s[b];
                }
            }
        }
        for i in 0..m {
            for a in 0..=i {
                for b in 0..=i {
                    for j in 0..n {
                        h[(a * n + j, b * n + j)] += 2.0 * r_diag[j];
                    }
                }
                for j in 0..n {
                    g[a * n + j] += 2.0 * r_diag[j] * w[j];
                }
            }
        }

        // KKT system with the active constraints as equalities. The
        // constraint "first move pins device j at bound b" is
        // d₀ⱼ = b − fⱼ; in θ-space with f = f_ref + w that right-hand side
        // is parameter-dependent, so we encode the *relative* law: for the
        // derivative columns the rhs contribution of a pinned device is
        // −wⱼ (bound − f_ref − wⱼ differentiates to −1 in wⱼ), and for the
        // constant column it is (bound − f_refⱼ).
        let k = active.len();
        let kkt_dim = dim + k;
        let mut kkt = Matrix::zeros(kkt_dim, kkt_dim);
        for r in 0..dim {
            for c in 0..dim {
                kkt[(r, c)] = h[(r, c)];
            }
        }
        let mut rhs = vec![0.0; kkt_dim];
        for r in 0..dim {
            rhs[r] = -g[r];
        }
        for (ci, &(step_i, j, upper)) in active.iter().enumerate() {
            debug_assert_eq!(step_i, 0, "explicit MPC keys on first-move bounds");
            kkt[(dim + ci, j)] = 1.0;
            kkt[(j, dim + ci)] = 1.0;
            let bound = if upper {
                cfg.f_max[j]
            } else {
                // The caller guarantees floors are baked into the cache
                // key epoch; use the cached floor (≥ f_min).
                self.cached_floors[j].max(cfg.f_min[j])
            };
            rhs[dim + ci] = bound - cfg.f_ref[j] - w[j];
        }
        let sol = capgpu_linalg::lu::Lu::new(&kkt)
            .and_then(|lu| lu.solve(&rhs))
            .map_err(ControlError::Linalg)?;
        Ok(sol[..n].to_vec())
    }

    /// Attempts to answer from region `idx`; `None` if the KKT conditions
    /// reject the cached law for this parameter.
    fn try_region(
        &self,
        idx: usize,
        theta: &[f64],
        p_measured: f64,
        freqs: &[f64],
        floors: &[f64],
    ) -> Option<MpcStep> {
        let region = &self.regions[idx];
        let cfg = self.inner.config();
        let n = freqs.len();
        let d0 = vector::add(&region.f_matrix.matvec(theta), &region.g_vector);

        // Primal feasibility of the first move.
        for j in 0..n {
            let target = freqs[j] + d0[j];
            let lo = floors[j].max(cfg.f_min[j]);
            if target < lo - KKT_TOL * (1.0 + lo.abs())
                || target > cfg.f_max[j] + KKT_TOL * (1.0 + cfg.f_max[j].abs())
            {
                return None;
            }
        }
        // Active constraints must remain exactly active (within tol) and
        // inactive ones strictly satisfied — plus a dual check via the
        // sign of the unconstrained gradient pressure.
        for &(_, j, upper) in &region.active_set {
            let target = freqs[j] + d0[j];
            let bound = if upper {
                cfg.f_max[j]
            } else {
                floors[j].max(cfg.f_min[j])
            };
            if (target - bound).abs() > 1e-4 * (1.0 + bound.abs()) {
                return None;
            }
            // Dual feasibility: the unconstrained optimum must push past
            // the bound in the pinned direction, otherwise the active set
            // is stale. Approximate with the model-level pressure: power
            // error sign vs bound direction.
            let e0 = theta[0];
            let pushes_up = e0 < 0.0; // deficit → raise frequencies
            if upper != pushes_up && region.active_set.len() == n {
                // Fully saturated in a direction the error no longer
                // supports — force the exact path.
                return None;
            }
        }

        let target_freqs: Vec<f64> = (0..n)
            .map(|j| {
                let lo = floors[j].max(cfg.f_min[j]).min(cfg.f_max[j]);
                (freqs[j] + d0[j]).clamp(lo, cfg.f_max[j])
            })
            .collect();
        let predicted = self.inner.model().predict_delta(p_measured, &d0);
        Some(MpcStep {
            target_freqs,
            first_move: d0,
            predicted_power: predicted,
            qp_iterations: 0,
            floor_clamped: false,
            active_constraints: region.active_set.len(),
            slo_floor_binding: region
                .active_set
                .iter()
                .any(|&(_, j, upper)| !upper && floors[j] > cfg.f_min[j]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make() -> (ExplicitMpc, MpcController) {
        let model = LinearPowerModel::new(vec![0.05, 0.1475, 0.1475], 330.0).unwrap();
        let config =
            MpcConfig::paper_defaults(vec![1000.0, 435.0, 435.0], vec![2400.0, 1350.0, 1350.0]);
        let empc = ExplicitMpc::new(config.clone(), model.clone()).unwrap();
        let exact = MpcController::new(config, model).unwrap();
        (empc, exact)
    }

    #[test]
    fn fast_path_matches_exact_solver() {
        let (mut empc, exact) = make();
        let weights = [1.0, 1.0, 1.0];
        let floors = [1000.0, 435.0, 435.0];
        // Repeated interior queries: first is exact (cold), rest cached.
        for k in 0..20 {
            let f = [1600.0 + 10.0 * k as f64, 900.0, 880.0];
            let p = 850.0 + k as f64;
            let fast = empc.step(p, 900.0, &f, &weights, &floors).unwrap();
            let slow = exact.step(p, 900.0, &f, &weights, &floors).unwrap();
            for j in 0..3 {
                assert!(
                    (fast.first_move[j] - slow.first_move[j]).abs() < 1e-5,
                    "k={k} j={j}: fast {} vs exact {}",
                    fast.first_move[j],
                    slow.first_move[j]
                );
            }
        }
        assert!(empc.stats().fast_hits >= 15, "{:?}", empc.stats());
    }

    #[test]
    fn saturated_region_cached_and_correct() {
        let (mut empc, exact) = make();
        let weights = [1.0, 1.0, 1.0];
        let floors = [1000.0, 435.0, 435.0];
        // Huge deficit: everything pins at f_max.
        for k in 0..5 {
            let f = [2300.0, 1300.0, 1300.0];
            let p = 600.0 + k as f64;
            let fast = empc.step(p, 1200.0, &f, &weights, &floors).unwrap();
            let slow = exact.step(p, 1200.0, &f, &weights, &floors).unwrap();
            for j in 0..3 {
                assert!((fast.target_freqs[j] - slow.target_freqs[j]).abs() < 1e-4);
            }
        }
        assert!(empc.stats().fast_hits >= 2);
    }

    #[test]
    fn set_model_flushes_cache_and_matches_exact() {
        let (mut empc, _) = make();
        let weights = [1.0, 1.0, 1.0];
        let floors = [1000.0, 435.0, 435.0];
        let f = [1600.0, 900.0, 900.0];
        for k in 0..4 {
            empc.step(850.0 + k as f64, 900.0, &f, &weights, &floors)
                .unwrap();
        }
        assert!(empc.stats().fast_hits >= 1);

        // Re-identified model: different gains → cached laws are stale.
        let new_model = LinearPowerModel::new(vec![0.08, 0.22, 0.22], 310.0).unwrap();
        empc.set_model(new_model.clone()).unwrap();
        let config =
            MpcConfig::paper_defaults(vec![1000.0, 435.0, 435.0], vec![2400.0, 1350.0, 1350.0]);
        let exact = MpcController::new(config, new_model).unwrap();
        let fast = empc.step(850.0, 900.0, &f, &weights, &floors).unwrap();
        let slow = exact.step(850.0, 900.0, &f, &weights, &floors).unwrap();
        for j in 0..3 {
            assert!(
                (fast.first_move[j] - slow.first_move[j]).abs() < 1e-5,
                "j={j}: {} vs {}",
                fast.first_move[j],
                slow.first_move[j]
            );
        }

        // Wrong device count is rejected and leaves the controller usable.
        let bad = LinearPowerModel::new(vec![0.08], 310.0).unwrap();
        assert!(empc.set_model(bad).is_err());
        assert!(empc.step(850.0, 900.0, &f, &weights, &floors).is_ok());
    }

    #[test]
    fn weight_change_invalidates_cache() {
        let (mut empc, _) = make();
        let floors = [1000.0, 435.0, 435.0];
        let f = [1600.0, 900.0, 900.0];
        empc.step(850.0, 900.0, &f, &[1.0, 1.0, 1.0], &floors)
            .unwrap();
        empc.step(851.0, 900.0, &f, &[1.0, 1.0, 1.0], &floors)
            .unwrap();
        let hits_before = empc.stats().fast_hits;
        assert!(hits_before > 0);
        // Different weights → regions flushed → exact solve again.
        empc.step(852.0, 900.0, &f, &[0.5, 1.5, 1.0], &floors)
            .unwrap();
        assert_eq!(empc.stats().fast_hits, hits_before);
        assert!(empc.stats().exact_solves >= 2);
    }

    #[test]
    fn floor_change_invalidates_cache() {
        let (mut empc, exact) = make();
        let weights = [1.0, 1.0, 1.0];
        let f = [1600.0, 900.0, 900.0];
        empc.step(850.0, 900.0, &f, &weights, &[1000.0, 435.0, 435.0])
            .unwrap();
        empc.step(850.5, 900.0, &f, &weights, &[1000.0, 435.0, 435.0])
            .unwrap();
        // Raise a floor: the cached law must not be reused blindly.
        let fast = empc
            .step(851.0, 900.0, &f, &weights, &[1000.0, 1100.0, 435.0])
            .unwrap();
        let slow = exact
            .step(851.0, 900.0, &f, &weights, &[1000.0, 1100.0, 435.0])
            .unwrap();
        for j in 0..3 {
            assert!((fast.target_freqs[j] - slow.target_freqs[j]).abs() < 1e-4);
        }
        assert!(fast.target_freqs[1] >= 1100.0 - 1e-6);
    }

    #[test]
    fn closed_loop_with_cache_converges_like_exact() {
        let (mut empc, exact) = make();
        let plant = LinearPowerModel::new(vec![0.05, 0.1475, 0.1475], 330.0).unwrap();
        let weights = [1.0, 1.0, 1.0];
        let floors = [1000.0, 435.0, 435.0];
        let mut f_fast = vec![1000.0, 435.0, 435.0];
        let mut f_slow = f_fast.clone();
        for _ in 0..30 {
            let p_fast = plant.predict(&f_fast);
            let p_slow = plant.predict(&f_slow);
            f_fast = empc
                .step(p_fast, 800.0, &f_fast, &weights, &floors)
                .unwrap()
                .target_freqs;
            f_slow = exact
                .step(p_slow, 800.0, &f_slow, &weights, &floors)
                .unwrap()
                .target_freqs;
        }
        let p_fast = plant.predict(&f_fast);
        let p_slow = plant.predict(&f_slow);
        assert!((p_fast - 800.0).abs() < 3.0, "fast {p_fast}");
        assert!(
            (p_fast - p_slow).abs() < 2.0,
            "fast {p_fast} vs slow {p_slow}"
        );
        // The cache must have served most of the loop.
        assert!(
            empc.stats().fast_hits as f64 >= 0.5 * 30.0,
            "{:?}",
            empc.stats()
        );
    }
}
