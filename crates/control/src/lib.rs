//! Control-theoretic building blocks for CapGPU.
//!
//! This crate implements the modeling and control machinery of the paper's
//! §4 independent of any particular server or workload:
//!
//! * [`model`] — the linear server power model `p = A·F + C` (Eq. 3/4) and
//!   its difference form `p(k) = p(k−1) + A·ΔF(k−1)` (Eq. 7).
//! * [`sysid`] — least-squares **system identification** with the paper's
//!   one-knob-at-a-time excitation schedule (§4.2, Fig. 2a).
//! * [`latency`] — the inference latency model `e = e_min·(f_max/f)^γ`
//!   (Eq. 8) and its inversion into per-GPU frequency floors for SLO
//!   constraints (10b)/(10c).
//! * [`mpc`] — the condensed **MIMO model-predictive controller** with
//!   prediction horizon `P`, control horizon `M`, tracking weights `Q`,
//!   per-device control penalties `R` and hard frequency constraints
//!   (Eq. 9 + 10a–10c), solved by the active-set QP from `capgpu-optim`.
//! * [`pid`] — pole-placed proportional controllers (the GPU-Only and
//!   CPU-Only baselines of §6.1 follow OptimML / IBM server-level control).
//! * [`modulator`] — the first-order **delta-sigma modulator** that
//!   realizes fractional frequency commands on discrete P-state tables
//!   (§5, "Frequency Modulators").
//! * [`stability`] — closed-loop pole analysis under multiplicative model
//!   error `A'ᵢ = gᵢ·Aᵢ` (§4.4), computing the stable gain interval.
//! * [`empc`] — the explicit / multi-parametric MPC fast path §4.3
//!   sketches: a critical-region cache answering repeat queries with one
//!   affine evaluation, falling back to the exact QP on KKT violation.
//! * [`metrics`] — settling time, overshoot and steady-state-error metrics
//!   used throughout the evaluation.

#![warn(missing_docs)]

pub mod empc;
pub mod latency;
pub mod metrics;
pub mod model;
pub mod modulator;
pub mod mpc;
pub mod pid;
pub mod stability;
pub mod sysid;

pub use latency::LatencyModel;
pub use model::LinearPowerModel;
pub use modulator::DeltaSigmaModulator;
pub use mpc::{MpcConfig, MpcController, MpcStep};
pub use pid::ProportionalController;
pub use sysid::{ExcitationPlan, RlsIdentifier, SystemIdentifier};

/// Errors produced by the control layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// Configuration is inconsistent (mismatched device counts, empty
    /// horizons, bad bounds…).
    BadConfig(&'static str),
    /// Not enough (or degenerate) excitation data for identification.
    InsufficientData(&'static str),
    /// The underlying optimizer failed.
    Optim(capgpu_optim::OptimError),
    /// The underlying linear algebra failed.
    Linalg(capgpu_linalg::LinalgError),
    /// The constraints admit no solution (e.g. SLO floor above `f_max`).
    Infeasible(&'static str),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::BadConfig(m) => write!(f, "bad controller config: {m}"),
            ControlError::InsufficientData(m) => write!(f, "insufficient data: {m}"),
            ControlError::Optim(e) => write!(f, "optimizer failure: {e}"),
            ControlError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ControlError::Infeasible(m) => write!(f, "infeasible constraints: {m}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<capgpu_optim::OptimError> for ControlError {
    fn from(e: capgpu_optim::OptimError) -> Self {
        ControlError::Optim(e)
    }
}

impl From<capgpu_linalg::LinalgError> for ControlError {
    fn from(e: capgpu_linalg::LinalgError) -> Self {
        ControlError::Linalg(e)
    }
}

/// Result alias for the control layer.
pub type Result<T> = std::result::Result<T, ControlError>;
