//! First-order delta-sigma frequency modulation (paper §5).
//!
//! "Since the new CPU and GPU frequency levels received from the controller
//! are floating-point (fractional) values, the modulator code locally
//! resolves them into a sequence of discrete frequency levels to
//! approximate the target value. … by toggling between the values 2, 2, 2,
//! and 3, the time-averaged frequency converges to the desired value."
//!
//! The modulator keeps a running quantization-error accumulator; each
//! period it emits the discrete level that drives the accumulated error
//! toward zero. The emitted sequence's time average converges to the
//! target, and the accumulator stays bounded by half the local level gap —
//! both properties are enforced by tests (including proptests).

use crate::{ControlError, Result};

/// A first-order delta-sigma modulator over a fixed discrete level table.
#[derive(Debug, Clone)]
pub struct DeltaSigmaModulator {
    /// Ascending discrete levels (e.g. supported clock frequencies, MHz).
    levels: Vec<f64>,
    /// Accumulated error: Σ(target − emitted).
    accumulator: f64,
}

impl DeltaSigmaModulator {
    /// Creates a modulator over an ascending, deduplicated level table.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] when fewer than one level is given or
    /// the table is not strictly ascending.
    pub fn new(levels: Vec<f64>) -> Result<Self> {
        if levels.is_empty() {
            return Err(ControlError::BadConfig("modulator needs >= 1 level"));
        }
        if levels.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ControlError::BadConfig(
                "modulator levels must be strictly ascending",
            ));
        }
        Ok(DeltaSigmaModulator {
            levels,
            accumulator: 0.0,
        })
    }

    /// The level table.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Current accumulated error.
    pub fn accumulator(&self) -> f64 {
        self.accumulator
    }

    /// Resets the error accumulator (e.g. on a set-point change).
    pub fn reset(&mut self) {
        self.accumulator = 0.0;
    }

    /// Emits the next discrete level for a fractional `target`.
    ///
    /// The compensated value `target + accumulator` is quantized to the
    /// nearest level; the quantization error is carried forward so the
    /// running average of emitted levels converges to the (clamped) target.
    pub fn next_level(&mut self, target: f64) -> f64 {
        self.next_level_with_carry(target).0
    }

    /// [`next_level`](DeltaSigmaModulator::next_level), also reporting
    /// whether the carried error changed the emitted level — i.e. the
    /// accumulator "wrapped" and pushed the output off the plain nearest
    /// level of the clamped target (the paper's toggle to 3 in the
    /// 2, 2, 2, 3 sequence). Telemetry journals these wraps; the flag
    /// does not alter the emitted sequence.
    pub fn next_level_with_carry(&mut self, target: f64) -> (f64, bool) {
        let clamped = target.clamp(self.levels[0], *self.levels.last().expect("non-empty"));
        let wanted = clamped + self.accumulator;
        let emitted = self.nearest_level(wanted);
        let wrapped = emitted != self.nearest_level(clamped);
        self.accumulator += clamped - emitted;
        (emitted, wrapped)
    }

    /// Nearest level to `x` (ties resolve to the lower level).
    fn nearest_level(&self, x: f64) -> f64 {
        match self
            .levels
            .binary_search_by(|l| l.partial_cmp(&x).expect("no NaN levels"))
        {
            Ok(i) => self.levels[i],
            Err(0) => self.levels[0],
            Err(i) if i == self.levels.len() => self.levels[i - 1],
            Err(i) => {
                let lo = self.levels[i - 1];
                let hi = self.levels[i];
                if x - lo <= hi - x {
                    lo
                } else {
                    hi
                }
            }
        }
    }

    /// Largest gap between adjacent levels — the bound on the accumulator.
    pub fn max_gap(&self) -> f64 {
        self.levels
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0_f64, f64::max)
    }
}

/// Builds a uniform level table `start, start+step, …, ≤ end`.
///
/// # Errors
/// [`ControlError::BadConfig`] for non-positive step or start > end.
pub fn uniform_levels(start: f64, end: f64, step: f64) -> Result<Vec<f64>> {
    if step <= 0.0 || start > end {
        return Err(ControlError::BadConfig("bad uniform level parameters"));
    }
    let mut levels = Vec::new();
    let mut v = start;
    let n = ((end - start) / step).floor() as usize;
    for _ in 0..=n {
        levels.push(v);
        v += step;
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_2ghz_toggling() {
        // The paper's example: approximate 2.25 GHz with levels {2, 3} GHz →
        // the sequence should average 2.25 by emitting 3 every 4th period.
        let mut m = DeltaSigmaModulator::new(vec![2000.0, 3000.0]).unwrap();
        let emitted: Vec<f64> = (0..8).map(|_| m.next_level(2250.0)).collect();
        let avg: f64 = emitted.iter().sum::<f64>() / emitted.len() as f64;
        assert!(
            (avg - 2250.0).abs() < 1e-9,
            "avg = {avg}, seq = {emitted:?}"
        );
        let threes = emitted.iter().filter(|&&v| v == 3000.0).count();
        assert_eq!(threes, 2, "expected 2 high emissions in 8 periods");
    }

    #[test]
    fn time_average_converges() {
        let levels = uniform_levels(435.0, 1350.0, 15.0).unwrap();
        let mut m = DeltaSigmaModulator::new(levels).unwrap();
        let target = 662.4; // not on the grid
        let n = 1000;
        let sum: f64 = (0..n).map(|_| m.next_level(target)).sum();
        let avg = sum / n as f64;
        assert!((avg - target).abs() < 0.1, "avg = {avg}");
    }

    #[test]
    fn accumulator_stays_bounded() {
        let levels = uniform_levels(0.0, 100.0, 10.0).unwrap();
        let mut m = DeltaSigmaModulator::new(levels).unwrap();
        for i in 0..500 {
            let target = 50.0 + 37.0 * ((i as f64) * 0.13).sin();
            m.next_level(target);
            assert!(
                m.accumulator().abs() <= m.max_gap(),
                "accumulator {} exceeds gap",
                m.accumulator()
            );
        }
    }

    #[test]
    fn exact_level_passes_through() {
        let mut m = DeltaSigmaModulator::new(vec![100.0, 200.0, 300.0]).unwrap();
        for _ in 0..5 {
            assert_eq!(m.next_level(200.0), 200.0);
        }
        assert_eq!(m.accumulator(), 0.0);
    }

    #[test]
    fn clamps_out_of_range_targets() {
        let mut m = DeltaSigmaModulator::new(vec![100.0, 200.0]).unwrap();
        assert_eq!(m.next_level(50.0), 100.0);
        m.reset();
        assert_eq!(m.next_level(500.0), 200.0);
        // Clamped target leaves no residual error accumulation beyond range.
        m.reset();
        for _ in 0..10 {
            m.next_level(500.0);
        }
        assert!(m.accumulator().abs() < 1e-9);
    }

    #[test]
    fn carry_wraps_flag_the_off_nearest_emissions() {
        // 2.25 GHz over {2, 3} GHz: the nearest level of the raw target
        // is always 2 GHz, so exactly the carry-driven 3 GHz emissions
        // (2 in 8 periods) report a wrap.
        let mut m = DeltaSigmaModulator::new(vec![2000.0, 3000.0]).unwrap();
        let mut plain = DeltaSigmaModulator::new(vec![2000.0, 3000.0]).unwrap();
        let mut wraps = 0;
        for _ in 0..8 {
            let (level, wrapped) = m.next_level_with_carry(2250.0);
            assert_eq!(level, plain.next_level(2250.0), "sequence unchanged");
            assert_eq!(wrapped, level == 3000.0);
            wraps += usize::from(wrapped);
        }
        assert_eq!(wraps, 2);
        // An on-grid target never wraps.
        m.reset();
        for _ in 0..5 {
            assert_eq!(m.next_level_with_carry(2000.0), (2000.0, false));
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut m = DeltaSigmaModulator::new(vec![0.0, 10.0]).unwrap();
        m.next_level(3.0);
        assert!(m.accumulator() != 0.0);
        m.reset();
        assert_eq!(m.accumulator(), 0.0);
    }

    #[test]
    fn single_level_table() {
        let mut m = DeltaSigmaModulator::new(vec![1000.0]).unwrap();
        assert_eq!(m.next_level(1234.0), 1000.0);
        assert_eq!(m.max_gap(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(DeltaSigmaModulator::new(vec![]).is_err());
        assert!(DeltaSigmaModulator::new(vec![2.0, 1.0]).is_err());
        assert!(DeltaSigmaModulator::new(vec![1.0, 1.0]).is_err());
        assert!(uniform_levels(10.0, 0.0, 1.0).is_err());
        assert!(uniform_levels(0.0, 10.0, 0.0).is_err());
    }

    #[test]
    fn uniform_levels_includes_endpoints() {
        let l = uniform_levels(435.0, 1350.0, 15.0).unwrap();
        assert_eq!(l[0], 435.0);
        assert_eq!(*l.last().unwrap(), 1350.0);
        assert_eq!(l.len(), 62);
    }
}
