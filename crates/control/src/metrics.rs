//! Trace metrics: settling time, overshoot, violations, steady-state stats.
//!
//! These quantify the power-control traces of Figs. 3–6 and 10: how fast a
//! controller settles, whether it overshoots the cap (a power *violation*
//! risks tripping breakers — the whole point of capping), and how tightly
//! it tracks at steady state. The paper computes steady-state statistics
//! over the last 80 of 100 control periods; [`steady_state`] generalizes
//! that convention.

/// Index of the first period after which the series stays within
/// `band` (absolute watts) of the set point forever. `None` if it never
/// settles.
pub fn settling_time(series: &[f64], setpoint: f64, band: f64) -> Option<usize> {
    if series.is_empty() {
        return None;
    }
    let mut settled_from = None;
    for (i, &v) in series.iter().enumerate() {
        if (v - setpoint).abs() <= band {
            if settled_from.is_none() {
                settled_from = Some(i);
            }
        } else {
            settled_from = None;
        }
    }
    settled_from
}

/// Maximum excess of the series above the set point (watts); 0 when the
/// cap is never violated. This is the paper's power-violation criterion
/// (Safe Fixed-Step "does violate the power constraint once").
pub fn max_overshoot(series: &[f64], setpoint: f64) -> f64 {
    series.iter().map(|v| v - setpoint).fold(0.0_f64, f64::max)
}

/// Number of periods in which the series exceeds `setpoint + tol`.
pub fn violation_count(series: &[f64], setpoint: f64, tol: f64) -> usize {
    series.iter().filter(|&&v| v > setpoint + tol).count()
}

/// Mean and population standard deviation over the trailing
/// `tail_fraction` of the series (the paper uses the last 80%,
/// `tail_fraction = 0.8`).
///
/// The fraction is clamped to `[0, 1]`: `0.0` (or any fraction that
/// rounds to zero samples) degrades to exactly the last sample, `1.0`
/// covers the whole series, and an empty series returns `(0.0, 0.0)`.
pub fn steady_state(series: &[f64], tail_fraction: f64) -> (f64, f64) {
    if series.is_empty() {
        return (0.0, 0.0);
    }
    // Keep at least one sample: a fraction that rounds to 0 must mean
    // "the last sample", not a silently widened (or empty) tail.
    let keep = (((series.len() as f64) * tail_fraction.clamp(0.0, 1.0)).round() as usize)
        .clamp(1, series.len());
    let tail = &series[series.len() - keep..];
    (
        capgpu_linalg::stats::mean(tail),
        capgpu_linalg::stats::std_dev(tail),
    )
}

/// Steady-state tracking error: |steady-state mean − setpoint|.
pub fn steady_state_error(series: &[f64], setpoint: f64, tail_fraction: f64) -> f64 {
    (steady_state(series, tail_fraction).0 - setpoint).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settling_detection() {
        let series = [700.0, 850.0, 890.0, 899.0, 901.0, 900.5];
        assert_eq!(settling_time(&series, 900.0, 5.0), Some(3));
        assert_eq!(settling_time(&series, 900.0, 0.1), None);
        assert_eq!(settling_time(&[], 900.0, 5.0), None);
    }

    #[test]
    fn settling_resets_on_excursion() {
        let series = [899.0, 950.0, 899.0, 900.0];
        assert_eq!(settling_time(&series, 900.0, 5.0), Some(2));
    }

    #[test]
    fn overshoot_and_violations() {
        let series = [890.0, 905.0, 910.0, 899.0];
        assert_eq!(max_overshoot(&series, 900.0), 10.0);
        assert_eq!(violation_count(&series, 900.0, 0.0), 2);
        assert_eq!(violation_count(&series, 900.0, 6.0), 1);
        assert_eq!(max_overshoot(&[880.0], 900.0), 0.0);
    }

    #[test]
    fn steady_state_last_80_percent() {
        // 10 samples; last 8 are all 900 → mean 900, std 0.
        let mut series = vec![500.0, 700.0];
        series.extend(std::iter::repeat_n(900.0, 8));
        let (mean, std) = steady_state(&series, 0.8);
        assert_eq!(mean, 900.0);
        assert_eq!(std, 0.0);
        assert_eq!(steady_state_error(&series, 905.0, 0.8), 5.0);
    }

    #[test]
    fn steady_state_full_series() {
        let series = [1.0, 2.0, 3.0];
        let (mean, _) = steady_state(&series, 1.0);
        assert_eq!(mean, 2.0);
    }

    #[test]
    fn steady_state_empty() {
        assert_eq!(steady_state(&[], 0.8), (0.0, 0.0));
    }

    #[test]
    fn steady_state_edge_fractions() {
        let series = [1.0, 2.0, 3.0, 4.0];
        // 0.0 degrades to the last sample alone.
        assert_eq!(steady_state(&series, 0.0), (4.0, 0.0));
        // Out-of-range fractions clamp instead of panicking/underflowing.
        assert_eq!(steady_state(&series, -0.5), (4.0, 0.0));
        assert_eq!(steady_state(&series, 1.0), steady_state(&series, 2.5));
        assert_eq!(steady_state(&[], 0.0), (0.0, 0.0));
        assert_eq!(steady_state(&[], 1.0), (0.0, 0.0));
    }

    #[test]
    fn steady_state_rounding_boundary_keeps_at_least_one_sample() {
        let series: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // 10 × 0.04 = 0.4 rounds to 0 kept samples: must degrade to the
        // last sample exactly, not widen to a larger tail.
        assert_eq!(steady_state(&series, 0.04), (10.0, 0.0));
        // 10 × 0.05 = 0.5 rounds away from zero → exactly 1 sample.
        assert_eq!(steady_state(&series, 0.05), (10.0, 0.0));
        // 10 × 0.15 = 1.5 rounds to 2 samples → mean of [9, 10].
        assert_eq!(steady_state(&series, 0.15), (9.5, 0.5));
        // A single-sample series is its own tail at any fraction.
        assert_eq!(steady_state(&[7.0], 0.0), (7.0, 0.0));
        assert_eq!(steady_state(&[7.0], 1.0), (7.0, 0.0));
    }
}
