//! Least-squares system identification (paper §4.2).
//!
//! "In system identification, we systematically vary one frequency input
//! (e.g., GPU frequency) while holding the other fixed (e.g., CPU
//! frequency) and record the resulting power consumption; then we reverse
//! the process. We collect these measurements into a set of linear
//! equations and solve for **A** via least square regression."
//!
//! [`ExcitationPlan`] generates exactly that schedule; [`SystemIdentifier`]
//! accumulates `(F, p)` samples from any source and produces a
//! [`LinearPowerModel`] with its R² (the paper reports R² = 0.96 on the
//! V100 testbed, Fig. 2a).

use capgpu_linalg::lstsq::LstsqFit;
use capgpu_linalg::rls::RlsFactor;
use capgpu_linalg::{lstsq, stats, svd, LinalgError, Matrix, Qr};

use crate::model::LinearPowerModel;
use crate::{ControlError, Result};

/// Ridge penalty used when the excitation is collinear — shared by the
/// batch and streaming paths so they agree in the fallback case too.
const RIDGE_FALLBACK_LAMBDA: f64 = 1e-6;

/// One-knob-at-a-time excitation schedule.
///
/// For each device in turn, sweeps that device's frequency from its minimum
/// to its maximum in `steps_per_device` steps while every other device is
/// held at its `hold` frequency.
#[derive(Debug, Clone)]
pub struct ExcitationPlan {
    /// Per-device minimum frequency (MHz).
    pub f_min: Vec<f64>,
    /// Per-device maximum frequency (MHz).
    pub f_max: Vec<f64>,
    /// Frequency each device is parked at while another is swept (MHz).
    pub hold: Vec<f64>,
    /// Sweep points per device.
    pub steps_per_device: usize,
}

impl ExcitationPlan {
    /// Creates a plan; validates bounds.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] on inconsistent lengths/bounds or fewer
    /// than 2 steps per device.
    pub fn new(
        f_min: Vec<f64>,
        f_max: Vec<f64>,
        hold: Vec<f64>,
        steps_per_device: usize,
    ) -> Result<Self> {
        let n = f_min.len();
        if n == 0 {
            return Err(ControlError::BadConfig("excitation plan needs >= 1 device"));
        }
        if f_max.len() != n || hold.len() != n {
            return Err(ControlError::BadConfig("excitation plan length mismatch"));
        }
        if f_min.iter().zip(f_max.iter()).any(|(lo, hi)| lo >= hi) {
            return Err(ControlError::BadConfig(
                "excitation plan needs f_min < f_max",
            ));
        }
        if steps_per_device < 2 {
            return Err(ControlError::BadConfig(
                "excitation needs >= 2 steps per device",
            ));
        }
        Ok(ExcitationPlan {
            f_min,
            f_max,
            hold,
            steps_per_device,
        })
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.f_min.len()
    }

    /// Total number of excitation points.
    pub fn len(&self) -> usize {
        self.num_devices() * self.steps_per_device
    }

    /// True when the plan is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th frequency vector of the schedule.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    pub fn point(&self, idx: usize) -> Vec<f64> {
        assert!(idx < self.len(), "excitation index out of range");
        let dev = idx / self.steps_per_device;
        let step = idx % self.steps_per_device;
        let mut f = self.hold.clone();
        let t = step as f64 / (self.steps_per_device - 1) as f64;
        f[dev] = self.f_min[dev] + t * (self.f_max[dev] - self.f_min[dev]);
        f
    }

    /// Iterates over all excitation points.
    pub fn points(&self) -> impl Iterator<Item = Vec<f64>> + '_ {
        (0..self.len()).map(|i| self.point(i))
    }
}

/// Accumulates `(F, p)` samples and fits the linear power model.
#[derive(Debug, Clone)]
pub struct SystemIdentifier {
    num_devices: usize,
    freqs: Vec<Vec<f64>>,
    powers: Vec<f64>,
}

/// A fitted model together with its goodness of fit.
#[derive(Debug, Clone)]
pub struct IdentifiedModel {
    /// The fitted linear power model.
    pub model: LinearPowerModel,
    /// Coefficient of determination of the fit (paper: 0.96).
    pub r_squared: f64,
    /// Root-mean-square prediction error in watts.
    pub rmse_watts: f64,
    /// Number of samples used.
    pub n_samples: usize,
    /// 2-norm condition number of the excitation design matrix — large
    /// values flag a sweep that barely moved some device (its identified
    /// gain is then untrustworthy).
    pub design_condition: f64,
}

impl SystemIdentifier {
    /// Creates an identifier for `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        SystemIdentifier {
            num_devices,
            freqs: Vec::new(),
            powers: Vec::new(),
        }
    }

    /// Records one sample: the frequency vector applied during a control
    /// period and the average power measured over that period.
    ///
    /// # Panics
    /// Panics if `freqs.len()` differs from the configured device count.
    pub fn record(&mut self, freqs: &[f64], power_watts: f64) {
        assert_eq!(freqs.len(), self.num_devices, "sample frequency length");
        self.freqs.push(freqs.to_vec());
        self.powers.push(power_watts);
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.freqs.clear();
        self.powers.clear();
    }

    /// Fits `p = A·F + C` by least squares (QR), with a tiny ridge fallback
    /// when the excitation is collinear (e.g. a stuck actuator).
    ///
    /// # Errors
    /// * [`ControlError::InsufficientData`] with fewer samples than
    ///   `num_devices + 1` (the intercept needs one more equation).
    /// * [`ControlError::Linalg`] if even the ridge fit fails.
    pub fn fit(&self) -> Result<IdentifiedModel> {
        let n = self.num_devices;
        if self.len() < n + 1 {
            return Err(ControlError::InsufficientData(
                "need at least num_devices + 1 samples",
            ));
        }
        // Design matrix [F | 1].
        let mut rows = Vec::with_capacity(self.len());
        for f in &self.freqs {
            let mut row = f.clone();
            row.push(1.0);
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&row_refs);
        let qr = Qr::new(&x).map_err(ControlError::Linalg)?;
        // Orthogonal transforms preserve singular values, so σ(X) = σ(R):
        // the condition number comes from the already-factored
        // (n+1)×(n+1) triangle instead of a second O(m·n²) SVD pass over
        // the full design.
        let design_condition = svd::condition_number(&qr.r()).unwrap_or(f64::INFINITY);
        let fit = match qr.solve_lstsq(&self.powers) {
            Ok(coefficients) => {
                let rss = qr.residual_sq(&self.powers).map_err(ControlError::Linalg)?;
                LstsqFit {
                    r_squared: stats::r_squared_from_rss(&self.powers, rss),
                    rss,
                    n_obs: self.len(),
                    coefficients,
                }
            }
            // Collinear excitation (device never moved): ridge keeps the
            // identified gains bounded instead of failing outright.
            Err(LinalgError::Singular) => {
                lstsq::solve_ridge(&x, &self.powers, RIDGE_FALLBACK_LAMBDA)
                    .map_err(ControlError::Linalg)?
            }
            Err(e) => return Err(ControlError::Linalg(e)),
        };
        let gains = fit.coefficients[..n].to_vec();
        let offset = fit.coefficients[n];
        Ok(IdentifiedModel {
            model: LinearPowerModel::new(gains, offset)?,
            r_squared: fit.r_squared,
            rmse_watts: fit.rmse(),
            n_samples: self.len(),
            design_condition,
        })
    }
}

/// Streaming recursive-least-squares identifier (paper §6.4 online
/// re-identification).
///
/// Produces the same [`IdentifiedModel`] as [`SystemIdentifier::fit`] —
/// on well-conditioned data the coefficients agree to better than 1e-9 —
/// but each [`RlsIdentifier::record`] costs `O(n²)` and `fit` costs
/// `O(n³)` *independent of the number of samples seen*, versus the batch
/// path's `O(m·n²)` design rebuild per refit. That makes a refit every
/// control period affordable, which is what lets the runner track
/// platform and workload drift continuously instead of identifying once
/// at startup.
///
/// With `forgetting < 1` old samples decay exponentially; directions of
/// the frequency space that stop being excited simply retain their last
/// identified gains (the factor scales uniformly, leaving the solution
/// unchanged there) rather than blowing up.
#[derive(Debug, Clone)]
pub struct RlsIdentifier {
    num_devices: usize,
    factor: RlsFactor,
    /// Scratch row `[F | 1]` so `record` never allocates.
    row: Vec<f64>,
}

impl RlsIdentifier {
    /// Creates a streaming identifier with no forgetting (`λ = 1`):
    /// numerically equivalent to batch least squares over all samples.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] for zero devices.
    pub fn new(num_devices: usize) -> Result<Self> {
        Self::with_forgetting(num_devices, 1.0)
    }

    /// Creates a streaming identifier with exponential forgetting
    /// `λ ∈ (0, 1]`; a sample's weight after `k` further samples is `λᵏ`.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] for zero devices or `λ` outside `(0, 1]`.
    pub fn with_forgetting(num_devices: usize, forgetting: f64) -> Result<Self> {
        if num_devices == 0 {
            return Err(ControlError::BadConfig("RLS identifier needs >= 1 device"));
        }
        let factor = RlsFactor::new(num_devices + 1, forgetting)
            .map_err(|_| ControlError::BadConfig("RLS forgetting factor must be in (0, 1]"))?;
        Ok(RlsIdentifier {
            num_devices,
            factor,
            row: vec![0.0; num_devices + 1],
        })
    }

    /// Number of devices the model covers.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// The forgetting factor `λ`.
    pub fn forgetting(&self) -> f64 {
        self.factor.forgetting()
    }

    /// Folds in one sample: the frequency vector applied during a control
    /// period and the average power measured over it. `O(n²)`,
    /// allocation-free.
    ///
    /// # Panics
    /// Panics if `freqs.len()` differs from the configured device count.
    pub fn record(&mut self, freqs: &[f64], power_watts: f64) {
        assert_eq!(freqs.len(), self.num_devices, "sample frequency length");
        self.row[..self.num_devices].copy_from_slice(freqs);
        self.row[self.num_devices] = 1.0;
        self.factor.update(&self.row, power_watts);
    }

    /// Applies one period of exponential forgetting without folding in a
    /// sample — for control periods whose observation was unusable (meter
    /// dropout, transient gating). Forgetting tracks plant variation over
    /// *time*: skipping it across observation gaps would leave stale data
    /// at full weight no matter how long ago it was collected.
    pub fn decay(&mut self) {
        self.factor.decay();
    }

    /// Number of samples folded in since construction or the last clear.
    pub fn len(&self) -> usize {
        self.factor.len()
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.factor.is_empty()
    }

    /// Discards all accumulated information.
    pub fn clear(&mut self) {
        self.factor.reset();
    }

    /// Condition number of the (weighted) excitation design — computed
    /// from the maintained triangular factor in `O(n³)`, no design-matrix
    /// rebuild. Infinite while the excitation is rank deficient.
    pub fn design_condition(&self) -> f64 {
        self.factor.condition()
    }

    /// Solves for the current model. `O(n³)` worst case, independent of
    /// how many samples have been folded in.
    ///
    /// # Errors
    /// * [`ControlError::InsufficientData`] with fewer samples than
    ///   `num_devices + 1`.
    /// * [`ControlError::Linalg`] if even the ridge fallback fails.
    pub fn fit(&self) -> Result<IdentifiedModel> {
        let n = self.num_devices;
        if self.len() < n + 1 {
            return Err(ControlError::InsufficientData(
                "need at least num_devices + 1 samples",
            ));
        }
        let coefficients = match self.factor.solve() {
            Ok(c) => c,
            // Same ridge fallback (and penalty) as the batch path, solved
            // from the factor: (RᵀR + λI)β = Rᵀd is exactly the batch
            // ridge normal system because RᵀR = XᵀWX and Rᵀd = XᵀWy.
            Err(LinalgError::Singular) => self
                .factor
                .solve_ridge(RIDGE_FALLBACK_LAMBDA)
                .map_err(ControlError::Linalg)?,
            Err(e) => return Err(ControlError::Linalg(e)),
        };
        let gains = coefficients[..n].to_vec();
        let offset = coefficients[n];
        Ok(IdentifiedModel {
            model: LinearPowerModel::new(gains, offset)?,
            r_squared: self.factor.r_squared(),
            rmse_watts: self.factor.rmse(),
            n_samples: self.len(),
            design_condition: self.factor.condition(),
        })
    }
}

/// Streaming *restricted* re-identification: one common gain scale plus
/// the power offset, anchored to a previously identified model.
///
/// Closed-loop operation cannot support a full per-device refit: the loop
/// visits a one-dimensional manifold of operating points (all clocks move
/// together to follow the cap), utilization shifts along it confound the
/// per-device slopes, and small excitation probes cannot separate
/// `n + 1` parameters from 2 W of period-averaged meter noise. What the
/// closed-loop data *does* identify crisply is the overall loop gain and
/// the power level, so this tracker fits exactly those two and preserves
/// the anchor's gain *ratios* — the part the closed loop cannot
/// re-measure.
///
/// The two parameters deliberately live on **separate estimators with
/// separate timescales**:
///
/// * The **scale** `s` (model `p ≈ s·x + b` with `x = ĝ·F` the anchor's
///   predicted dynamic power) is scalar RLS over *consecutive-sample
///   differences* `Δp ≈ s·Δx`. Differencing cancels the offset exactly,
///   so an offset step — a power jump at constant clocks, the signature
///   of load or platform drift — produces one residual with `Δx ≈ 0`,
///   i.e. **no leverage on the slope**. (A joint 2-parameter fit fails
///   here: the step pivots the regression line and the scale estimate
///   collapses long before the forgetting factor recovers.)
/// * The **offset** `b` is an exponentially weighted mean of the slope
///   residual `p − s·x`, which tracks level steps within a few periods.
///
/// `O(1)` per sample.
#[derive(Debug, Clone)]
pub struct ScaledModelTracker {
    anchor: LinearPowerModel,
    /// Scalar RLS on `(Δx, Δp)` difference pairs.
    slope: RlsFactor,
    /// EWMA offset level and its smoothing weight `α = 1 − λ`.
    offset: f64,
    alpha: f64,
    /// Previous recorded sample `(x, p)`. Differences are formed between
    /// *successive usable* samples even across gated gaps — both
    /// endpoints are quasi-steady, so the pair measures the true slope
    /// unless the plant changed inside the gap, and influence clipping
    /// bounds the damage of that one straddling pair.
    prev: Option<(f64, f64)>,
    /// Telemetry: samples folded in via [`record`](Self::record).
    samples_recorded: u64,
    /// Telemetry: difference pairs accepted into the slope RLS.
    pairs_accepted: u64,
    /// Telemetry: difference pairs dropped by the plausibility gate.
    pairs_rejected: u64,
}

/// Influence cap for one difference pair, in anchor-dynamic-power units
/// (W). A pair's least-squares weight grows with `Δx²`, so one
/// large-swing pair — e.g. the pair straddling an actual plant change —
/// could outweigh dozens of probe-sized pairs. Pairs beyond the cap are
/// rescaled onto it (both `Δx` and `Δp`, preserving their slope), the
/// scalar analogue of Huber influence clipping.
const DIFF_INFLUENCE_CAP: f64 = 10.0;

impl ScaledModelTracker {
    /// Creates a tracker anchored to `model` with forgetting `λ ∈ (0, 1]`.
    ///
    /// The scale starts at the anchor's own (`s = 1`) with the weight of
    /// roughly one strong excitation step, so early refits stay near the
    /// anchor until real difference evidence accumulates.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] for `λ` outside `(0, 1]`.
    pub fn new(model: LinearPowerModel, forgetting: f64) -> Result<Self> {
        let mut slope = RlsFactor::new(1, forgetting)
            .map_err(|_| ControlError::BadConfig("RLS forgetting factor must be in (0, 1]"))?;
        // Prior: one synthetic difference of ~30 W dynamic swing asserting
        // the anchor's slope.
        slope.update(&[30.0], 30.0);
        let offset = model.offset();
        Ok(ScaledModelTracker {
            anchor: model,
            slope,
            offset,
            alpha: 1.0 - forgetting,
            prev: None,
            samples_recorded: 0,
            pairs_accepted: 0,
            pairs_rejected: 0,
        })
    }

    /// The anchor model whose gain ratios are preserved.
    pub fn anchor(&self) -> &LinearPowerModel {
        &self.anchor
    }

    /// Folds in one sample (frequency vector applied over a control
    /// period, average power measured over it).
    ///
    /// # Panics
    /// Panics if `freqs.len()` differs from the anchor's device count.
    pub fn record(&mut self, freqs: &[f64], power_watts: f64) {
        let x = self.anchor.predict(freqs) - self.anchor.offset();
        if let Some((x_prev, p_prev)) = self.prev {
            let (mut dx, mut dp) = (x - x_prev, power_watts - p_prev);
            if dx.abs() > DIFF_INFLUENCE_CAP {
                let r = DIFF_INFLUENCE_CAP / dx.abs();
                dx *= r;
                dp *= r;
            }
            // Plausibility gate: a pair whose ΔP is far outside anything a
            // sane slope could produce from its Δx is an *offset step*
            // (plant drift, workload shift) caught mid-pair, not slope
            // evidence — e.g. a probe-sized Δx paired with a +250 W gain
            // jump implies slope ≈ −25 and would pivot the scalar fit.
            // Such pairs carry no usable slope information; drop them and
            // let the offset EWMA absorb the level change instead.
            let s = self.scale();
            let tol = 3.0 * dx.abs() * s.max(1.0) + 15.0;
            if (dp - s * dx).abs() <= tol {
                self.slope.update(&[dx], dp);
                self.pairs_accepted += 1;
            } else {
                self.pairs_rejected += 1;
            }
        }
        let s = self.scale();
        self.offset += self.alpha * (power_watts - s * x - self.offset);
        self.prev = Some((x, power_watts));
        self.samples_recorded += 1;
    }

    /// One period of forgetting without a sample (meter dropout or
    /// transient gating) — see [`RlsIdentifier::decay`]. The difference
    /// chain is left intact: the next usable sample pairs with the last
    /// usable one across the gap.
    pub fn decay(&mut self) {
        self.slope.decay();
    }

    /// Number of difference pairs folded in (including the anchor prior).
    pub fn len(&self) -> usize {
        self.slope.len()
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.prev.is_none() && self.slope.len() <= 1
    }

    /// Current scale estimate (`1.0` until evidence says otherwise).
    pub fn scale(&self) -> f64 {
        match self.slope.solve() {
            Ok(c) if c[0].is_finite() && c[0] > 0.0 => c[0],
            _ => 1.0,
        }
    }

    /// Current offset-level estimate (W).
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Condition number of the restricted (difference) design — `1.0`
    /// once any difference evidence exists, infinite before. Kept so the
    /// scenario-level condition guard applies uniformly to whichever
    /// tracker feeds the controller.
    pub fn design_condition(&self) -> f64 {
        self.slope.condition()
    }

    /// Exponentially weighted R² of the difference fit.
    pub fn r_squared(&self) -> f64 {
        self.slope.r_squared()
    }

    /// Exponentially weighted RMSE (W) of the difference fit.
    pub fn rmse(&self) -> f64 {
        self.slope.rmse()
    }

    /// Telemetry counters since construction: `(samples recorded,
    /// difference pairs accepted, pairs dropped by the plausibility
    /// gate)`. Deterministic — derived purely from the sample stream.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.samples_recorded,
            self.pairs_accepted,
            self.pairs_rejected,
        )
    }

    /// The rescaled model (`scale · ĝ`, tracked offset) plus the scale.
    ///
    /// # Errors
    /// * [`ControlError::InsufficientData`] until at least 3 difference
    ///   pairs beyond the prior have been folded in.
    pub fn fit(&self) -> Result<(LinearPowerModel, f64)> {
        if self.len() < 4 {
            return Err(ControlError::InsufficientData(
                "need difference pairs beyond the anchor prior",
            ));
        }
        let scale = self.scale();
        let gains = self.anchor.gains().iter().map(|g| g * scale).collect();
        Ok((LinearPowerModel::new(gains, self.offset)?, scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan2() -> ExcitationPlan {
        // CPU 1000–2400 MHz held at 1400; GPU 435–1350 MHz held at 495 —
        // the paper's §4.2 example schedule.
        ExcitationPlan::new(
            vec![1000.0, 435.0],
            vec![2400.0, 1350.0],
            vec![1400.0, 495.0],
            8,
        )
        .unwrap()
    }

    #[test]
    fn plan_sweeps_one_device_at_a_time() {
        let plan = plan2();
        assert_eq!(plan.len(), 16);
        // First half sweeps device 0 with device 1 held.
        for i in 0..8 {
            let p = plan.point(i);
            assert_eq!(p[1], 495.0);
        }
        // Second half sweeps device 1 with device 0 held.
        for i in 8..16 {
            let p = plan.point(i);
            assert_eq!(p[0], 1400.0);
        }
        // Sweep endpoints hit the bounds exactly.
        assert_eq!(plan.point(0)[0], 1000.0);
        assert_eq!(plan.point(7)[0], 2400.0);
        assert_eq!(plan.point(8)[1], 435.0);
        assert_eq!(plan.point(15)[1], 1350.0);
    }

    #[test]
    fn plan_validation() {
        assert!(ExcitationPlan::new(vec![], vec![], vec![], 4).is_err());
        assert!(ExcitationPlan::new(vec![2.0], vec![1.0], vec![1.5], 4).is_err());
        assert!(ExcitationPlan::new(vec![1.0], vec![2.0], vec![1.5], 1).is_err());
        assert!(ExcitationPlan::new(vec![1.0], vec![2.0, 3.0], vec![1.5], 4).is_err());
    }

    #[test]
    fn identifies_exact_linear_system() {
        let plan = plan2();
        let truth = LinearPowerModel::new(vec![0.06, 0.18], 250.0).unwrap();
        let mut ident = SystemIdentifier::new(2);
        for f in plan.points() {
            ident.record(&f, truth.predict(&f));
        }
        let fitted = ident.fit().unwrap();
        assert!((fitted.model.gains()[0] - 0.06).abs() < 1e-9);
        assert!((fitted.model.gains()[1] - 0.18).abs() < 1e-9);
        assert!((fitted.model.offset() - 250.0).abs() < 1e-6);
        assert!(fitted.r_squared > 0.999999);
        assert!(fitted.rmse_watts < 1e-6);
    }

    #[test]
    fn identifies_noisy_system_with_high_r2() {
        // Deterministic pseudo-noise; the paper reports R² = 0.96.
        let plan = plan2();
        let truth = LinearPowerModel::new(vec![0.06, 0.18], 250.0).unwrap();
        let mut ident = SystemIdentifier::new(2);
        for (i, f) in plan.points().enumerate() {
            let noise = 6.0 * ((i as f64 * 2.399).sin()); // ±6 W sensor noise
            ident.record(&f, truth.predict(&f) + noise);
        }
        let fitted = ident.fit().unwrap();
        assert!(fitted.r_squared > 0.9, "R² = {}", fitted.r_squared);
        assert!((fitted.model.gains()[1] - 0.18).abs() < 0.05);
    }

    #[test]
    fn insufficient_data_rejected() {
        let mut ident = SystemIdentifier::new(3);
        ident.record(&[1.0, 2.0, 3.0], 100.0);
        ident.record(&[2.0, 2.0, 3.0], 101.0);
        assert!(matches!(
            ident.fit().unwrap_err(),
            ControlError::InsufficientData(_)
        ));
    }

    #[test]
    fn collinear_excitation_falls_back_to_ridge() {
        // Device 1 never moves → its gain is unidentifiable; ridge returns
        // a bounded estimate instead of erroring.
        let mut ident = SystemIdentifier::new(2);
        for i in 0..10 {
            let f = [1000.0 + 100.0 * i as f64, 495.0];
            ident.record(&f, 250.0 + 0.06 * f[0] + 0.18 * 495.0);
        }
        let fitted = ident.fit().unwrap();
        assert!((fitted.model.gains()[0] - 0.06).abs() < 1e-3);
        assert!(fitted.model.gains()[1].abs() < 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut ident = SystemIdentifier::new(1);
        ident.record(&[1.0], 2.0);
        assert_eq!(ident.len(), 1);
        ident.clear();
        assert!(ident.is_empty());
    }

    #[test]
    fn rls_matches_batch_on_excitation_sweep() {
        // The tentpole invariant: streaming fit == batch fit to ≤ 1e-9 on
        // well-conditioned data, including all diagnostics.
        let plan = plan2();
        let truth = LinearPowerModel::new(vec![0.06, 0.18], 250.0).unwrap();
        let mut batch = SystemIdentifier::new(2);
        let mut rls = RlsIdentifier::new(2).unwrap();
        for (i, f) in plan.points().enumerate() {
            let noise = 4.0 * ((i as f64 * 2.399).sin());
            let p = truth.predict(&f) + noise;
            batch.record(&f, p);
            rls.record(&f, p);
        }
        let b = batch.fit().unwrap();
        let s = rls.fit().unwrap();
        for (bg, sg) in b.model.gains().iter().zip(s.model.gains()) {
            assert!((bg - sg).abs() < 1e-9, "gain {bg} vs {sg}");
        }
        assert!((b.model.offset() - s.model.offset()).abs() < 1e-7);
        assert!((b.r_squared - s.r_squared).abs() < 1e-9);
        assert!((b.rmse_watts - s.rmse_watts).abs() < 1e-9);
        assert_eq!(b.n_samples, s.n_samples);
        let rel = (b.design_condition - s.design_condition).abs() / b.design_condition;
        assert!(
            rel < 1e-9,
            "{} vs {}",
            b.design_condition,
            s.design_condition
        );
    }

    #[test]
    fn rls_insufficient_data_rejected() {
        let mut rls = RlsIdentifier::new(2).unwrap();
        rls.record(&[1400.0, 495.0], 300.0);
        rls.record(&[1600.0, 495.0], 310.0);
        assert!(matches!(
            rls.fit().unwrap_err(),
            ControlError::InsufficientData(_)
        ));
    }

    #[test]
    fn rls_collinear_excitation_falls_back_to_ridge() {
        // Mirror of the batch ridge-fallback test: the streaming path must
        // also survive a stuck actuator, with the same bounded gains.
        let mut batch = SystemIdentifier::new(2);
        let mut rls = RlsIdentifier::new(2).unwrap();
        for i in 0..10 {
            let f = [1000.0 + 100.0 * i as f64, 495.0];
            let p = 250.0 + 0.06 * f[0] + 0.18 * 495.0;
            batch.record(&f, p);
            rls.record(&f, p);
        }
        assert!(rls.design_condition().is_infinite());
        let b = batch.fit().unwrap();
        let s = rls.fit().unwrap();
        assert!((s.model.gains()[0] - 0.06).abs() < 1e-3);
        assert!((b.model.gains()[0] - s.model.gains()[0]).abs() < 1e-6);
        assert!((b.model.gains()[1] - s.model.gains()[1]).abs() < 1e-6);
    }

    #[test]
    fn rls_forgetting_tracks_gain_drift() {
        // A gain change (e.g. utilization shift scaling effective W/MHz)
        // is tracked by the forgetting identifier but averaged away by the
        // no-forgetting one.
        let plan = plan2();
        let before = LinearPowerModel::new(vec![0.06, 0.18], 250.0).unwrap();
        let after = LinearPowerModel::new(vec![0.09, 0.30], 250.0).unwrap();
        let mut rls = RlsIdentifier::with_forgetting(2, 0.9).unwrap();
        for f in plan.points() {
            rls.record(&f, before.predict(&f));
        }
        for _ in 0..4 {
            for f in plan.points() {
                rls.record(&f, after.predict(&f));
            }
        }
        let fitted = rls.fit().unwrap();
        assert!(
            (fitted.model.gains()[1] - 0.30).abs() < 0.01,
            "tracked GPU gain {}",
            fitted.model.gains()[1]
        );
    }

    #[test]
    fn rls_validation_and_clear() {
        assert!(RlsIdentifier::new(0).is_err());
        assert!(RlsIdentifier::with_forgetting(2, 0.0).is_err());
        assert!(RlsIdentifier::with_forgetting(2, 1.1).is_err());
        let mut rls = RlsIdentifier::new(1).unwrap();
        rls.record(&[1.0], 2.0);
        assert_eq!(rls.len(), 1);
        rls.clear();
        assert!(rls.is_empty());
    }
}
