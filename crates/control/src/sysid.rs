//! Least-squares system identification (paper §4.2).
//!
//! "In system identification, we systematically vary one frequency input
//! (e.g., GPU frequency) while holding the other fixed (e.g., CPU
//! frequency) and record the resulting power consumption; then we reverse
//! the process. We collect these measurements into a set of linear
//! equations and solve for **A** via least square regression."
//!
//! [`ExcitationPlan`] generates exactly that schedule; [`SystemIdentifier`]
//! accumulates `(F, p)` samples from any source and produces a
//! [`LinearPowerModel`] with its R² (the paper reports R² = 0.96 on the
//! V100 testbed, Fig. 2a).

use capgpu_linalg::{lstsq, Matrix};

use crate::model::LinearPowerModel;
use crate::{ControlError, Result};

/// One-knob-at-a-time excitation schedule.
///
/// For each device in turn, sweeps that device's frequency from its minimum
/// to its maximum in `steps_per_device` steps while every other device is
/// held at its `hold` frequency.
#[derive(Debug, Clone)]
pub struct ExcitationPlan {
    /// Per-device minimum frequency (MHz).
    pub f_min: Vec<f64>,
    /// Per-device maximum frequency (MHz).
    pub f_max: Vec<f64>,
    /// Frequency each device is parked at while another is swept (MHz).
    pub hold: Vec<f64>,
    /// Sweep points per device.
    pub steps_per_device: usize,
}

impl ExcitationPlan {
    /// Creates a plan; validates bounds.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] on inconsistent lengths/bounds or fewer
    /// than 2 steps per device.
    pub fn new(
        f_min: Vec<f64>,
        f_max: Vec<f64>,
        hold: Vec<f64>,
        steps_per_device: usize,
    ) -> Result<Self> {
        let n = f_min.len();
        if n == 0 {
            return Err(ControlError::BadConfig("excitation plan needs >= 1 device"));
        }
        if f_max.len() != n || hold.len() != n {
            return Err(ControlError::BadConfig("excitation plan length mismatch"));
        }
        if f_min.iter().zip(f_max.iter()).any(|(lo, hi)| lo >= hi) {
            return Err(ControlError::BadConfig(
                "excitation plan needs f_min < f_max",
            ));
        }
        if steps_per_device < 2 {
            return Err(ControlError::BadConfig(
                "excitation needs >= 2 steps per device",
            ));
        }
        Ok(ExcitationPlan {
            f_min,
            f_max,
            hold,
            steps_per_device,
        })
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.f_min.len()
    }

    /// Total number of excitation points.
    pub fn len(&self) -> usize {
        self.num_devices() * self.steps_per_device
    }

    /// True when the plan is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `idx`-th frequency vector of the schedule.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    pub fn point(&self, idx: usize) -> Vec<f64> {
        assert!(idx < self.len(), "excitation index out of range");
        let dev = idx / self.steps_per_device;
        let step = idx % self.steps_per_device;
        let mut f = self.hold.clone();
        let t = step as f64 / (self.steps_per_device - 1) as f64;
        f[dev] = self.f_min[dev] + t * (self.f_max[dev] - self.f_min[dev]);
        f
    }

    /// Iterates over all excitation points.
    pub fn points(&self) -> impl Iterator<Item = Vec<f64>> + '_ {
        (0..self.len()).map(|i| self.point(i))
    }
}

/// Accumulates `(F, p)` samples and fits the linear power model.
#[derive(Debug, Clone)]
pub struct SystemIdentifier {
    num_devices: usize,
    freqs: Vec<Vec<f64>>,
    powers: Vec<f64>,
}

/// A fitted model together with its goodness of fit.
#[derive(Debug, Clone)]
pub struct IdentifiedModel {
    /// The fitted linear power model.
    pub model: LinearPowerModel,
    /// Coefficient of determination of the fit (paper: 0.96).
    pub r_squared: f64,
    /// Root-mean-square prediction error in watts.
    pub rmse_watts: f64,
    /// Number of samples used.
    pub n_samples: usize,
    /// 2-norm condition number of the excitation design matrix — large
    /// values flag a sweep that barely moved some device (its identified
    /// gain is then untrustworthy).
    pub design_condition: f64,
}

impl SystemIdentifier {
    /// Creates an identifier for `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        SystemIdentifier {
            num_devices,
            freqs: Vec::new(),
            powers: Vec::new(),
        }
    }

    /// Records one sample: the frequency vector applied during a control
    /// period and the average power measured over that period.
    ///
    /// # Panics
    /// Panics if `freqs.len()` differs from the configured device count.
    pub fn record(&mut self, freqs: &[f64], power_watts: f64) {
        assert_eq!(freqs.len(), self.num_devices, "sample frequency length");
        self.freqs.push(freqs.to_vec());
        self.powers.push(power_watts);
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.freqs.clear();
        self.powers.clear();
    }

    /// Fits `p = A·F + C` by least squares (QR), with a tiny ridge fallback
    /// when the excitation is collinear (e.g. a stuck actuator).
    ///
    /// # Errors
    /// * [`ControlError::InsufficientData`] with fewer samples than
    ///   `num_devices + 1` (the intercept needs one more equation).
    /// * [`ControlError::Linalg`] if even the ridge fit fails.
    pub fn fit(&self) -> Result<IdentifiedModel> {
        let n = self.num_devices;
        if self.len() < n + 1 {
            return Err(ControlError::InsufficientData(
                "need at least num_devices + 1 samples",
            ));
        }
        // Design matrix [F | 1].
        let mut rows = Vec::with_capacity(self.len());
        for f in &self.freqs {
            let mut row = f.clone();
            row.push(1.0);
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&row_refs);
        let fit = match lstsq::solve(&x, &self.powers) {
            Ok(fit) => fit,
            // Collinear excitation (device never moved): ridge keeps the
            // identified gains bounded instead of failing outright.
            Err(capgpu_linalg::LinalgError::Singular) => {
                lstsq::solve_ridge(&x, &self.powers, 1e-6).map_err(ControlError::Linalg)?
            }
            Err(e) => return Err(ControlError::Linalg(e)),
        };
        let gains = fit.coefficients[..n].to_vec();
        let offset = fit.coefficients[n];
        let design_condition = capgpu_linalg::svd::condition_number(&x).unwrap_or(f64::INFINITY);
        Ok(IdentifiedModel {
            model: LinearPowerModel::new(gains, offset)?,
            r_squared: fit.r_squared,
            rmse_watts: fit.rmse(),
            n_samples: self.len(),
            design_condition,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan2() -> ExcitationPlan {
        // CPU 1000–2400 MHz held at 1400; GPU 435–1350 MHz held at 495 —
        // the paper's §4.2 example schedule.
        ExcitationPlan::new(
            vec![1000.0, 435.0],
            vec![2400.0, 1350.0],
            vec![1400.0, 495.0],
            8,
        )
        .unwrap()
    }

    #[test]
    fn plan_sweeps_one_device_at_a_time() {
        let plan = plan2();
        assert_eq!(plan.len(), 16);
        // First half sweeps device 0 with device 1 held.
        for i in 0..8 {
            let p = plan.point(i);
            assert_eq!(p[1], 495.0);
        }
        // Second half sweeps device 1 with device 0 held.
        for i in 8..16 {
            let p = plan.point(i);
            assert_eq!(p[0], 1400.0);
        }
        // Sweep endpoints hit the bounds exactly.
        assert_eq!(plan.point(0)[0], 1000.0);
        assert_eq!(plan.point(7)[0], 2400.0);
        assert_eq!(plan.point(8)[1], 435.0);
        assert_eq!(plan.point(15)[1], 1350.0);
    }

    #[test]
    fn plan_validation() {
        assert!(ExcitationPlan::new(vec![], vec![], vec![], 4).is_err());
        assert!(ExcitationPlan::new(vec![2.0], vec![1.0], vec![1.5], 4).is_err());
        assert!(ExcitationPlan::new(vec![1.0], vec![2.0], vec![1.5], 1).is_err());
        assert!(ExcitationPlan::new(vec![1.0], vec![2.0, 3.0], vec![1.5], 4).is_err());
    }

    #[test]
    fn identifies_exact_linear_system() {
        let plan = plan2();
        let truth = LinearPowerModel::new(vec![0.06, 0.18], 250.0).unwrap();
        let mut ident = SystemIdentifier::new(2);
        for f in plan.points() {
            ident.record(&f, truth.predict(&f));
        }
        let fitted = ident.fit().unwrap();
        assert!((fitted.model.gains()[0] - 0.06).abs() < 1e-9);
        assert!((fitted.model.gains()[1] - 0.18).abs() < 1e-9);
        assert!((fitted.model.offset() - 250.0).abs() < 1e-6);
        assert!(fitted.r_squared > 0.999999);
        assert!(fitted.rmse_watts < 1e-6);
    }

    #[test]
    fn identifies_noisy_system_with_high_r2() {
        // Deterministic pseudo-noise; the paper reports R² = 0.96.
        let plan = plan2();
        let truth = LinearPowerModel::new(vec![0.06, 0.18], 250.0).unwrap();
        let mut ident = SystemIdentifier::new(2);
        for (i, f) in plan.points().enumerate() {
            let noise = 6.0 * ((i as f64 * 2.399).sin()); // ±6 W sensor noise
            ident.record(&f, truth.predict(&f) + noise);
        }
        let fitted = ident.fit().unwrap();
        assert!(fitted.r_squared > 0.9, "R² = {}", fitted.r_squared);
        assert!((fitted.model.gains()[1] - 0.18).abs() < 0.05);
    }

    #[test]
    fn insufficient_data_rejected() {
        let mut ident = SystemIdentifier::new(3);
        ident.record(&[1.0, 2.0, 3.0], 100.0);
        ident.record(&[2.0, 2.0, 3.0], 101.0);
        assert!(matches!(
            ident.fit().unwrap_err(),
            ControlError::InsufficientData(_)
        ));
    }

    #[test]
    fn collinear_excitation_falls_back_to_ridge() {
        // Device 1 never moves → its gain is unidentifiable; ridge returns
        // a bounded estimate instead of erroring.
        let mut ident = SystemIdentifier::new(2);
        for i in 0..10 {
            let f = [1000.0 + 100.0 * i as f64, 495.0];
            ident.record(&f, 250.0 + 0.06 * f[0] + 0.18 * 495.0);
        }
        let fitted = ident.fit().unwrap();
        assert!((fitted.model.gains()[0] - 0.06).abs() < 1e-3);
        assert!(fitted.model.gains()[1].abs() < 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut ident = SystemIdentifier::new(1);
        ident.record(&[1.0], 2.0);
        assert_eq!(ident.len(), 1);
        ident.clear();
        assert!(ident.is_empty());
    }
}
