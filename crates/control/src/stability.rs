//! Closed-loop stability analysis under model error (paper §4.4).
//!
//! The paper's four-step recipe, implemented literally:
//!
//! 1. **Nominal control inputs** — the unconstrained MPC first move is a
//!    linear feedback `d₀ = −K_p·(p − P_s) − K_f·(f − f_ref)` (extracted by
//!    [`crate::mpc::MpcController::unconstrained_gains`]).
//! 2. **Actual system model** — the true gains are `A'ᵢ = gᵢ·Aᵢ` for
//!    unknown multiplicative errors `gᵢ`.
//! 3. **Closed-loop system** — substituting the nominal law into the
//!    actual plant. Because the plant's power is a static function of the
//!    frequencies (`p = A'·f + C`), the *minimal* closed-loop state is the
//!    frequency vector alone:
//!
//!    ```text
//!      f⁺ = f − K_p·(A'·f + C − P_s) − K_f·(f − f_ref)
//!         = (I − K_p·A'ᵀ − K_f)·f + const
//!    ```
//!
//!    (A naive composite `[p; f]` realization carries the structural
//!    invariant `p − A'·f = C` and with it an eigenvalue pinned at exactly
//!    1, which says nothing about convergence — the minimal realization
//!    avoids that artifact.)
//!
//! 4. **Pole analysis** — the loop is stable iff all eigenvalues of the
//!    `N×N` matrix `I − K_p·A'ᵀ − K_f` lie strictly inside the unit
//!    circle; sweeping `g` yields the guaranteed-stable range of model
//!    error.

use capgpu_linalg::{eig, Matrix};

use crate::{ControlError, Result};

/// Builds the minimal closed-loop state matrix `I − K_p·A'ᵀ − K_f` for
/// actual plant gains `a_actual`, proportional feedback `k_p` and
/// frequency feedback `k_f`. State: the device frequency vector.
///
/// # Errors
/// [`ControlError::BadConfig`] on dimension mismatches.
pub fn closed_loop_matrix(a_actual: &[f64], k_p: &[f64], k_f: &Matrix) -> Result<Matrix> {
    let n = a_actual.len();
    if k_p.len() != n || k_f.shape() != (n, n) {
        return Err(ControlError::BadConfig("closed-loop dimension mismatch"));
    }
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let eye = if i == j { 1.0 } else { 0.0 };
            m[(i, j)] = eye - k_p[i] * a_actual[j] - k_f[(i, j)];
        }
    }
    Ok(m)
}

/// Spectral radius of the closed loop; stable iff `< 1`.
///
/// # Errors
/// Propagates matrix-construction and eigenvalue errors.
pub fn closed_loop_spectral_radius(a_actual: &[f64], k_p: &[f64], k_f: &Matrix) -> Result<f64> {
    let m = closed_loop_matrix(a_actual, k_p, k_f)?;
    eig::spectral_radius(&m).map_err(ControlError::Linalg)
}

/// True when the closed loop with the given actual gains is asymptotically
/// stable (spectral radius strictly below `1 − margin`).
///
/// # Errors
/// Propagates eigenvalue-computation failures.
pub fn is_stable(a_actual: &[f64], k_p: &[f64], k_f: &Matrix, margin: f64) -> Result<bool> {
    Ok(closed_loop_spectral_radius(a_actual, k_p, k_f)? < 1.0 - margin)
}

/// The scalar pole `1 − Σ gᵢAᵢK_pᵢ` of the pure power loop (no frequency
/// feedback, `K_f = 0`) — the paper's simplest pole expression.
pub fn scalar_pole(a_nominal: &[f64], g: &[f64], k_p: &[f64]) -> f64 {
    assert_eq!(a_nominal.len(), g.len());
    assert_eq!(a_nominal.len(), k_p.len());
    1.0 - a_nominal
        .iter()
        .zip(g.iter())
        .zip(k_p.iter())
        .map(|((a, gi), k)| a * gi * k)
        .sum::<f64>()
}

/// Sweeps a **uniform** gain multiplier `g` (same error on every device)
/// over `[g_lo, g_hi]` and returns the largest contiguous interval
/// containing `g = 1` for which the composite loop is stable.
///
/// Returns `None` if the loop is unstable even at the nominal model
/// (`g = 1`), which indicates a mis-designed controller.
///
/// # Errors
/// Propagates eigenvalue-computation failures.
pub fn uniform_gain_stability_interval(
    a_nominal: &[f64],
    k_p: &[f64],
    k_f: &Matrix,
    g_lo: f64,
    g_hi: f64,
    steps: usize,
) -> Result<Option<(f64, f64)>> {
    assert!(steps >= 2, "need at least 2 sweep steps");
    assert!(g_lo < 1.0 && g_hi > 1.0, "sweep must bracket g = 1");
    let probe = |g: f64| -> Result<bool> {
        let actual: Vec<f64> = a_nominal.iter().map(|a| a * g).collect();
        is_stable(&actual, k_p, k_f, 0.0)
    };
    if !probe(1.0)? {
        return Ok(None);
    }
    let dg = (g_hi - g_lo) / steps as f64;
    // Walk down from 1 until instability.
    let mut lo = g_lo;
    let mut g = 1.0;
    while g - dg >= g_lo {
        g -= dg;
        if !probe(g)? {
            lo = g + dg;
            break;
        }
    }
    // Walk up from 1 until instability.
    let mut hi = g_hi;
    let mut g = 1.0;
    while g + dg <= g_hi {
        g += dg;
        if !probe(g)? {
            hi = g - dg;
            break;
        }
    }
    Ok(Some((lo, hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearPowerModel;
    use crate::mpc::{MpcConfig, MpcController};

    fn paper_controller() -> MpcController {
        let model = LinearPowerModel::new(vec![0.06, 0.18, 0.18, 0.18], 250.0).unwrap();
        let config = MpcConfig::paper_defaults(
            vec![1000.0, 435.0, 435.0, 435.0],
            vec![2400.0, 1350.0, 1350.0, 1350.0],
        );
        MpcController::new(config, model).unwrap()
    }

    #[test]
    fn nominal_loop_is_stable() {
        let c = paper_controller();
        let (k_p, k_f) = c.unconstrained_gains().unwrap();
        let rho = closed_loop_spectral_radius(c.model().gains(), &k_p, &k_f).unwrap();
        assert!(rho < 1.0, "nominal spectral radius {rho}");
    }

    #[test]
    fn stability_survives_large_gain_error() {
        // The paper's claim: stability holds while each Aᵢ stays within a
        // derived bound. Verify ±50% uniform error keeps the loop stable.
        let c = paper_controller();
        let (k_p, k_f) = c.unconstrained_gains().unwrap();
        for g in [0.5, 0.8, 1.0, 1.2, 1.5] {
            let actual: Vec<f64> = c.model().gains().iter().map(|a| a * g).collect();
            assert!(
                is_stable(&actual, &k_p, &k_f, 0.0).unwrap(),
                "unstable at g = {g}"
            );
        }
    }

    #[test]
    fn stability_interval_brackets_one() {
        let c = paper_controller();
        let (k_p, k_f) = c.unconstrained_gains().unwrap();
        let (lo, hi) =
            uniform_gain_stability_interval(c.model().gains(), &k_p, &k_f, 0.05, 6.0, 120)
                .unwrap()
                .expect("nominal loop must be stable");
        assert!(lo < 1.0 && hi > 1.0, "interval ({lo}, {hi})");
        assert!(
            hi > 1.4,
            "should tolerate >40% overshoot in gains, hi = {hi}"
        );
    }

    #[test]
    fn scalar_pole_formula() {
        let a = [0.5, 0.5];
        let k = [0.4, 0.4];
        // Σ aᵢkᵢ = 0.4 → pole 0.6.
        assert!((scalar_pole(&a, &[1.0, 1.0], &k) - 0.6).abs() < 1e-12);
        // Double the true gains: Σ = 0.8 → pole 0.2.
        assert!((scalar_pole(&a, &[2.0, 2.0], &k) - 0.2).abs() < 1e-12);
        // 5× gains: Σ = 2 → pole −1 (marginal).
        assert!((scalar_pole(&a, &[5.0, 5.0], &k) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn closed_loop_matrix_entries() {
        let k_f = Matrix::zeros(2, 2);
        let m = closed_loop_matrix(&[0.1, 0.2], &[1.0, 1.0], &k_f).unwrap();
        assert_eq!(m.shape(), (2, 2));
        // M = I − k_p aᵀ: [[1−0.1, −0.2], [−0.1, 1−0.2]].
        assert!((m[(0, 0)] - 0.9).abs() < 1e-12);
        assert!((m[(0, 1)] + 0.2).abs() < 1e-12);
        assert!((m[(1, 0)] + 0.1).abs() < 1e-12);
        assert!((m[(1, 1)] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn without_frequency_feedback_matrix_pole_matches_scalar() {
        // K_f = 0 decouples: poles are {1 − ΣaK, 1, …} — the power pole
        // must match the scalar formula.
        let a = [0.3, 0.2];
        let k_p = [0.5, 0.5];
        let k_f = Matrix::zeros(2, 2);
        let m = closed_loop_matrix(&a, &k_p, &k_f).unwrap();
        let eigs = capgpu_linalg::eig::eigenvalues(&m).unwrap();
        let expected = scalar_pole(&a, &[1.0, 1.0], &k_p);
        assert!(
            eigs.iter()
                .any(|e| (e.re - expected).abs() < 1e-8 && e.im.abs() < 1e-8),
            "poles {eigs:?} missing {expected}"
        );
    }

    #[test]
    fn unstable_controller_detected() {
        // Absurdly aggressive K_p destabilizes the loop.
        let a = [0.5];
        let k_p = [10.0]; // pole 1 − 5 = −4
        let k_f = Matrix::zeros(1, 1);
        assert!(!is_stable(&a, &k_p, &k_f, 0.0).unwrap());
        assert!(
            uniform_gain_stability_interval(&a, &k_p, &k_f, 0.1, 3.0, 30)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn dimension_validation() {
        let k_f = Matrix::zeros(2, 2);
        assert!(closed_loop_matrix(&[0.1], &[1.0, 2.0], &k_f).is_err());
        assert!(closed_loop_matrix(&[0.1, 0.2], &[1.0], &k_f).is_err());
        let bad_kf = Matrix::zeros(1, 2);
        assert!(closed_loop_matrix(&[0.1, 0.2], &[1.0, 2.0], &bad_kf).is_err());
    }
}
