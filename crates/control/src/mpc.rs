//! The CapGPU MIMO model-predictive controller (paper §4.3, Eq. 9 + 10a–c).
//!
//! # Condensed formulation
//!
//! With prediction horizon `P`, control horizon `M` and `N` devices, the
//! decision vector stacks the `M` frequency moves: `d = [d₀; …; d_{M−1}]`,
//! `d ∈ R^{M·N}`. From the difference model (Eq. 7) the predicted power is
//!
//! ```text
//!   p(k+i|k) = p(k) + A · Σ_{l < min(i,M)} d_l
//! ```
//!
//! so the tracking error `p(k+i|k) − P_s` is affine in `d` and the paper's
//! cost (Eq. 9),
//!
//! ```text
//!   V = Σ_{i=1}^{P} Q(i)·‖p(k+i|k) − P_s‖² +
//!       Σ_{i=0}^{M−1} ‖d(k+i|k) + f(k+i|k) − f_ref‖²_{R(i)}
//! ```
//!
//! is a strictly convex quadratic. Constraint (10a) bounds every cumulative
//! frequency; constraints (10b)+(10c) reduce to per-GPU frequency floors
//! (see [`crate::latency`]). Each control period solves one small QP with
//! the active-set method and applies only the first move `d₀` (receding
//! horizon).
//!
//! # Weight semantics
//!
//! `R` is per-device. The paper: "to handle varying workloads, the
//! controller can assign larger weights to busier components by normalizing
//! and inverting their throughput" — a device with a *small* `R_j` is
//! penalized less for sitting above `f_ref = f_min` and therefore settles
//! at a higher frequency. At an interior optimum the excess frequency of
//! device `j` is proportional to `A_j / R_j`, which is exactly the
//! throughput-proportional allocation the weight assigner in the `capgpu`
//! crate produces.

use std::cell::RefCell;

use capgpu_linalg::{vector, Matrix};
use capgpu_optim::boxqp::{self, BoxFactor, BoxQp, BoxQpProblem, VarState};
use capgpu_optim::qp::{ActiveSetQp, LinearConstraint, QpProblem};

use crate::model::LinearPowerModel;
use crate::{ControlError, Result};

/// Static MPC configuration.
#[derive(Debug, Clone)]
pub struct MpcConfig {
    /// Prediction horizon `P` (paper: 8).
    pub prediction_horizon: usize,
    /// Control horizon `M ≤ P` (paper: 2).
    pub control_horizon: usize,
    /// Tracking weights `Q(i)`, one per prediction step (defaults to 1.0).
    pub q_weights: Vec<f64>,
    /// Base control-penalty scale multiplied by the per-step weights.
    pub r_base: f64,
    /// Hard per-device minimum frequencies (MHz).
    pub f_min: Vec<f64>,
    /// Hard per-device maximum frequencies (MHz).
    pub f_max: Vec<f64>,
    /// Reference frequency `f_ref` in the control penalty (paper uses
    /// `f_min`; kept configurable for ablations).
    pub f_ref: Vec<f64>,
    /// Optional per-device slew limit on a single move `|d₀ⱼ|` (MHz).
    pub max_step: Option<Vec<f64>>,
    /// Opt-in structure-exploiting fast solver. When set, the condensed QP
    /// is solved in *cumulative-move* coordinates `cᵢ = Σ_{l≤i} dₗ`, where
    /// every constraint is a separable per-variable box and the Hessian is
    /// block diagonal, using [`capgpu_optim::boxqp`] plus an explicit-MPC
    /// region table (cached affine law per active set, KKT-checked per
    /// period, iterative fallback on miss). Off by default: the default
    /// path — and every published trace — uses the generic active-set
    /// solver. Both paths minimize the same strictly convex QP, so they
    /// agree to solver tolerance; within the fast path, warm/cold starts
    /// and table hits/misses are bit-identical (see DESIGN.md §15).
    pub fast_solver: bool,
}

impl MpcConfig {
    /// Paper-default configuration (`P = 8`, `M = 2`, `Q = 1`,
    /// `f_ref = f_min`) for the given frequency ranges.
    pub fn paper_defaults(f_min: Vec<f64>, f_max: Vec<f64>) -> Self {
        let f_ref = f_min.clone();
        MpcConfig {
            prediction_horizon: 8,
            control_horizon: 2,
            q_weights: vec![1.0; 8],
            r_base: 2e-4,
            f_min,
            f_max,
            f_ref,
            max_step: None,
            fast_solver: false,
        }
    }

    fn validate(&self) -> Result<usize> {
        let n = self.f_min.len();
        if n == 0 {
            return Err(ControlError::BadConfig("MPC needs >= 1 device"));
        }
        if self.f_max.len() != n || self.f_ref.len() != n {
            return Err(ControlError::BadConfig("MPC bound length mismatch"));
        }
        if let Some(ms) = &self.max_step {
            if ms.len() != n {
                return Err(ControlError::BadConfig("max_step length mismatch"));
            }
            if ms.iter().any(|s| *s <= 0.0) {
                return Err(ControlError::BadConfig("max_step must be positive"));
            }
        }
        if self.prediction_horizon == 0 {
            return Err(ControlError::BadConfig("prediction horizon must be >= 1"));
        }
        if self.control_horizon == 0 || self.control_horizon > self.prediction_horizon {
            return Err(ControlError::BadConfig(
                "control horizon must be in 1..=prediction horizon",
            ));
        }
        if self.q_weights.len() != self.prediction_horizon {
            return Err(ControlError::BadConfig("q_weights length != P"));
        }
        if self.q_weights.iter().any(|q| *q < 0.0) || self.r_base <= 0.0 {
            return Err(ControlError::BadConfig(
                "weights must be non-negative, r_base > 0",
            ));
        }
        if self
            .f_min
            .iter()
            .zip(self.f_max.iter())
            .any(|(lo, hi)| lo >= hi)
        {
            return Err(ControlError::BadConfig("MPC needs f_min < f_max"));
        }
        Ok(n)
    }
}

/// Result of one MPC control period.
#[derive(Debug, Clone)]
pub struct MpcStep {
    /// New frequency targets (current + first move), already clamped to the
    /// effective bounds. Fractional — feed them to a delta-sigma modulator.
    pub target_freqs: Vec<f64>,
    /// The applied first move `d₀` (MHz per device).
    pub first_move: Vec<f64>,
    /// Power predicted by the model after the first move.
    pub predicted_power: f64,
    /// Active-set iterations the QP solve took.
    pub qp_iterations: usize,
    /// True when an SLO floor exceeded a device's reachable range and had
    /// to be clamped (best-effort; see module docs).
    pub floor_clamped: bool,
    /// Constraint rows active at the optimum (frequency-range and slew
    /// bounds, plus SLO floors). Telemetry: which bound shaped the move.
    pub active_constraints: usize,
    /// True when an active lower bound is an SLO-*raised* floor (above
    /// the hardware `f_min`) — the paper's (10b) latency bound binding
    /// the solve — including the infeasible-start floor-jump fallback.
    pub slo_floor_binding: bool,
}

/// Cross-period cache of everything in the condensed QP that does not
/// depend on the measured power: the tracking rows, the tracking part of
/// the Hessian, the assembled problem (whose gradient and bound RHS are
/// rewritten in place each period), and the previous period's active set
/// for warm-starting the solver.
#[derive(Debug, Clone)]
struct StepCache {
    /// Tracking rows `sᵢ = A·Cᵢ` for `i ∈ 1..=P` (index `i − 1`).
    rows: Vec<Vec<f64>>,
    /// Tracking (Q) part of the Hessian: `2·Σ Qᵢ·sᵢsᵢᵀ`.
    h_q: Matrix,
    /// `r_diag` baked into `qp.hessian`; the Hessian is reassembled from
    /// `h_q` only when the per-device weights change.
    r_diag: Vec<f64>,
    /// Assembled QP. Constraint normals and the Hessian structure are
    /// static; gradient and constraint RHS are updated per period.
    qp: QpProblem,
    /// Active set of the previous period's solution (warm-start hint).
    warm_active: Option<Vec<usize>>,
}

/// KKT tolerance (scaled by the gradient magnitude) for accepting a cached
/// explicit-MPC region without re-running the iterative solver.
const FAST_KKT_TOL: f64 = 1e-7;
/// Maximum cached explicit-MPC regions before round-robin replacement.
const MAX_FAST_REGIONS: usize = 64;

/// One explicit-MPC region: the affine control law of a fixed active set,
/// stored as the frozen free-set factorization. Evaluating it for the
/// period's `(g, lo, hi)` reproduces the iterative solver's polish step bit
/// for bit, so a KKT-validated hit equals the full solve exactly.
#[derive(Debug, Clone)]
struct FastRegion {
    /// Active-set signature (per-variable bound state) keying this region.
    states: Vec<VarState>,
    /// Cached Cholesky factor of `H_FF` over this region's free set.
    factor: BoxFactor,
}

/// Cross-period cache of the fast (cumulative-coordinate) solver path.
#[derive(Debug, Clone)]
struct FastCache {
    /// `r_diag` baked into the box Hessian.
    r_diag: Vec<f64>,
    /// Aggregated tracking weights `Q̄_b = Σ_{i: min(i,M)−1 = b} Q(i)`.
    qbar: Vec<f64>,
    /// Box QP in cumulative coordinates; the Hessian is static per
    /// `(model, r_diag)`, gradient and bounds are rewritten each period.
    qp: BoxQpProblem,
    /// Final bound states of the previous period (warm hint + region key).
    warm: Option<Vec<VarState>>,
    /// Explicit-MPC region table.
    regions: Vec<FastRegion>,
    /// Round-robin replacement cursor once the table is full.
    insert_at: usize,
    /// Explicit-table hits (periods solved by a cached law alone).
    hits: u64,
    /// Explicit-table misses (periods that ran the iterative solver).
    misses: u64,
}

/// The receding-horizon MPC controller.
#[derive(Debug, Clone)]
pub struct MpcController {
    config: MpcConfig,
    model: LinearPowerModel,
    num_devices: usize,
    solver: ActiveSetQp,
    box_solver: BoxQp,
    /// Lazily built per-period cache ([`StepCache`]); interior mutability
    /// keeps `step(&self)` — the controller is logically immutable.
    cache: RefCell<Option<StepCache>>,
    /// Fast-path cache ([`FastCache`]); only populated when
    /// [`MpcConfig::fast_solver`] is set.
    fast: RefCell<Option<FastCache>>,
}

impl MpcController {
    /// Creates a controller for a previously identified power model.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] if the configuration is inconsistent or
    /// the model's device count disagrees with the bounds.
    pub fn new(config: MpcConfig, model: LinearPowerModel) -> Result<Self> {
        let n = config.validate()?;
        if model.num_devices() != n {
            return Err(ControlError::BadConfig(
                "model device count != config device count",
            ));
        }
        Ok(MpcController {
            config,
            model,
            num_devices: n,
            solver: ActiveSetQp::default(),
            box_solver: BoxQp::default(),
            cache: RefCell::new(None),
            fast: RefCell::new(None),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// The power model currently in use.
    pub fn model(&self) -> &LinearPowerModel {
        &self.model
    }

    /// Replaces the power model (online re-identification).
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] on device-count mismatch.
    pub fn set_model(&mut self, model: LinearPowerModel) -> Result<()> {
        if model.num_devices() != self.num_devices {
            return Err(ControlError::BadConfig("model device count changed"));
        }
        self.model = model;
        // Tracking rows (and so the cached Hessians) depend on the gains.
        *self.cache.borrow_mut() = None;
        *self.fast.borrow_mut() = None;
        Ok(())
    }

    /// Explicit-MPC region-table statistics of the fast path:
    /// `(hits, misses)` — periods solved by a cached affine law alone vs
    /// periods that ran the iterative box solver. `(0, 0)` until the fast
    /// path has stepped.
    pub fn fast_solver_stats(&self) -> (u64, u64) {
        self.fast
            .borrow()
            .as_ref()
            .map_or((0, 0), |c| (c.hits, c.misses))
    }

    /// Discards all fast-path state (warm-start hint and explicit region
    /// table). Diagnostics/ablation hook: forces the next fast solve to be
    /// fully cold. The deterministic polish makes the cold re-solve
    /// bit-identical to the warm one for the same inputs.
    pub fn reset_fast_path(&self) {
        if let Some(c) = self.fast.borrow_mut().as_mut() {
            c.warm = None;
            c.regions.clear();
            c.insert_at = 0;
        }
    }

    /// Builds the selector row `s_i = A·C_i` (power sensitivity of
    /// prediction step `i ∈ 1..=P` to the stacked decision vector).
    fn tracking_row(&self, i: usize) -> Vec<f64> {
        let n = self.num_devices;
        let m = self.config.control_horizon;
        let blocks = i.min(m);
        let mut row = vec![0.0; m * n];
        for l in 0..blocks {
            for j in 0..n {
                row[l * n + j] = self.model.gains()[j];
            }
        }
        row
    }

    /// Validates step inputs and computes the effective per-device floors:
    /// SLO floors can only tighten the hard minimum; a floor above `f_max`
    /// is clamped (best effort) and flagged.
    fn effective_floors(
        &self,
        current_freqs: &[f64],
        r_weights: &[f64],
        floors: &[f64],
    ) -> Result<(Vec<f64>, bool)> {
        let n = self.num_devices;
        if current_freqs.len() != n || r_weights.len() != n || floors.len() != n {
            return Err(ControlError::BadConfig("MPC step input length mismatch"));
        }
        if r_weights.iter().any(|w| *w < 0.0) {
            return Err(ControlError::BadConfig("r_weights must be non-negative"));
        }
        let mut floor_clamped = false;
        let f_lo: Vec<f64> = (0..n)
            .map(|j| {
                let lo = floors[j].max(self.config.f_min[j]);
                if lo > self.config.f_max[j] {
                    floor_clamped = true;
                    self.config.f_max[j]
                } else {
                    lo
                }
            })
            .collect();
        Ok((f_lo, floor_clamped))
    }

    /// True when any effective floor sits above the hardware minimum —
    /// i.e. an SLO raised it.
    fn floor_raised(f_lo: &[f64], f_min: &[f64]) -> bool {
        f_lo.iter().zip(f_min).any(|(lo, fm)| lo > fm)
    }

    /// True when the solution's active set pins a *lower* cumulative
    /// bound whose floor is SLO-raised (above hardware `f_min`): the
    /// (10b) latency bound is what shaped this move. Box rows are laid
    /// out as `2·(i·n + j)` (upper) / `2·(i·n + j) + 1` (lower) for
    /// `i ∈ 0..m`, `j ∈ 0..n`; slew rows (≥ `2·m·n`) never encode SLOs.
    fn active_slo_floor(active: &[usize], f_lo: &[f64], f_min: &[f64], n: usize, m: usize) -> bool {
        active
            .iter()
            .any(|&r| r < 2 * m * n && r % 2 == 1 && f_lo[(r / 2) % n] > f_min[(r / 2) % n])
    }

    /// Feasible start: d = 0 unless the floor was raised above (or f_max
    /// dropped below) the current frequency; then the first block jumps to
    /// the nearest feasible frequency (clipped by the slew limit).
    fn feasible_start(&self, f_now: &[f64], f_lo: &[f64]) -> Vec<f64> {
        let n = self.num_devices;
        let mut start = vec![0.0; self.config.control_horizon * n];
        for j in 0..n {
            let clamped = f_now[j].clamp(f_lo[j], self.config.f_max[j]);
            let mut jump = clamped - f_now[j];
            if let Some(ms) = &self.config.max_step {
                jump = jump.clamp(-ms[j], ms[j]);
            }
            start[j] = jump;
        }
        start
    }

    /// Builds the per-period cache: tracking rows, the tracking (Q) part
    /// of the Hessian, and the QP skeleton whose gradient and bound RHS
    /// are rewritten in place each period. Accumulation order matches
    /// [`MpcController::step_uncached`] exactly so the cached path is
    /// arithmetically identical.
    #[allow(clippy::needless_range_loop)]
    fn build_cache(&self, r_diag: &[f64]) -> Result<StepCache> {
        let n = self.num_devices;
        let m = self.config.control_horizon;
        let p_h = self.config.prediction_horizon;
        let dim = m * n;

        let rows: Vec<Vec<f64>> = (1..=p_h).map(|i| self.tracking_row(i)).collect();
        let mut h_q = Matrix::zeros(dim, dim);
        for i in 1..=p_h {
            let q = self.config.q_weights[i - 1];
            if q == 0.0 {
                continue;
            }
            let s = &rows[i - 1];
            for a in 0..dim {
                if s[a] == 0.0 {
                    continue;
                }
                for b in 0..dim {
                    h_q[(a, b)] += 2.0 * q * s[a] * s[b];
                }
            }
        }
        let hessian = Self::assemble_hessian(&h_q, r_diag, n, m);

        // Constraint normals (static); RHS rewritten each period.
        let mut cons = Vec::with_capacity(2 * m * n + 2 * n);
        for i in 0..m {
            for j in 0..n {
                let mut row = vec![0.0; dim];
                for l in 0..=i {
                    row[l * n + j] = 1.0;
                }
                let neg: Vec<f64> = row.iter().map(|v| -v).collect();
                cons.push(LinearConstraint::new(row, 0.0));
                cons.push(LinearConstraint::new(neg, 0.0));
            }
        }
        // Optional slew limit on the first move only (hardware ramp rate);
        // these bounds are constant and never rewritten.
        if let Some(ms) = &self.config.max_step {
            for j in 0..n {
                cons.push(LinearConstraint::upper_bound(dim, j, ms[j]));
                cons.push(LinearConstraint::lower_bound(dim, j, -ms[j]));
            }
        }

        let qp = QpProblem::new(hessian, vec![0.0; dim], cons)?;
        Ok(StepCache {
            rows,
            h_q,
            r_diag: r_diag.to_vec(),
            qp,
            warm_active: None,
        })
    }

    /// Adds the control-penalty blocks to a copy of the cached tracking
    /// Hessian: Tᵢ has identity blocks 0..=i, so
    /// (TᵢᵀRTᵢ)[(a·N+j),(b·N+j)] = R_j when a ≤ i and b ≤ i.
    fn assemble_hessian(h_q: &Matrix, r_diag: &[f64], n: usize, m: usize) -> Matrix {
        let mut h = h_q.clone();
        for i in 0..m {
            for a in 0..=i {
                for b in 0..=i {
                    for j in 0..n {
                        h[(a * n + j, b * n + j)] += 2.0 * r_diag[j];
                    }
                }
            }
        }
        h
    }

    /// Computes one control period: given the measured average power, the
    /// set point, the currently applied frequencies, per-device control
    /// weights (≥ 0, scaled by `r_base`; pass all-1s for uniform), and
    /// per-device frequency floors (pass `f_min` when no SLO applies).
    ///
    /// The hot path: the Hessian's tracking part and the constraint
    /// geometry are cached across periods (they depend only on the config
    /// and model, not on measured power), the control-penalty diagonal is
    /// re-baked only when `r_weights` change, and the QP is warm-started
    /// from the previous period's active set.
    /// [`MpcController::step_uncached`] is the cache-free reference.
    ///
    /// # Errors
    /// * [`ControlError::BadConfig`] on input length mismatches.
    /// * [`ControlError::Optim`] if the QP solver fails.
    #[allow(clippy::needless_range_loop)]
    pub fn step(
        &self,
        p_measured: f64,
        setpoint: f64,
        current_freqs: &[f64],
        r_weights: &[f64],
        floors: &[f64],
    ) -> Result<MpcStep> {
        if self.config.fast_solver {
            return self.step_fast(p_measured, setpoint, current_freqs, r_weights, floors);
        }
        let n = self.num_devices;
        let m = self.config.control_horizon;
        let p_h = self.config.prediction_horizon;
        let (f_lo, floor_clamped) = self.effective_floors(current_freqs, r_weights, floors)?;
        let f_now: Vec<f64> = current_freqs.to_vec();
        let dim = m * n;

        let e0 = p_measured - setpoint;
        let w: Vec<f64> = vector::sub(&f_now, &self.config.f_ref);
        let r_diag: Vec<f64> = (0..n)
            .map(|j| self.config.r_base * r_weights[j].max(1e-9))
            .collect();

        let mut slot = self.cache.borrow_mut();
        if slot.is_none() {
            *slot = Some(self.build_cache(&r_diag)?);
        }
        let cache = slot.as_mut().expect("cache built above");

        // Re-bake the control-penalty diagonal only on weight change.
        if cache.r_diag != r_diag {
            cache.qp.hessian = Self::assemble_hessian(&cache.h_q, &r_diag, n, m);
            cache.r_diag = r_diag;
        }

        // ---- Gradient (depends on e₀ and w; rebuilt every period) ------
        // g = 2·(e₀·Σ Qᵢ·sᵢ + Σ Tᵢᵀ R w), accumulated in the same order
        // as the uncached reference so the result is bit-identical.
        let g = &mut cache.qp.gradient;
        g.iter_mut().for_each(|v| *v = 0.0);
        for i in 1..=p_h {
            let q = self.config.q_weights[i - 1];
            if q == 0.0 {
                continue;
            }
            let s = &cache.rows[i - 1];
            for a in 0..dim {
                if s[a] == 0.0 {
                    continue;
                }
                g[a] += 2.0 * q * e0 * s[a];
            }
        }
        for i in 0..m {
            for a in 0..=i {
                for j in 0..n {
                    g[a * n + j] += 2.0 * cache.r_diag[j] * w[j];
                }
            }
        }

        // ---- Constraint RHS (10a + SLO floors) -------------------------
        // For every cumulative position i ∈ 0..M and device j:
        //   f_lo[j] ≤ f_now[j] + (Tᵢ d)ⱼ ≤ f_max[j].
        let mut k = 0;
        for _i in 0..m {
            for j in 0..n {
                cache.qp.constraints[k].b = self.config.f_max[j] - f_now[j];
                cache.qp.constraints[k + 1].b = f_now[j] - f_lo[j];
                k += 2;
            }
        }

        let start = self.feasible_start(&f_now, &f_lo);
        let sol_res = match cache.warm_active.as_deref() {
            Some(hint) => self.solver.solve_warm(&cache.qp, &start, hint),
            None => self.solver.solve(&cache.qp, &start),
        };
        let sol = match sol_res {
            Ok(s) => s,
            // A slew limit tighter than a raised floor makes the QP
            // infeasible; fall back to the best-effort jump itself.
            Err(capgpu_optim::OptimError::InfeasibleStart) => {
                cache.warm_active = None;
                let first_move = start[..n].to_vec();
                let target = vector::add(&f_now, &first_move);
                let predicted = self.model.predict_delta(p_measured, &first_move);
                return Ok(MpcStep {
                    target_freqs: target,
                    first_move,
                    predicted_power: predicted,
                    qp_iterations: 0,
                    floor_clamped: true,
                    active_constraints: 0,
                    slo_floor_binding: Self::floor_raised(&f_lo, &self.config.f_min),
                });
            }
            Err(e) => return Err(e.into()),
        };

        let first_move = sol.x[..n].to_vec();
        let active_constraints = sol.active_set.len();
        let slo_floor_binding =
            Self::active_slo_floor(&sol.active_set, &f_lo, &self.config.f_min, n, m);
        cache.warm_active = Some(sol.active_set);
        let target: Vec<f64> = (0..n)
            .map(|j| {
                (f_now[j] + first_move[j])
                    .clamp(f_lo[j].min(self.config.f_max[j]), self.config.f_max[j])
            })
            .collect();
        let predicted = self.model.predict_delta(p_measured, &first_move);
        Ok(MpcStep {
            target_freqs: target,
            first_move,
            predicted_power: predicted,
            qp_iterations: sol.iterations,
            floor_clamped,
            active_constraints,
            slo_floor_binding,
        })
    }

    /// Builds the fast-path cache: the cumulative-coordinate box Hessian
    /// `H_c = blockdiag_b(2·Q̄_b·aaᵀ + 2·R̂)` and the box-QP skeleton whose
    /// gradient and bounds are rewritten each period.
    ///
    /// Derivation: with `cᵢ = Σ_{l≤i} dₗ` the predicted power at step `i`
    /// is `p(k) + a·c_{min(i,M)−1}`, so the tracking cost aggregates per
    /// cumulative block into `Q̄_b = Σ_{i: min(i,M)−1 = b} Q(i)`; the
    /// control penalty `‖dᵢ + f(k+i|k) − f_ref‖²_R = ‖cᵢ + w‖²_R` is
    /// block-diagonal outright; and constraint (10a) plus the SLO floors
    /// become the per-variable box `f_lo − f_now ≤ cᵢ ≤ f_max − f_now`
    /// (block 0 additionally intersected with the slew limit `±max_step`).
    fn build_fast_cache(&self, r_diag: &[f64]) -> Result<FastCache> {
        let n = self.num_devices;
        let m = self.config.control_horizon;
        let dim = m * n;
        let a = self.model.gains();

        let mut qbar = vec![0.0; m];
        for i in 1..=self.config.prediction_horizon {
            qbar[i.min(m) - 1] += self.config.q_weights[i - 1];
        }

        let mut h = Matrix::zeros(dim, dim);
        for b in 0..m {
            for j in 0..n {
                for k in 0..n {
                    h[(b * n + j, b * n + k)] += 2.0 * qbar[b] * a[j] * a[k];
                }
                h[(b * n + j, b * n + j)] += 2.0 * r_diag[j];
            }
        }
        let qp = BoxQpProblem::new(h, vec![0.0; dim], vec![0.0; dim], vec![0.0; dim])?;
        Ok(FastCache {
            r_diag: r_diag.to_vec(),
            qbar,
            qp,
            warm: None,
            regions: Vec::new(),
            insert_at: 0,
            hits: 0,
            misses: 0,
        })
    }

    /// Structure-exploiting hot path of [`MpcController::step`] (enabled by
    /// [`MpcConfig::fast_solver`]): solves the condensed QP in cumulative
    /// coordinates as a pure box QP, consulting the explicit-MPC region
    /// table first and falling back to the warm-started iterative
    /// [`BoxQp`] on a miss. See [`MpcController::build_fast_cache`] for
    /// the transform.
    fn step_fast(
        &self,
        p_measured: f64,
        setpoint: f64,
        current_freqs: &[f64],
        r_weights: &[f64],
        floors: &[f64],
    ) -> Result<MpcStep> {
        let n = self.num_devices;
        let m = self.config.control_horizon;
        let (f_lo, floor_clamped) = self.effective_floors(current_freqs, r_weights, floors)?;
        let f_now = current_freqs;
        let e0 = p_measured - setpoint;
        let r_diag: Vec<f64> = (0..n)
            .map(|j| self.config.r_base * r_weights[j].max(1e-9))
            .collect();

        let mut slot = self.fast.borrow_mut();
        // The Hessian bakes in r_diag: on a weight change rebuild it and
        // drop the (now invalid) region table, but keep the warm hint —
        // the optimal active set rarely moves with the weights.
        if slot.as_ref().is_none_or(|c| c.r_diag != r_diag) {
            let warm = slot.as_mut().and_then(|c| c.warm.take());
            let (hits, misses) = slot.as_ref().map_or((0, 0), |c| (c.hits, c.misses));
            let mut fresh = self.build_fast_cache(&r_diag)?;
            fresh.warm = warm;
            fresh.hits = hits;
            fresh.misses = misses;
            *slot = Some(fresh);
        }
        let cache = slot.as_mut().expect("fast cache built above");

        // ---- Box bounds in cumulative coordinates ----------------------
        let mut feasible = true;
        'bounds: for i in 0..m {
            for j in 0..n {
                let mut lo = f_lo[j] - f_now[j];
                let mut hi = self.config.f_max[j] - f_now[j];
                if i == 0 {
                    if let Some(ms) = &self.config.max_step {
                        lo = lo.max(-ms[j]);
                        hi = hi.min(ms[j]);
                    }
                }
                if lo > hi {
                    feasible = false;
                    break 'bounds;
                }
                cache.qp.lo[i * n + j] = lo;
                cache.qp.hi[i * n + j] = hi;
            }
        }
        if !feasible {
            // A slew limit tighter than a raised floor empties the box —
            // the same condition that makes the generic path's QP
            // infeasible; take the identical best-effort jump.
            cache.warm = None;
            let start = self.feasible_start(f_now, &f_lo);
            let first_move = start[..n].to_vec();
            let target = vector::add(f_now, &first_move);
            let predicted = self.model.predict_delta(p_measured, &first_move);
            return Ok(MpcStep {
                target_freqs: target,
                first_move,
                predicted_power: predicted,
                qp_iterations: 0,
                floor_clamped: true,
                active_constraints: 0,
                slo_floor_binding: Self::floor_raised(&f_lo, &self.config.f_min),
            });
        }

        // ---- Gradient: tracking per block + control penalty ------------
        let a = self.model.gains();
        for b in 0..m {
            for j in 0..n {
                let w_j = f_now[j] - self.config.f_ref[j];
                cache.qp.gradient[b * n + j] =
                    2.0 * cache.qbar[b] * e0 * a[j] + 2.0 * r_diag[j] * w_j;
            }
        }

        // ---- Explicit-MPC region lookup, keyed by the warm-start set ---
        let g_scale = 1.0
            + cache
                .qp
                .gradient
                .iter()
                .fold(0.0f64, |mx, v| mx.max(v.abs()));
        let tol = FAST_KKT_TOL * g_scale;
        let mut solved: Option<(Vec<f64>, Vec<VarState>, usize)> = None;
        if let Some(sig) = cache.warm.as_ref() {
            if let Some(region) = cache.regions.iter().find(|r| &r.states == sig) {
                let x = region.factor.polish(
                    &cache.qp.hessian,
                    &cache.qp.gradient,
                    &cache.qp.lo,
                    &cache.qp.hi,
                    &region.states,
                );
                if boxqp::kkt_optimal(
                    &cache.qp.hessian,
                    &cache.qp.gradient,
                    &cache.qp.lo,
                    &cache.qp.hi,
                    &region.states,
                    &x,
                    tol,
                ) {
                    cache.hits += 1;
                    solved = Some((x, region.states.clone(), 0));
                }
            }
        }
        let (x, states, iterations) = match solved {
            Some(s) => s,
            None => {
                cache.misses += 1;
                // Cumulative image of the d-space feasible start: the first
                // block's jump held for every later block.
                let d0 = self.feasible_start(f_now, &f_lo);
                let mut start = vec![0.0; m * n];
                for i in 0..m {
                    start[i * n..(i + 1) * n].copy_from_slice(&d0[..n]);
                }
                let sol = self
                    .box_solver
                    .solve_from(&cache.qp, &start, cache.warm.as_deref())?;
                if !cache.regions.iter().any(|r| r.states == sol.states) {
                    let factor = BoxFactor::from_states(&cache.qp.hessian, &sol.states)?;
                    let region = FastRegion {
                        states: sol.states.clone(),
                        factor,
                    };
                    if cache.regions.len() < MAX_FAST_REGIONS {
                        cache.regions.push(region);
                    } else {
                        cache.regions[cache.insert_at % MAX_FAST_REGIONS] = region;
                        cache.insert_at = cache.insert_at.wrapping_add(1);
                    }
                }
                (sol.x, sol.states, sol.iterations)
            }
        };

        let first_move = x[..n].to_vec();
        let active_constraints = states.iter().filter(|s| **s != VarState::Free).count();
        // An active lower bound is an SLO binding when the floor is raised
        // above hardware f_min AND the floor (not the slew clip) is the
        // tighter side of that variable's box.
        let slo_floor_binding = (0..m).any(|i| {
            (0..n).any(|j| {
                states[i * n + j] == VarState::AtLo
                    && f_lo[j] > self.config.f_min[j]
                    && cache.qp.lo[i * n + j] == f_lo[j] - f_now[j]
            })
        });
        cache.warm = Some(states);
        let target: Vec<f64> = (0..n)
            .map(|j| {
                (f_now[j] + first_move[j])
                    .clamp(f_lo[j].min(self.config.f_max[j]), self.config.f_max[j])
            })
            .collect();
        let predicted = self.model.predict_delta(p_measured, &first_move);
        Ok(MpcStep {
            target_freqs: target,
            first_move,
            predicted_power: predicted,
            qp_iterations: iterations,
            floor_clamped,
            active_constraints,
            slo_floor_binding,
        })
    }

    /// Cache-free reference implementation of [`MpcController::step`]:
    /// rebuilds the full QP from scratch and cold-starts the solver every
    /// call. Kept verbatim as the ground truth the cached hot path is
    /// regression-tested against; also useful when stepping a controller
    /// with adversarially varying inputs where caching cannot help.
    ///
    /// # Errors
    /// Same as [`MpcController::step`].
    #[allow(clippy::needless_range_loop)]
    pub fn step_uncached(
        &self,
        p_measured: f64,
        setpoint: f64,
        current_freqs: &[f64],
        r_weights: &[f64],
        floors: &[f64],
    ) -> Result<MpcStep> {
        let n = self.num_devices;
        let m = self.config.control_horizon;
        let p_h = self.config.prediction_horizon;
        let (f_lo, floor_clamped) = self.effective_floors(current_freqs, r_weights, floors)?;
        let f_now: Vec<f64> = current_freqs.to_vec();
        let dim = m * n;

        // ---- Quadratic cost --------------------------------------------
        // H = 2·(Σ Qᵢ·sᵢsᵢᵀ + Σ Tᵢᵀ R Tᵢ),
        // g = 2·(e₀·Σ Qᵢ·sᵢ + Σ Tᵢᵀ R w),  w = f(k) − f_ref.
        let e0 = p_measured - setpoint;
        let w: Vec<f64> = vector::sub(&f_now, &self.config.f_ref);
        let r_diag: Vec<f64> = (0..n)
            .map(|j| self.config.r_base * r_weights[j].max(1e-9))
            .collect();

        let mut h = Matrix::zeros(dim, dim);
        let mut g = vec![0.0; dim];
        for i in 1..=p_h {
            let q = self.config.q_weights[i - 1];
            if q == 0.0 {
                continue;
            }
            let s = self.tracking_row(i);
            for a in 0..dim {
                if s[a] == 0.0 {
                    continue;
                }
                g[a] += 2.0 * q * e0 * s[a];
                for b in 0..dim {
                    h[(a, b)] += 2.0 * q * s[a] * s[b];
                }
            }
        }
        // Control-penalty blocks: Tᵢ has identity blocks 0..=i, so
        // (TᵢᵀRTᵢ)[(a·N+j),(b·N+j)] = R_j when a ≤ i and b ≤ i.
        for i in 0..m {
            for a in 0..=i {
                for b in 0..=i {
                    for j in 0..n {
                        h[(a * n + j, b * n + j)] += 2.0 * r_diag[j];
                    }
                }
                for j in 0..n {
                    g[a * n + j] += 2.0 * r_diag[j] * w[j];
                }
            }
        }

        // ---- Constraints (10a + SLO floors) ----------------------------
        // For every cumulative position i ∈ 0..M and device j:
        //   f_lo[j] ≤ f_now[j] + (Tᵢ d)ⱼ ≤ f_max[j].
        let mut cons = Vec::with_capacity(2 * m * n + 2 * n);
        for i in 0..m {
            for j in 0..n {
                let mut row = vec![0.0; dim];
                for l in 0..=i {
                    row[l * n + j] = 1.0;
                }
                cons.push(LinearConstraint::new(
                    row.clone(),
                    self.config.f_max[j] - f_now[j],
                ));
                let neg: Vec<f64> = row.iter().map(|v| -v).collect();
                cons.push(LinearConstraint::new(neg, f_now[j] - f_lo[j]));
            }
        }
        // Optional slew limit on the first move only (hardware ramp rate).
        if let Some(ms) = &self.config.max_step {
            for j in 0..n {
                cons.push(LinearConstraint::upper_bound(dim, j, ms[j]));
                cons.push(LinearConstraint::lower_bound(dim, j, -ms[j]));
            }
        }

        let start = self.feasible_start(&f_now, &f_lo);
        let qp = QpProblem::new(h, g, cons)?;
        let sol = match self.solver.solve(&qp, &start) {
            Ok(s) => s,
            // A slew limit tighter than a raised floor makes the QP
            // infeasible; fall back to the best-effort jump itself.
            Err(capgpu_optim::OptimError::InfeasibleStart) => {
                let first_move = start[..n].to_vec();
                let target = vector::add(&f_now, &first_move);
                let predicted = self.model.predict_delta(p_measured, &first_move);
                return Ok(MpcStep {
                    target_freqs: target,
                    first_move,
                    predicted_power: predicted,
                    qp_iterations: 0,
                    floor_clamped: true,
                    active_constraints: 0,
                    slo_floor_binding: Self::floor_raised(&f_lo, &self.config.f_min),
                });
            }
            Err(e) => return Err(e.into()),
        };

        let first_move = sol.x[..n].to_vec();
        let active_constraints = sol.active_set.len();
        let slo_floor_binding =
            Self::active_slo_floor(&sol.active_set, &f_lo, &self.config.f_min, n, m);
        let target: Vec<f64> = (0..n)
            .map(|j| {
                (f_now[j] + first_move[j])
                    .clamp(f_lo[j].min(self.config.f_max[j]), self.config.f_max[j])
            })
            .collect();
        let predicted = self.model.predict_delta(p_measured, &first_move);
        Ok(MpcStep {
            target_freqs: target,
            first_move,
            predicted_power: predicted,
            qp_iterations: sol.iterations,
            floor_clamped,
            active_constraints,
            slo_floor_binding,
        })
    }

    /// Extracts the *unconstrained* first-move feedback law
    /// `d₀ = −K_p·(p − P_s) − K_f·(f − f_ref)` by solving the QP without
    /// constraints for basis inputs. Used by the stability analysis
    /// (paper §4.4: "its control decisions become linear functions of the
    /// current power, the set point, and the previous frequency decisions").
    ///
    /// Returns `(k_p, k_f)` with `k_p ∈ R^N`, `k_f ∈ R^{N×N}`.
    ///
    /// # Errors
    /// [`ControlError::Linalg`] if the Hessian factorization fails
    /// (cannot happen for valid configs: the Hessian is SPD).
    pub fn unconstrained_gains(&self) -> Result<(Vec<f64>, Matrix)> {
        let n = self.num_devices;
        let m = self.config.control_horizon;
        let p_h = self.config.prediction_horizon;
        let dim = m * n;

        // Rebuild H (independent of e0 / w) and the two gradient factories.
        let r_diag: Vec<f64> = (0..n).map(|_| self.config.r_base).collect();
        let mut h = Matrix::zeros(dim, dim);
        let mut g_e = vec![0.0; dim]; // gradient per unit e0 (w = 0)
        for i in 1..=p_h {
            let q = self.config.q_weights[i - 1];
            let s = self.tracking_row(i);
            for a in 0..dim {
                g_e[a] += 2.0 * q * s[a];
                for b in 0..dim {
                    h[(a, b)] += 2.0 * q * s[a] * s[b];
                }
            }
        }
        for i in 0..m {
            for a in 0..=i {
                for b in 0..=i {
                    for j in 0..n {
                        h[(a * n + j, b * n + j)] += 2.0 * r_diag[j];
                    }
                }
            }
        }
        let chol = capgpu_linalg::Cholesky::new(&h)?;

        // K_p: d = −H⁻¹·g_e · e0 → first block of H⁻¹ g_e.
        let kp_full = chol.solve(&g_e)?;
        let k_p = kp_full[..n].to_vec();

        // K_f columns: gradient per unit w_j is 2·Σᵢ Tᵢᵀ R e_j.
        let mut k_f = Matrix::zeros(n, n);
        for j in 0..n {
            let mut g_w = vec![0.0; dim];
            for i in 0..m {
                for a in 0..=i {
                    g_w[a * n + j] += 2.0 * r_diag[j];
                }
            }
            let col = chol.solve(&g_w)?;
            for r in 0..n {
                k_f[(r, j)] = col[r];
            }
        }
        Ok((k_p, k_f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> MpcController {
        // 1 CPU (1000–2400 MHz) + 2 GPUs (435–1350 MHz) with V100-scale
        // gains; the default paper config.
        let model = LinearPowerModel::new(vec![0.06, 0.18, 0.18], 250.0).unwrap();
        let config =
            MpcConfig::paper_defaults(vec![1000.0, 435.0, 435.0], vec![2400.0, 1350.0, 1350.0]);
        MpcController::new(config, model).unwrap()
    }

    #[test]
    fn raises_frequencies_when_under_cap() {
        let c = controller();
        let f = [1400.0, 800.0, 800.0];
        let p = c.model().predict(&f); // exactly on-model
        let step = c
            .step(p, p + 100.0, &f, &[1.0, 1.0, 1.0], &[1000.0, 435.0, 435.0])
            .unwrap();
        // The optimizer may *redistribute* (e.g. trade CPU MHz for GPU MHz
        // to minimize the control penalty) but the net effect must be a
        // power increase toward the set point.
        assert!(
            step.predicted_power > p,
            "predicted {} should exceed measured {p}",
            step.predicted_power
        );
        assert!(step.predicted_power <= p + 100.0 + 1e-6);
        assert!(!step.floor_clamped);
    }

    #[test]
    fn lowers_frequencies_when_over_cap() {
        let c = controller();
        let f = [2000.0, 1200.0, 1200.0];
        let p = c.model().predict(&f);
        let step = c
            .step(p, p - 150.0, &f, &[1.0, 1.0, 1.0], &[1000.0, 435.0, 435.0])
            .unwrap();
        assert!(
            step.first_move.iter().all(|d| *d <= 0.0),
            "{:?}",
            step.first_move
        );
        assert!(step.predicted_power < p);
    }

    #[test]
    fn respects_frequency_bounds() {
        let c = controller();
        let f = [2350.0, 1300.0, 1300.0];
        let p = c.model().predict(&f);
        // Huge deficit: moves must stop at f_max.
        let step = c
            .step(p, p + 500.0, &f, &[1.0, 1.0, 1.0], &[1000.0, 435.0, 435.0])
            .unwrap();
        for (j, t) in step.target_freqs.iter().enumerate() {
            assert!(*t <= c.config().f_max[j] + 1e-6, "device {j} exceeds max");
        }
    }

    #[test]
    fn slo_floor_forces_frequency_up() {
        let c = controller();
        let f = [1400.0, 500.0, 800.0];
        let p = c.model().predict(&f);
        // GPU 0 (device 1) gets a floor of 900 MHz.
        let step = c
            .step(p, p, &f, &[1.0, 1.0, 1.0], &[1000.0, 900.0, 435.0])
            .unwrap();
        assert!(
            step.target_freqs[1] >= 900.0 - 1e-6,
            "floor not enforced: {:?}",
            step.target_freqs
        );
    }

    #[test]
    fn floor_above_fmax_is_clamped_and_flagged() {
        let c = controller();
        let f = [1400.0, 800.0, 800.0];
        let p = c.model().predict(&f);
        let step = c
            .step(p, p, &f, &[1.0, 1.0, 1.0], &[1000.0, 2000.0, 435.0])
            .unwrap();
        assert!(step.floor_clamped);
        assert!(step.target_freqs[1] <= 1350.0 + 1e-6);
    }

    #[test]
    fn weight_ratio_shapes_allocation() {
        // Two identical GPUs, one busy (low weight), one idle (high
        // weight): after a deficit step the busy one must climb more.
        let model = LinearPowerModel::new(vec![0.18, 0.18], 250.0).unwrap();
        let config = MpcConfig::paper_defaults(vec![435.0, 435.0], vec![1350.0, 1350.0]);
        let c = MpcController::new(config, model).unwrap();
        let f = [800.0, 800.0];
        let p = c.model().predict(&f);
        let step = c
            .step(p, p + 60.0, &f, &[0.2, 1.8], &[435.0, 435.0])
            .unwrap();
        assert!(
            step.first_move[0] > step.first_move[1],
            "busy device should climb more: {:?}",
            step.first_move
        );
    }

    #[test]
    fn converges_to_setpoint_in_closed_loop() {
        // Simulate the plant with the true model (plus nothing): power must
        // converge to the set point within a handful of periods.
        // Achievable range of this model is [438.6, 880] W; pick 800 W.
        let c = controller();
        let mut f = vec![1000.0, 435.0, 435.0];
        let mut p = c.model().predict(&f);
        let setpoint = 800.0;
        for _ in 0..30 {
            let step = c
                .step(p, setpoint, &f, &[1.0, 1.0, 1.0], &[1000.0, 435.0, 435.0])
                .unwrap();
            f = step.target_freqs.clone();
            p = c.model().predict(&f);
        }
        assert!(
            (p - setpoint).abs() < 2.0,
            "did not converge: p = {p}, setpoint = {setpoint}"
        );
    }

    #[test]
    fn converges_under_model_mismatch() {
        // Plant gains 30% higher than the model believes (g = 1.3): the
        // loop must still converge (stability analysis guarantees it).
        let c = controller();
        let plant = c.model().perturbed(&[1.3, 1.3, 1.3]);
        let mut f = vec![1000.0, 435.0, 435.0];
        let mut p = plant.predict(&f);
        let setpoint = 950.0;
        for _ in 0..60 {
            let step = c
                .step(p, setpoint, &f, &[1.0, 1.0, 1.0], &[1000.0, 435.0, 435.0])
                .unwrap();
            f = step.target_freqs.clone();
            p = plant.predict(&f);
        }
        assert!((p - setpoint).abs() < 5.0, "p = {p}");
    }

    #[test]
    fn slew_limit_respected() {
        let model = LinearPowerModel::new(vec![0.18], 250.0).unwrap();
        let mut config = MpcConfig::paper_defaults(vec![435.0], vec![1350.0]);
        config.max_step = Some(vec![90.0]);
        let c = MpcController::new(config, model).unwrap();
        let f = [435.0];
        let p = c.model().predict(&f);
        let step = c.step(p, p + 200.0, &f, &[1.0], &[435.0]).unwrap();
        assert!(step.first_move[0] <= 90.0 + 1e-9);
    }

    #[test]
    fn unconstrained_gains_are_positive_on_power_error() {
        let c = controller();
        let (k_p, k_f) = c.unconstrained_gains().unwrap();
        // Positive power error (over budget) must push frequencies down:
        // d₀ = −K_p·e means K_p > 0 for every device.
        for k in &k_p {
            assert!(*k > 0.0, "K_p = {k_p:?}");
        }
        assert_eq!(k_f.shape(), (3, 3));
        // Feedback law reproduces an actual unconstrained step: compare
        // against step() on an interior point with a small error.
        let f = [1700.0, 900.0, 900.0];
        let p = c.model().predict(&f);
        let e0 = 10.0;
        let step = c
            .step(p + e0, p, &f, &[1.0, 1.0, 1.0], &[1000.0, 435.0, 435.0])
            .unwrap();
        let w: Vec<f64> = f
            .iter()
            .zip(c.config().f_ref.iter())
            .map(|(a, b)| a - b)
            .collect();
        for j in 0..3 {
            let lin = -k_p[j] * e0 - (0..3).map(|i| k_f[(j, i)] * w[i]).sum::<f64>();
            assert!(
                (lin - step.first_move[j]).abs() < 1e-6,
                "device {j}: linear {lin} vs qp {}",
                step.first_move[j]
            );
        }
    }

    #[test]
    fn cached_step_matches_uncached_first_call() {
        // With no warm-start state, the cached path assembles the exact
        // same QP (same accumulation order) and cold-starts the solver:
        // the very first step must be bit-identical to the reference.
        let c = controller();
        let f = [1400.0, 800.0, 800.0];
        let p = c.model().predict(&f);
        let reference = c
            .step_uncached(p, p - 80.0, &f, &[0.7, 1.2, 1.1], &[1000.0, 435.0, 435.0])
            .unwrap();
        let fresh = controller();
        let cached = fresh
            .step(p, p - 80.0, &f, &[0.7, 1.2, 1.1], &[1000.0, 435.0, 435.0])
            .unwrap();
        assert_eq!(cached.first_move, reference.first_move);
        assert_eq!(cached.target_freqs, reference.target_freqs);
        assert_eq!(cached.predicted_power, reference.predicted_power);
    }

    #[test]
    fn cached_step_matches_uncached_in_closed_loop() {
        // Run the same closed loop through both paths. Warm starting may
        // change the active-set path (and last-ulp rounding) but both must
        // land on the unique minimizer of each period's strictly convex
        // QP, so the trajectories agree to solver tolerance.
        let c = controller();
        let floors = [1000.0, 435.0, 435.0];
        let setpoint = 780.0;
        let mut f_c = vec![1000.0, 435.0, 435.0];
        let mut f_u = f_c.clone();
        for k in 0..40 {
            // Vary the weights to exercise the re-bake path as well.
            let wgt = [1.0, 1.0 + 0.3 * ((k % 5) as f64), 0.8];
            let p_c = c.model().predict(&f_c);
            let p_u = c.model().predict(&f_u);
            let s_c = c.step(p_c, setpoint, &f_c, &wgt, &floors).unwrap();
            let s_u = c.step_uncached(p_u, setpoint, &f_u, &wgt, &floors).unwrap();
            for j in 0..3 {
                assert!(
                    (s_c.target_freqs[j] - s_u.target_freqs[j]).abs() < 1e-6,
                    "period {k} device {j}: cached {} vs uncached {}",
                    s_c.target_freqs[j],
                    s_u.target_freqs[j]
                );
            }
            f_c = s_c.target_freqs;
            f_u = s_u.target_freqs;
        }
    }

    #[test]
    fn cache_invalidated_on_model_change() {
        let mut c = controller();
        let f = [1400.0, 800.0, 800.0];
        let p = c.model().predict(&f);
        let uniform = [1.0, 1.0, 1.0];
        let floors = [1000.0, 435.0, 435.0];
        c.step(p, p - 50.0, &f, &uniform, &floors).unwrap(); // populate cache
        let new_model = LinearPowerModel::new(vec![0.09, 0.25, 0.25], 240.0).unwrap();
        c.set_model(new_model).unwrap();
        let cached = c.step(p, p - 50.0, &f, &uniform, &floors).unwrap();
        let reference = c.step_uncached(p, p - 50.0, &f, &uniform, &floors).unwrap();
        for j in 0..3 {
            assert!(
                (cached.first_move[j] - reference.first_move[j]).abs() < 1e-9,
                "stale cache after set_model: {:?} vs {:?}",
                cached.first_move,
                reference.first_move
            );
        }
    }

    #[test]
    fn slew_limit_infeasible_fallback_matches_uncached() {
        // Floor raised beyond what the slew limit allows in one move: both
        // paths must take the identical best-effort jump.
        let model = LinearPowerModel::new(vec![0.18], 250.0).unwrap();
        let mut config = MpcConfig::paper_defaults(vec![435.0], vec![1350.0]);
        config.max_step = Some(vec![50.0]);
        let c = MpcController::new(config, model).unwrap();
        let f = [500.0];
        let p = c.model().predict(&f);
        let cached = c.step(p, p, &f, &[1.0], &[900.0]).unwrap();
        let reference = c.step_uncached(p, p, &f, &[1.0], &[900.0]).unwrap();
        assert!(cached.floor_clamped && reference.floor_clamped);
        assert_eq!(cached.first_move, reference.first_move);
        assert_eq!(cached.target_freqs, reference.target_freqs);
    }

    fn fast_controller() -> MpcController {
        let model = LinearPowerModel::new(vec![0.06, 0.18, 0.18], 250.0).unwrap();
        let mut config =
            MpcConfig::paper_defaults(vec![1000.0, 435.0, 435.0], vec![2400.0, 1350.0, 1350.0]);
        config.fast_solver = true;
        MpcController::new(config, model).unwrap()
    }

    #[test]
    fn fast_solver_matches_generic_single_step() {
        let slow = controller();
        let fast = fast_controller();
        let f = [1400.0, 800.0, 800.0];
        let p = slow.model().predict(&f);
        let floors = [1000.0, 435.0, 435.0];
        for setpoint in [p - 150.0, p, p + 100.0, p + 500.0] {
            let s = slow
                .step(p, setpoint, &f, &[0.7, 1.2, 1.1], &floors)
                .unwrap();
            let q = fast
                .step(p, setpoint, &f, &[0.7, 1.2, 1.1], &floors)
                .unwrap();
            for j in 0..3 {
                assert!(
                    (s.target_freqs[j] - q.target_freqs[j]).abs() < 1e-6,
                    "setpoint {setpoint} device {j}: generic {} vs fast {}",
                    s.target_freqs[j],
                    q.target_freqs[j]
                );
            }
            assert_eq!(s.floor_clamped, q.floor_clamped);
        }
    }

    #[test]
    fn fast_solver_matches_generic_in_closed_loop() {
        // Same closed loop through both solvers, with varying weights and
        // an SLO floor engaging partway: unique minimizers each period, so
        // the trajectories agree to solver tolerance.
        let slow = controller();
        let fast = fast_controller();
        let setpoint = 780.0;
        let mut f_s = vec![1000.0, 435.0, 435.0];
        let mut f_q = f_s.clone();
        for k in 0..60 {
            let wgt = [1.0, 1.0 + 0.3 * ((k % 5) as f64), 0.8];
            let floors = if k >= 30 {
                [1000.0, 700.0, 435.0]
            } else {
                [1000.0, 435.0, 435.0]
            };
            let p_s = slow.model().predict(&f_s);
            let p_q = fast.model().predict(&f_q);
            let s = slow.step(p_s, setpoint, &f_s, &wgt, &floors).unwrap();
            let q = fast.step(p_q, setpoint, &f_q, &wgt, &floors).unwrap();
            for j in 0..3 {
                assert!(
                    (s.target_freqs[j] - q.target_freqs[j]).abs() < 1e-6,
                    "period {k} device {j}: generic {} vs fast {}",
                    s.target_freqs[j],
                    q.target_freqs[j]
                );
            }
            assert_eq!(s.slo_floor_binding, q.slo_floor_binding, "period {k}");
            f_s = s.target_freqs;
            f_q = q.target_freqs;
        }
    }

    #[test]
    fn fast_explicit_hit_is_bit_identical_to_cold_resolve() {
        // One controller keeps its warm state + region table (steady state
        // = explicit hits); the other is forced fully cold before every
        // step. The deterministic polish makes both trajectories bitwise
        // equal, and the warm controller must actually hit the table.
        let warm = fast_controller();
        let cold = fast_controller();
        let setpoint = 800.0;
        let floors = [1000.0, 435.0, 435.0];
        let wgt = [1.0, 1.0, 1.0];
        let mut f_w = vec![1000.0, 435.0, 435.0];
        let mut f_c = f_w.clone();
        for k in 0..25 {
            cold.reset_fast_path();
            let p_w = warm.model().predict(&f_w);
            let p_c = cold.model().predict(&f_c);
            let s_w = warm.step(p_w, setpoint, &f_w, &wgt, &floors).unwrap();
            let s_c = cold.step(p_c, setpoint, &f_c, &wgt, &floors).unwrap();
            assert_eq!(s_w.target_freqs, s_c.target_freqs, "period {k}");
            assert_eq!(s_w.first_move, s_c.first_move, "period {k}");
            f_w = s_w.target_freqs;
            f_c = s_c.target_freqs;
        }
        let (hits, misses) = warm.fast_solver_stats();
        assert!(hits > 0, "steady state should hit the region table");
        assert!(misses >= 1, "first period must miss");
        let (cold_hits, _) = cold.fast_solver_stats();
        assert_eq!(cold_hits, 0, "reset before every step should never hit");
    }

    #[test]
    fn fast_slew_infeasible_fallback_matches_generic() {
        // Floor raised beyond what the slew limit allows in one move: the
        // fast path's empty box must take the identical best-effort jump.
        let model = LinearPowerModel::new(vec![0.18], 250.0).unwrap();
        let mut config = MpcConfig::paper_defaults(vec![435.0], vec![1350.0]);
        config.max_step = Some(vec![50.0]);
        let mut fast_config = config.clone();
        fast_config.fast_solver = true;
        let slow = MpcController::new(config, model.clone()).unwrap();
        let fast = MpcController::new(fast_config, model).unwrap();
        let f = [500.0];
        let p = slow.model().predict(&f);
        let s = slow.step(p, p, &f, &[1.0], &[900.0]).unwrap();
        let q = fast.step(p, p, &f, &[1.0], &[900.0]).unwrap();
        assert!(s.floor_clamped && q.floor_clamped);
        assert_eq!(s.first_move, q.first_move);
        assert_eq!(s.target_freqs, q.target_freqs);
        assert!(q.slo_floor_binding);
    }

    #[test]
    fn fast_floor_above_fmax_is_clamped_and_flagged() {
        let c = fast_controller();
        let f = [1400.0, 800.0, 800.0];
        let p = c.model().predict(&f);
        let step = c
            .step(p, p, &f, &[1.0, 1.0, 1.0], &[1000.0, 2000.0, 435.0])
            .unwrap();
        assert!(step.floor_clamped);
        assert!(step.target_freqs[1] <= 1350.0 + 1e-6);
    }

    #[test]
    fn fast_slo_floor_binding_reported() {
        let c = fast_controller();
        let f = [1400.0, 500.0, 800.0];
        let p = c.model().predict(&f);
        let step = c
            .step(p, p, &f, &[1.0, 1.0, 1.0], &[1000.0, 900.0, 435.0])
            .unwrap();
        assert!(step.target_freqs[1] >= 900.0 - 1e-6);
        assert!(step.slo_floor_binding);
        assert!(step.active_constraints > 0);
    }

    #[test]
    fn config_validation() {
        let model = LinearPowerModel::new(vec![0.18], 0.0).unwrap();
        let mut bad = MpcConfig::paper_defaults(vec![435.0], vec![1350.0]);
        bad.control_horizon = 0;
        assert!(MpcController::new(bad, model.clone()).is_err());

        let mut bad = MpcConfig::paper_defaults(vec![435.0], vec![1350.0]);
        bad.control_horizon = 9;
        assert!(MpcController::new(bad, model.clone()).is_err());

        let mut bad = MpcConfig::paper_defaults(vec![435.0], vec![1350.0]);
        bad.q_weights = vec![1.0; 3];
        assert!(MpcController::new(bad, model.clone()).is_err());

        let bad = MpcConfig::paper_defaults(vec![1350.0], vec![435.0]);
        assert!(MpcController::new(bad, model.clone()).is_err());

        // Device count mismatch between model and config.
        let cfg = MpcConfig::paper_defaults(vec![435.0, 435.0], vec![1350.0, 1350.0]);
        assert!(MpcController::new(cfg, model).is_err());
    }

    #[test]
    fn step_input_validation() {
        let c = controller();
        assert!(c
            .step(900.0, 900.0, &[1.0], &[1.0, 1.0, 1.0], &[0.0; 3])
            .is_err());
        assert!(c
            .step(
                900.0,
                900.0,
                &[1400.0, 800.0, 800.0],
                &[-1.0, 1.0, 1.0],
                &[0.0; 3]
            )
            .is_err());
    }
}
