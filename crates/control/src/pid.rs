//! Pole-placed proportional control — the GPU-Only / CPU-Only baselines.
//!
//! The paper's GPU-Only baseline "uses a proportional controller … the gain
//! for this controller is determined by pole placement and choosing the one
//! that minimizes oscillations" (§6.1, after OptimML \[4\]); CPU-Only uses
//! the same logic on the CPU DVFS knob (after IBM server-level power
//! control \[14\]).
//!
//! With the incremental plant `p(k) = p(k−1) + a·Δf(k−1)` (where `a` is the
//! summed W/MHz gain of every device the shared knob moves) and the control
//! law `Δf(k) = K·(P_s − p(k))`, the closed loop is
//!
//! ```text
//!   p(k) = (1 − a·K)·p(k−1) + a·K·P_s
//! ```
//!
//! with a single pole at `z = 1 − a·K`. Placing the pole at `π ∈ [0, 1)`
//! gives `K = (1 − π)/a`: `π = 0` is deadbeat (one-period convergence on a
//! perfect model), larger `π` trades speed for robustness to model error.

use crate::{ControlError, Result};

/// A pole-placed proportional power controller driving one shared knob.
#[derive(Debug, Clone)]
pub struct ProportionalController {
    /// Control gain `K` in MHz/W.
    gain: f64,
    /// Shared-knob minimum frequency (MHz).
    f_min: f64,
    /// Shared-knob maximum frequency (MHz).
    f_max: f64,
}

impl ProportionalController {
    /// Creates a controller with an explicit gain.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] on non-positive gain or empty range.
    pub fn new(gain: f64, f_min: f64, f_max: f64) -> Result<Self> {
        if gain <= 0.0 || !gain.is_finite() {
            return Err(ControlError::BadConfig(
                "proportional gain must be positive",
            ));
        }
        if f_min >= f_max {
            return Err(ControlError::BadConfig("need f_min < f_max"));
        }
        Ok(ProportionalController { gain, f_min, f_max })
    }

    /// Creates a controller by pole placement: `K = (1 − pole)/plant_gain`.
    ///
    /// `plant_gain` is the summed W/MHz sensitivity of all devices the knob
    /// moves; `pole ∈ [0, 1)` is the desired closed-loop pole.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] for a non-positive plant gain or a pole
    /// outside `[0, 1)`.
    pub fn pole_placed(plant_gain: f64, pole: f64, f_min: f64, f_max: f64) -> Result<Self> {
        if plant_gain <= 0.0 {
            return Err(ControlError::BadConfig("plant gain must be positive"));
        }
        if !(0.0..1.0).contains(&pole) {
            return Err(ControlError::BadConfig("pole must lie in [0, 1)"));
        }
        Self::new((1.0 - pole) / plant_gain, f_min, f_max)
    }

    /// The control gain `K` (MHz/W).
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// One control period: returns the new shared frequency target given
    /// the measured power, the set point and the current frequency,
    /// saturated at the knob's range.
    pub fn step(&self, p_measured: f64, setpoint: f64, current_freq: f64) -> f64 {
        let delta = self.gain * (setpoint - p_measured);
        (current_freq + delta).clamp(self.f_min, self.f_max)
    }

    /// The closed-loop pole this controller realizes on a plant with the
    /// given actual gain: `z = 1 − a·K`. Stable iff `|z| < 1`.
    pub fn closed_loop_pole(&self, actual_plant_gain: f64) -> f64 {
        1.0 - actual_plant_gain * self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pole_placement_math() {
        // 3 GPUs at 0.18 W/MHz share one knob: a = 0.54 W/MHz.
        let c = ProportionalController::pole_placed(0.54, 0.5, 435.0, 1350.0).unwrap();
        assert!((c.gain() - (0.5 / 0.54)).abs() < 1e-12);
        assert!((c.closed_loop_pole(0.54) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deadbeat_converges_in_one_step_on_perfect_model() {
        let a = 0.54;
        let c = ProportionalController::pole_placed(a, 0.0, 0.0, 10_000.0).unwrap();
        let f0 = 800.0;
        let p0 = 400.0;
        let setpoint = 454.0; // 54 W above → needs +100 MHz
        let f1 = c.step(p0, setpoint, f0);
        let p1 = p0 + a * (f1 - f0);
        assert!((p1 - setpoint).abs() < 1e-9);
    }

    #[test]
    fn geometric_convergence_with_nonzero_pole() {
        let a = 0.54;
        let pole = 0.5;
        let c = ProportionalController::pole_placed(a, pole, 0.0, 10_000.0).unwrap();
        let setpoint = 900.0;
        let mut f = 500.0_f64;
        let mut p = 700.0_f64;
        let mut prev_err = (p - setpoint).abs();
        for _ in 0..10 {
            let f_new = c.step(p, setpoint, f);
            p += a * (f_new - f);
            f = f_new;
            let err = (p - setpoint).abs();
            assert!(err <= pole * prev_err + 1e-9, "err {err} prev {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 0.5);
    }

    #[test]
    fn saturates_at_range() {
        let c = ProportionalController::new(10.0, 435.0, 1350.0).unwrap();
        assert_eq!(c.step(0.0, 1_000.0, 1_000.0), 1350.0);
        assert_eq!(c.step(2_000.0, 0.0, 1_000.0), 435.0);
    }

    #[test]
    fn stability_boundary() {
        // Gain double the deadbeat value → pole at −1 (marginally unstable).
        let a = 0.5;
        let c = ProportionalController::new(2.0 / a * 2.0, 0.0, 1.0e6).unwrap();
        assert!(c.closed_loop_pole(a) <= -1.0);
        // Pole-placed design stays stable for plant gain up to 2× nominal.
        let c = ProportionalController::pole_placed(a, 0.5, 0.0, 1.0e6).unwrap();
        assert!(c.closed_loop_pole(a * 1.9).abs() < 1.0);
        assert!(c.closed_loop_pole(a * 4.1).abs() > 1.0);
    }

    #[test]
    fn validation() {
        assert!(ProportionalController::new(0.0, 0.0, 1.0).is_err());
        assert!(ProportionalController::new(1.0, 1.0, 1.0).is_err());
        assert!(ProportionalController::pole_placed(0.0, 0.5, 0.0, 1.0).is_err());
        assert!(ProportionalController::pole_placed(1.0, 1.0, 0.0, 1.0).is_err());
        assert!(ProportionalController::pole_placed(1.0, -0.1, 0.0, 1.0).is_err());
    }
}
